//! P-mode pulsation frequencies and the Echelle representation.
//!
//! Frequencies follow the asymptotic relation
//! `ν(n,l) ≈ Δν (n + l/2 + ε) − l(l+1) D0 + curvature`, the standard
//! description of solar-like oscillations that the MPIKAIA pipeline fits.

use serde::{Deserialize, Serialize};

use crate::params::StellarParams;

/// One oscillation mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    /// Spherical degree (0, 1, 2).
    pub l: u8,
    /// Radial order.
    pub n: u32,
    /// Frequency \[µHz].
    pub frequency: f64,
}

/// Degrees observed photometrically by Kepler.
pub const DEGREES: [u8; 3] = [0, 1, 2];

/// Radial orders spanned around `nu_max` on each side.
pub const ORDERS_EACH_SIDE: u32 = 8;

/// Phase offset ε of the asymptotic relation; weak functions of the model
/// parameters so the GA cannot fit frequencies from Δν alone.
fn epsilon(p: &StellarParams) -> f64 {
    1.25 + 0.3 * (p.alpha - 1.9) / 1.9 + 0.8 * (p.metallicity - 0.018)
}

/// Small-separation scale D0 [µHz]: sensitive to core structure, hence to
/// age and helium — the parameters asteroseismology actually constrains.
fn d0(p: &StellarParams) -> f64 {
    let base = 1.5 * (1.0 - 0.06 * (p.age - 4.6)) * (1.0 + 1.2 * (p.helium - 0.27));
    base.max(0.05)
}

/// Generate the mode set around `nu_max`.
pub fn mode_frequencies(p: &StellarParams, delta_nu: f64, nu_max: f64) -> Vec<Mode> {
    let eps = epsilon(p);
    let d0 = d0(p);
    let n_max = (nu_max / delta_nu - eps).round().max(2.0) as i64;
    let lo = (n_max - ORDERS_EACH_SIDE as i64).max(1) as u32;
    let hi = n_max as u32 + ORDERS_EACH_SIDE;
    let mut out = Vec::with_capacity(DEGREES.len() * (hi - lo + 1) as usize);
    for l in DEGREES {
        for n in lo..=hi {
            // Second-order curvature term bends the ridge slightly, as real
            // Echelle diagrams do.
            let curvature = 0.07 * delta_nu * ((n as f64 - n_max as f64) / 10.0).powi(2);
            let nu = delta_nu * (n as f64 + l as f64 / 2.0 + eps)
                - (l as f64) * (l as f64 + 1.0) * d0
                + curvature;
            out.push(Mode {
                l,
                n,
                frequency: nu,
            });
        }
    }
    out.sort_by(|a, b| a.frequency.total_cmp(&b.frequency));
    out
}

/// Mean d02 small separation ⟨ν(n,0) − ν(n−1,2)⟩.
pub fn mean_small_separation(modes: &[Mode]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for m0 in modes.iter().filter(|m| m.l == 0) {
        if let Some(m2) = modes.iter().find(|m| m.l == 2 && m.n + 1 == m0.n) {
            sum += m0.frequency - m2.frequency;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// A point in the Echelle diagram: frequency modulo Δν vs frequency (§2:
/// "an Echelle plot summarizing the star's oscillation frequencies").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EchellePoint {
    pub l: u8,
    pub frequency: f64,
    pub modulo: f64,
}

/// Fold the mode set for the Echelle plot.
pub fn echelle(modes: &[Mode], delta_nu: f64) -> Vec<EchellePoint> {
    modes
        .iter()
        .map(|m| EchellePoint {
            l: m.l,
            frequency: m.frequency,
            modulo: m.frequency.rem_euclid(delta_nu),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StellarParams;

    fn modes() -> Vec<Mode> {
        mode_frequencies(&StellarParams::benchmark(), 135.1, 3090.0)
    }

    #[test]
    fn mode_count_and_sorted() {
        let m = modes();
        assert_eq!(m.len(), 3 * (2 * ORDERS_EACH_SIDE as usize + 1));
        assert!(m.windows(2).all(|w| w[0].frequency <= w[1].frequency));
    }

    #[test]
    fn consecutive_radial_orders_separated_by_delta_nu() {
        let m = modes();
        let radial: Vec<&Mode> = m.iter().filter(|x| x.l == 0).collect();
        for w in radial.windows(2) {
            let sep = w[1].frequency - w[0].frequency;
            assert!(
                (sep - 135.1).abs() < 135.1 * 0.08,
                "separation {sep} far from delta_nu"
            );
        }
    }

    #[test]
    fn small_separation_positive_for_ms_star() {
        let m = modes();
        let d02 = mean_small_separation(&m);
        assert!(d02 > 0.0 && d02 < 30.0, "d02 = {d02}");
    }

    #[test]
    fn small_separation_decreases_with_age() {
        let young = mode_frequencies(
            &StellarParams {
                age: 1.0,
                ..StellarParams::benchmark()
            },
            135.1,
            3090.0,
        );
        let old = mode_frequencies(
            &StellarParams {
                age: 9.0,
                ..StellarParams::benchmark()
            },
            135.1,
            3090.0,
        );
        assert!(mean_small_separation(&old) < mean_small_separation(&young));
    }

    #[test]
    fn echelle_modulo_in_range() {
        let m = modes();
        for pt in echelle(&m, 135.1) {
            assert!(pt.modulo >= 0.0 && pt.modulo < 135.1);
        }
    }

    #[test]
    fn empty_modes_zero_small_separation() {
        assert_eq!(mean_small_separation(&[]), 0.0);
    }
}
