//! Observations and the model-vs-observation fitness the GA optimizes.
//!
//! The real pipeline starts from Kepler pulsation-frequency measurements
//! plus spectroscopic constraints and searches for model parameters that
//! reproduce them (§2: "the real research product requires starting with
//! observations and identifying the properties of a star"). `ObservedStar`
//! carries those inputs; [`chi_squared`]/[`fitness`] score a candidate.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::freqs::Mode;
use crate::model::{evolve, ModelOutput};
use crate::params::{Domain, StellarParams};
use crate::ModelError;

/// A measured oscillation frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedMode {
    pub l: u8,
    pub n: u32,
    pub frequency: f64,
    /// 1σ measurement uncertainty \[µHz].
    pub sigma: f64,
}

/// A scalar constraint with uncertainty (spectroscopic Teff, luminosity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub value: f64,
    pub sigma: f64,
}

/// The observational inputs to one AMP optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedStar {
    /// Display identifier, e.g. "HD 52265" or "KIC 8006161".
    pub identifier: String,
    pub modes: Vec<ObservedMode>,
    pub teff: Option<Constraint>,
    pub luminosity: Option<Constraint>,
}

impl ObservedStar {
    /// Number of fitted data points (for reduced χ²).
    pub fn n_data(&self) -> usize {
        self.modes.len() + self.teff.is_some() as usize + self.luminosity.is_some() as usize
    }
}

/// χ² of a model against the observations. Frequencies are matched by
/// (l, n); a model missing an observed mode incurs a large fixed penalty so
/// the GA is pushed back toward the observable regime.
pub fn chi_squared(obs: &ObservedStar, model: &ModelOutput) -> f64 {
    const MISSING_MODE_PENALTY: f64 = 1e4;
    let mut chi2 = 0.0;
    for om in &obs.modes {
        match model
            .frequencies
            .iter()
            .find(|m: &&Mode| m.l == om.l && m.n == om.n)
        {
            Some(m) => {
                let r = (m.frequency - om.frequency) / om.sigma.max(1e-6);
                chi2 += r * r;
            }
            None => chi2 += MISSING_MODE_PENALTY,
        }
    }
    if let Some(c) = obs.teff {
        let r = (model.teff - c.value) / c.sigma.max(1e-6);
        chi2 += r * r;
    }
    if let Some(c) = obs.luminosity {
        let r = (model.luminosity - c.value) / c.sigma.max(1e-6);
        chi2 += r * r;
    }
    chi2
}

/// GA fitness: strictly decreasing in χ², in (0, 1]. Model failures map to
/// fitness 0 so invalid candidates are selected against rather than
/// aborting the run (matching MPIKAIA's handling).
pub fn fitness(obs: &ObservedStar, params: &StellarParams, domain: &Domain) -> f64 {
    match evolve(params, domain) {
        Ok(m) => {
            let chi2 = chi_squared(obs, &m);
            1.0 / (1.0 + chi2 / obs.n_data().max(1) as f64)
        }
        Err(_) => 0.0,
    }
}

/// Synthesize observations of a "truth" star: run the forward model, keep a
/// subset of modes, and perturb with Gaussian noise. This is the stand-in
/// for real Kepler data (we have no proprietary light curves).
pub fn synthesize(
    identifier: &str,
    truth: &StellarParams,
    domain: &Domain,
    noise_uhz: f64,
    seed: u64,
) -> Result<ObservedStar, ModelError> {
    let model = evolve(truth, domain)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Keep modes in a +/-5 Δν window around nu_max: what Kepler detects.
    let window = 5.0 * model.delta_nu;
    let mut modes = Vec::new();
    for m in &model.frequencies {
        if (m.frequency - model.nu_max).abs() <= window {
            let noise: f64 = gaussian(&mut rng) * noise_uhz;
            modes.push(ObservedMode {
                l: m.l,
                n: m.n,
                frequency: m.frequency + noise,
                sigma: noise_uhz.max(1e-3),
            });
        }
    }
    Ok(ObservedStar {
        identifier: identifier.to_string(),
        modes,
        teff: Some(Constraint {
            value: model.teff + gaussian(&mut rng) * 50.0,
            sigma: 70.0,
        }),
        luminosity: Some(Constraint {
            value: model.luminosity * (1.0 + gaussian(&mut rng) * 0.03),
            sigma: model.luminosity * 0.05,
        }),
    })
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ObservedStar, StellarParams, Domain) {
        let domain = Domain::default();
        let truth = StellarParams {
            mass: 1.1,
            metallicity: 0.02,
            helium: 0.26,
            alpha: 2.0,
            age: 5.0,
        };
        let obs = synthesize("TEST-1", &truth, &domain, 0.1, 7).unwrap();
        (obs, truth, domain)
    }

    #[test]
    fn synthesized_star_has_data() {
        let (obs, _, _) = setup();
        assert!(obs.modes.len() >= 15, "only {} modes", obs.modes.len());
        assert!(obs.teff.is_some());
        assert_eq!(obs.n_data(), obs.modes.len() + 2);
    }

    #[test]
    fn truth_has_near_maximal_fitness() {
        let (obs, truth, domain) = setup();
        let f_truth = fitness(&obs, &truth, &domain);
        assert!(f_truth > 0.3, "truth fitness {f_truth}");
        // a clearly wrong star scores much worse
        let wrong = StellarParams {
            mass: 1.6,
            age: 11.0,
            ..truth
        };
        let f_wrong = fitness(&obs, &wrong, &domain);
        assert!(f_truth > 10.0 * f_wrong, "truth {f_truth} wrong {f_wrong}");
    }

    #[test]
    fn fitness_of_invalid_params_is_zero() {
        let (obs, mut truth, domain) = setup();
        truth.mass = 10.0;
        assert_eq!(fitness(&obs, &truth, &domain), 0.0);
    }

    #[test]
    fn chi2_decreases_toward_truth() {
        let (obs, truth, domain) = setup();
        let near = StellarParams {
            mass: truth.mass + 0.01,
            ..truth
        };
        let far = StellarParams {
            mass: truth.mass + 0.2,
            ..truth
        };
        let m_near = evolve(&near, &domain).unwrap();
        let m_far = evolve(&far, &domain).unwrap();
        assert!(chi_squared(&obs, &m_near) < chi_squared(&obs, &m_far));
    }

    #[test]
    fn synthesis_is_seed_deterministic() {
        let (a, truth, domain) = setup();
        let b = synthesize("TEST-1", &truth, &domain, 0.1, 7).unwrap();
        assert_eq!(a, b);
        let c = synthesize("TEST-1", &truth, &domain, 0.1, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn missing_modes_penalized() {
        let (mut obs, truth, domain) = setup();
        // fabricate an unobservable mode
        obs.modes.push(ObservedMode {
            l: 0,
            n: 1,
            frequency: 50.0,
            sigma: 0.1,
        });
        let m = evolve(&truth, &domain).unwrap();
        assert!(chi_squared(&obs, &m) >= 1e4);
    }
}
