//! Execution-cost model for the forward stellar model.
//!
//! Paper §2: "One interesting artifact of the ASTEC model is that the
//! execution time varies slightly depending on the target star's
//! characteristics" — early GA iterations are paced by the slowest star in
//! the random population, and per-iteration time shrinks as the population
//! converges, so 200 iterations finish in ~160×–180× the first iteration's
//! time. This module gives each parameter set a deterministic *relative*
//! cost (1.0 for the Table 1 benchmark star, total spread ≈ ±20%) that the
//! grid simulator converts to simulated minutes per system.

use crate::params::StellarParams;

/// Relative execution cost of evolving `p`, normalized to 1.0 for
/// [`StellarParams::benchmark`] (1.0 M_sun evolved to 9.5 Gyr).
///
/// Cost is dominated by the number of evolution timesteps, which grows
/// with the age the track must reach and saturates at the turn-off region
/// (9.5 Gyr for a solar-mass star) where the synthetic grid ends; mass
/// adds a mild correction. The resulting shape is what produces the
/// paper's convergence artifact: a random initial population almost
/// always contains a near-saturation star (first iteration ~ benchmark
/// time), while converged populations cluster on the younger target and
/// iterate ~20-25% faster.
pub fn relative_cost(p: &StellarParams) -> f64 {
    let age_term = 0.52 + 0.48 * (p.age.min(9.5) / 9.5);
    let mass_term = 1.0 + 0.04 * (p.mass - 1.0) / 0.75;
    age_term * mass_term
}

/// Simulated run time in minutes on a system whose Table 1 stellar-model
/// benchmark time is `benchmark_minutes`.
pub fn cost_minutes(p: &StellarParams, benchmark_minutes: f64) -> f64 {
    benchmark_minutes * relative_cost(p)
}

/// The iteration time of a GA generation: the population is evaluated in
/// parallel (126 stars on 128 processors) and the iteration blocks on the
/// slowest member (§2).
pub fn iteration_minutes<'a>(
    population: impl Iterator<Item = &'a StellarParams>,
    benchmark_minutes: f64,
) -> f64 {
    population
        .map(|p| cost_minutes(p, benchmark_minutes))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Domain;

    #[test]
    fn benchmark_star_costs_unity() {
        let c = relative_cost(&StellarParams::benchmark());
        assert!((c - 1.0).abs() < 1e-12, "benchmark cost {c}");
    }

    #[test]
    fn cost_spread_is_bounded() {
        let d = Domain::default();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        // corner sweep of the domain
        for &m in &[d.mass.lo, d.mass.hi] {
            for &z in &[d.metallicity.lo, d.metallicity.hi] {
                for &a in &[d.age.lo, d.age.hi] {
                    let p = StellarParams {
                        mass: m,
                        metallicity: z,
                        helium: 0.27,
                        alpha: 1.9,
                        age: a,
                    };
                    let c = relative_cost(&p);
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
            }
        }
        assert!(lo > 0.45, "min cost {lo}");
        // the benchmark sits essentially at the domain maximum
        assert!(hi < 1.05, "max cost {hi}");
    }

    #[test]
    fn cost_monotone_in_age_until_saturation() {
        let b = StellarParams::sun();
        let older = StellarParams { age: 8.0, ..b };
        assert!(relative_cost(&older) > relative_cost(&b));
        // past the turn-off the grid ends and cost saturates
        let sat_a = StellarParams { age: 9.5, ..b };
        let sat_b = StellarParams { age: 12.5, ..b };
        assert_eq!(relative_cost(&sat_a), relative_cost(&sat_b));
        // mild mass dependence
        let heavier = StellarParams { mass: 1.4, ..b };
        assert!(relative_cost(&heavier) > relative_cost(&b));
    }

    #[test]
    fn lonestar_direct_runs_match_paper_claim() {
        // §2: direct runs "take 10-15 minutes to execute on a single
        // processor" — on the fast TACC systems typical targets land in
        // that band, with the evolved benchmark star at the top (15.1).
        assert!((cost_minutes(&StellarParams::benchmark(), 15.1) - 15.1).abs() < 1e-9);
        let typical = StellarParams {
            age: 4.0,
            mass: 1.05,
            ..StellarParams::sun()
        };
        let minutes = cost_minutes(&typical, 15.1);
        assert!((10.0..=15.5).contains(&minutes), "{minutes} min");
    }

    #[test]
    fn iteration_time_is_population_max() {
        let b = StellarParams::sun();
        let pop = [
            StellarParams { age: 1.0, ..b },
            b,
            StellarParams {
                age: 8.9,
                mass: 1.3,
                ..b
            },
        ];
        let it = iteration_minutes(pop.iter(), 10.0);
        let slowest = cost_minutes(&pop[2], 10.0);
        assert!((it - slowest).abs() < 1e-12);
    }

    #[test]
    fn empty_population_costs_zero() {
        assert_eq!(iteration_minutes([].iter(), 10.0), 0.0);
    }
}
