//! Star catalogs: the portal's local catalog entries and the synthetic
//! external ("SIMBAD-like") universe used for search fall-through.
//!
//! §4.2: AMP lets users "browse and search star catalogs"; unknown targets
//! are fetched from SIMBAD and imported. We have no SIMBAD, so we generate
//! a deterministic synthetic sky plus a handful of real, well-known stars
//! (the CAPTCHA answers among them).

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::params::{Domain, StellarParams};

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogStar {
    /// Common name, if any ("Alpha Centauri A").
    pub name: Option<String>,
    /// Henry Draper catalog number.
    pub hd_number: Option<u32>,
    /// Kepler Input Catalog number.
    pub kic_number: Option<u32>,
    /// Right ascension \[deg].
    pub ra: f64,
    /// Declination \[deg].
    pub dec: f64,
    /// Apparent V magnitude.
    pub vmag: f64,
    /// Whether Kepler observed this target (§4.2's search highlights stars
    /// "in the Kepler catalog").
    pub in_kepler_field: bool,
    /// Ground-truth parameters of the synthetic star (used to synthesize
    /// observations); None for the hand-curated famous stars.
    pub truth: Option<StellarParams>,
}

impl CatalogStar {
    /// Identifier string the portal displays and searches by.
    pub fn identifier(&self) -> String {
        if let Some(hd) = self.hd_number {
            format!("HD {hd}")
        } else if let Some(kic) = self.kic_number {
            format!("KIC {kic}")
        } else {
            self.name.clone().unwrap_or_else(|| "UNKNOWN".to_string())
        }
    }

    /// All searchable aliases.
    pub fn aliases(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(n) = &self.name {
            out.push(n.clone());
        }
        if let Some(hd) = self.hd_number {
            out.push(format!("HD {hd}"));
            out.push(format!("HD{hd}"));
        }
        if let Some(kic) = self.kic_number {
            out.push(format!("KIC {kic}"));
            out.push(format!("KIC{kic}"));
        }
        out
    }
}

/// Famous stars with their real HD numbers — these back the accessibility
/// CAPTCHA ("What is the HD number for Alpha Centauri?", §4.2).
pub fn famous_stars() -> Vec<CatalogStar> {
    let named = [
        ("Alpha Centauri", 128620u32, 219.9, -60.8, -0.27),
        ("Sirius", 48915, 101.3, -16.7, -1.46),
        ("Procyon", 61421, 114.8, 5.2, 0.34),
        ("Tau Ceti", 10700, 26.0, -15.9, 3.50),
        ("Beta Hydri", 2151, 6.4, -77.3, 2.80),
        ("Eta Bootis", 121370, 208.7, 18.4, 2.68),
        ("16 Cygni A", 186408, 295.5, 50.5, 5.96),
        ("Alpha CMi", 61421, 114.8, 5.2, 0.34),
    ];
    named
        .iter()
        .map(|&(name, hd, ra, dec, vmag)| CatalogStar {
            name: Some(name.to_string()),
            hd_number: Some(hd),
            kic_number: None,
            ra,
            dec,
            vmag,
            in_kepler_field: false,
            truth: None,
        })
        .collect()
}

/// Generate a deterministic synthetic sky of `n` Sun-like stars, a fraction
/// of them inside the Kepler field with KIC numbers.
pub fn synthetic_sky(n: usize, seed: u64) -> Vec<CatalogStar> {
    let domain = Domain::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let truth = StellarParams {
            mass: rng.random_range(domain.mass.lo..domain.mass.hi),
            metallicity: rng.random_range(domain.metallicity.lo..domain.metallicity.hi),
            helium: rng.random_range(domain.helium.lo..domain.helium.hi),
            alpha: rng.random_range(domain.alpha.lo..domain.alpha.hi),
            // keep synthetic targets on the main sequence where the model
            // is well behaved
            age: rng.random_range(1.0..9.0),
        };
        let in_kepler = rng.random_range(0.0..1.0) < 0.4;
        // Kepler's field sits around RA 291, Dec +44.5.
        let (ra, dec) = if in_kepler {
            (rng.random_range(280.0..302.0), rng.random_range(36.5..52.5))
        } else {
            (rng.random_range(0.0..360.0), rng.random_range(-90.0..90.0))
        };
        out.push(CatalogStar {
            name: None,
            hd_number: Some(200_000 + i as u32),
            kic_number: if in_kepler {
                Some(8_000_000 + i as u32)
            } else {
                None
            },
            ra,
            dec,
            vmag: rng.random_range(5.0..12.0),
            in_kepler_field: in_kepler,
            truth: Some(truth),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn famous_stars_include_captcha_answer() {
        let stars = famous_stars();
        let alpha_cen = stars
            .iter()
            .find(|s| s.name.as_deref() == Some("Alpha Centauri"))
            .unwrap();
        assert_eq!(alpha_cen.hd_number, Some(128620));
    }

    #[test]
    fn synthetic_sky_is_deterministic() {
        let a = synthetic_sky(50, 3);
        let b = synthetic_sky(50, 3);
        assert_eq!(a, b);
        let c = synthetic_sky(50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_truths_are_in_domain() {
        let d = Domain::default();
        for s in synthetic_sky(200, 1) {
            let t = s.truth.unwrap();
            assert!(d.contains(&t), "{t:?}");
        }
    }

    #[test]
    fn kepler_targets_have_kic_and_field_coords() {
        let sky = synthetic_sky(300, 2);
        let in_field: Vec<_> = sky.iter().filter(|s| s.in_kepler_field).collect();
        assert!(in_field.len() > 60, "only {}", in_field.len());
        for s in &in_field {
            assert!(s.kic_number.is_some());
            assert!((280.0..302.0).contains(&s.ra));
        }
        assert!(sky.iter().any(|s| !s.in_kepler_field));
    }

    #[test]
    fn identifier_and_aliases() {
        let sky = synthetic_sky(3, 9);
        let s = &sky[0];
        assert!(s.identifier().starts_with("HD "));
        assert!(s.aliases().iter().any(|a| a.starts_with("HD")));
        let famous = famous_stars();
        assert_eq!(famous[0].aliases()[0], "Alpha Centauri");
    }
}
