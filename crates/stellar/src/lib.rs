//! # amp-stellar — the forward asteroseismic model
//!
//! ASTEC stand-in for the AMP gateway reproduction (Woitaszek et al.,
//! GCE 2009): a deterministic synthetic stellar model mapping five physical
//! parameters (mass, metallicity Z, helium Y, mixing-length α, age) to
//! observables — T_eff, luminosity, radius, the p-mode pulsation spectrum —
//! plus the plot data AMP shows (HR-diagram track, Echelle diagram), the
//! observation/χ²-fitness layer the genetic algorithm optimizes, the
//! per-star execution-cost model behind the paper's 160×–180× iteration
//! convergence claim, and star catalogs for the portal.
//!
//! ```
//! use amp_stellar::{evolve, Domain, StellarParams};
//!
//! let sun = evolve(&StellarParams::sun(), &Domain::default()).unwrap();
//! assert!((sun.teff - 5772.0).abs() < 400.0);
//! assert!(sun.frequencies.len() > 30);
//! ```

pub mod catalog;
pub mod cost;
pub mod freqs;
pub mod model;
pub mod observe;
pub mod params;
pub mod plots;

pub use catalog::{famous_stars, synthetic_sky, CatalogStar};
pub use cost::{cost_minutes, iteration_minutes, relative_cost};
pub use freqs::{echelle, EchellePoint, Mode};
pub use model::{evolution_track, evolve, ModelOutput, TrackPoint};
pub use observe::{chi_squared, fitness, synthesize, Constraint, ObservedMode, ObservedStar};
pub use params::{Bound, Domain, StellarParams};
pub use plots::{render_echelle_ascii, render_hr_ascii};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Failures of the forward model. These become AMP "model failures" (the
/// daemon's hold-state class) as opposed to grid transients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelError {
    /// Parameters outside the supported search domain.
    OutOfDomain(StellarParams),
    /// Genome of the wrong arity handed to the decoder.
    BadGenome(usize),
    /// Parameters inside the domain but outside the modelable grid
    /// (e.g. evolved far past the main-sequence turn-off).
    Unmodelable {
        params: StellarParams,
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfDomain(p) => write!(f, "parameters out of domain: {p:?}"),
            ModelError::BadGenome(n) => write!(f, "genome has {n} genes, expected 5"),
            ModelError::Unmodelable { params, detail } => {
                write!(f, "unmodelable parameters {params:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
