//! The forward stellar model — our ASTEC stand-in.
//!
//! ASTEC itself is a Fortran stellar-evolution code; AMP treats it as a
//! black box mapping five parameters to observables plus plot data (paper
//! §2). This module implements a smooth, deterministic synthetic model
//! built from homology scaling relations: physically *shaped* (radius grows
//! with age, luminosity rises steeply with mass, Δν follows the mean-density
//! scaling), so the GA faces a realistic correlated, non-separable
//! optimization landscape, while remaining fast enough to run hundreds of
//! thousands of times inside the simulator.

use serde::{Deserialize, Serialize};

use crate::freqs::{self, Mode};
use crate::params::{Domain, StellarParams};
use crate::ModelError;

/// Solar calibration constants.
pub const TEFF_SUN_K: f64 = 5772.0;
pub const DELTA_NU_SUN_UHZ: f64 = 135.1;
pub const NU_MAX_SUN_UHZ: f64 = 3090.0;

/// Scalar observables produced by one forward-model evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOutput {
    pub params: StellarParams,
    /// Effective temperature \[K].
    pub teff: f64,
    /// Luminosity \[L_sun].
    pub luminosity: f64,
    /// Radius \[R_sun].
    pub radius: f64,
    /// Surface gravity log g [cgs dex].
    pub log_g: f64,
    /// Large frequency separation \[µHz].
    pub delta_nu: f64,
    /// Frequency of maximum oscillation power \[µHz].
    pub nu_max: f64,
    /// Mean small separation d02 \[µHz].
    pub small_separation: f64,
    /// Individual p-mode frequencies.
    pub frequencies: Vec<Mode>,
}

/// A point on the evolution track (for the Hertzsprung–Russell diagram the
/// portal plots, §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    pub age_gyr: f64,
    pub teff: f64,
    pub luminosity: f64,
}

/// Radius in solar units at a given age: slow main-sequence expansion,
/// accelerating toward the subgiant turn-off for higher masses.
fn radius(p: &StellarParams) -> f64 {
    // Main-sequence lifetime shortens steeply with mass.
    let t_ms = 10.0 * p.mass.powf(-2.8); // Gyr
    let x = (p.age / t_ms).min(1.6); // fractional MS age, capped post-turnoff
    let zams = p.mass.powf(0.89) * (1.0 + 0.15 * (p.metallicity / 0.018 - 1.0).tanh() * 0.2);
    // Convective efficiency: higher alpha -> slightly more compact envelope.
    let alpha_term = 1.0 - 0.04 * (p.alpha - 1.9) / 1.9;
    zams * alpha_term * (1.0 + 0.35 * x.powf(1.6) + 0.55 * (x - 1.0).max(0.0).powi(2))
}

/// Luminosity in solar units.
fn luminosity(p: &StellarParams) -> f64 {
    let t_ms = 10.0 * p.mass.powf(-2.8);
    let x = (p.age / t_ms).min(1.6);
    let zams =
        p.mass.powf(4.3) * (p.metallicity / 0.018).powf(-0.12) * (1.0 + 1.8 * (p.helium - 0.27));
    zams * (1.0 + 0.9 * x.powf(1.4))
}

/// Run the forward model at the requested age.
///
/// Fails with [`ModelError::OutOfDomain`] outside the supported parameter
/// space — the "model failure" class that AMP's daemon escalates (§4.4).
pub fn evolve(p: &StellarParams, domain: &Domain) -> Result<ModelOutput, ModelError> {
    domain.check(p)?;
    let r = radius(p);
    let l = luminosity(p);
    let teff = TEFF_SUN_K * (l / (r * r)).powf(0.25);
    if !teff.is_finite() || !(4000.0..=8000.0).contains(&teff) {
        // Evolved off the grid the (synthetic) pulsation tables cover.
        return Err(ModelError::Unmodelable {
            params: *p,
            detail: format!("Teff {teff:.0} K outside pulsation grid"),
        });
    }
    let log_g = 4.438 + (p.mass / (r * r)).log10();
    let delta_nu = DELTA_NU_SUN_UHZ * (p.mass / r.powi(3)).sqrt();
    let nu_max = NU_MAX_SUN_UHZ * p.mass / (r * r * (teff / TEFF_SUN_K).sqrt());
    let frequencies = freqs::mode_frequencies(p, delta_nu, nu_max);
    let small_separation = freqs::mean_small_separation(&frequencies);
    Ok(ModelOutput {
        params: *p,
        teff,
        luminosity: l,
        radius: r,
        log_g,
        delta_nu,
        nu_max,
        small_separation,
        frequencies,
    })
}

/// Evolution track from ZAMS to the requested age (HR-diagram plot data).
pub fn evolution_track(
    p: &StellarParams,
    domain: &Domain,
    points: usize,
) -> Result<Vec<TrackPoint>, ModelError> {
    domain.check(p)?;
    let points = points.max(2);
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let age = domain.age.lo + (p.age - domain.age.lo) * i as f64 / (points - 1) as f64;
        let q = StellarParams { age, ..*p };
        let r = radius(&q);
        let l = luminosity(&q);
        out.push(TrackPoint {
            age_gyr: age,
            teff: TEFF_SUN_K * (l / (r * r)).powf(0.25),
            luminosity: l,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sun() -> ModelOutput {
        evolve(&StellarParams::sun(), &Domain::default()).unwrap()
    }

    #[test]
    fn sun_is_roughly_solar() {
        let s = sun();
        assert!((s.radius - 1.0).abs() < 0.25, "R = {}", s.radius);
        assert!((s.luminosity - 1.0).abs() < 0.5, "L = {}", s.luminosity);
        assert!((s.teff - TEFF_SUN_K).abs() < 400.0, "Teff = {}", s.teff);
        assert!((s.delta_nu - DELTA_NU_SUN_UHZ).abs() < 30.0);
        assert!(s.nu_max > 2000.0 && s.nu_max < 4500.0);
        assert!((s.log_g - 4.44).abs() < 0.2);
    }

    #[test]
    fn luminosity_increases_with_mass() {
        let d = Domain::default();
        let mut prev = 0.0;
        for m in [0.8, 1.0, 1.2, 1.4] {
            let p = StellarParams {
                mass: m,
                ..StellarParams::benchmark()
            };
            let out = evolve(&p, &d).unwrap();
            assert!(out.luminosity > prev);
            prev = out.luminosity;
        }
    }

    #[test]
    fn radius_grows_with_age() {
        let d = Domain::default();
        let young = evolve(
            &StellarParams {
                age: 1.0,
                ..StellarParams::benchmark()
            },
            &d,
        )
        .unwrap();
        let old = evolve(
            &StellarParams {
                age: 9.0,
                ..StellarParams::benchmark()
            },
            &d,
        )
        .unwrap();
        assert!(old.radius > young.radius);
        // larger radius at fixed mass -> lower mean density -> smaller delta_nu
        assert!(old.delta_nu < young.delta_nu);
    }

    #[test]
    fn deterministic() {
        let a = sun();
        let b = sun();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_domain_is_error() {
        let d = Domain::default();
        let p = StellarParams {
            mass: 3.0,
            ..StellarParams::benchmark()
        };
        assert!(evolve(&p, &d).is_err());
    }

    #[test]
    fn hot_evolved_star_unmodelable() {
        let d = Domain::default();
        // massive + very old -> far past turn-off -> off the grid
        let p = StellarParams {
            mass: 1.75,
            age: 13.0,
            ..StellarParams::benchmark()
        };
        match evolve(&p, &d) {
            Err(ModelError::Unmodelable { .. }) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn track_is_monotone_in_age_and_ends_at_target() {
        let d = Domain::default();
        let p = StellarParams::benchmark();
        let track = evolution_track(&p, &d, 20).unwrap();
        assert_eq!(track.len(), 20);
        assert!((track.last().unwrap().age_gyr - p.age).abs() < 1e-9);
        for w in track.windows(2) {
            assert!(w[1].age_gyr > w[0].age_gyr);
            assert!(w[1].luminosity >= w[0].luminosity);
        }
    }

    #[test]
    fn frequencies_are_generated() {
        let s = sun();
        assert!(s.frequencies.len() > 30);
        assert!(s.small_separation > 0.0 && s.small_separation < 25.0);
    }
}
