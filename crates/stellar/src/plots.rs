//! ASCII rendering of the paper's two plots (§2): the Hertzsprung–Russell
//! diagram ("showing the star's temperature and luminosity") and the
//! Echelle diagram ("summarizing the star's oscillation frequencies").
//!
//! The portal embeds these in `<pre>` blocks so results pages stay fully
//! functional without JavaScript (§4.2's accessibility stance); the JSON
//! endpoints carry the same data for AJAX clients.

use crate::freqs::EchellePoint;
use crate::model::TrackPoint;

/// A fixed-size character canvas.
struct Canvas {
    w: usize,
    h: usize,
    cells: Vec<u8>,
}

impl Canvas {
    fn new(w: usize, h: usize) -> Canvas {
        Canvas {
            w,
            h,
            cells: vec![b' '; w * h],
        }
    }

    fn set(&mut self, x: usize, y: usize, c: u8) {
        if x < self.w && y < self.h {
            self.cells[y * self.w + x] = c;
        }
    }

    fn render(&self) -> String {
        let mut out = String::with_capacity((self.w + 1) * self.h);
        for row in self.cells.chunks(self.w) {
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

fn scale(v: f64, lo: f64, hi: f64, n: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    (((v - lo) / (hi - lo)) * (n as f64 - 1.0))
        .round()
        .clamp(0.0, n as f64 - 1.0) as usize
}

/// Render an HR diagram of an evolution track. Astronomy convention:
/// temperature increases to the LEFT; luminosity upward (log scale).
/// The `*` marks the track's endpoint (the modeled star).
pub fn render_hr_ascii(track: &[TrackPoint], width: usize, height: usize) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(8, 100);
    if track.is_empty() {
        return "(empty track)\n".to_string();
    }
    let t_lo = track.iter().map(|p| p.teff).fold(f64::INFINITY, f64::min) - 50.0;
    let t_hi = track.iter().map(|p| p.teff).fold(0.0, f64::max) + 50.0;
    let l_lo = track
        .iter()
        .map(|p| p.luminosity.max(1e-3).log10())
        .fold(f64::INFINITY, f64::min)
        - 0.05;
    let l_hi = track
        .iter()
        .map(|p| p.luminosity.max(1e-3).log10())
        .fold(f64::NEG_INFINITY, f64::max)
        + 0.05;

    let mut c = Canvas::new(width, height);
    for p in track {
        // hot on the left: invert the temperature axis
        let x = width - 1 - scale(p.teff, t_lo, t_hi, width);
        let y = height - 1 - scale(p.luminosity.max(1e-3).log10(), l_lo, l_hi, height);
        c.set(x, y, b'.');
    }
    if let Some(last) = track.last() {
        let x = width - 1 - scale(last.teff, t_lo, t_hi, width);
        let y = height - 1 - scale(last.luminosity.max(1e-3).log10(), l_lo, l_hi, height);
        c.set(x, y, b'*');
    }
    format!(
        "HR diagram (Teff {:.0}-{:.0} K <- hotter left | log L/Lsun {:.2}..{:.2})\n{}",
        t_hi,
        t_lo,
        l_lo,
        l_hi,
        c.render()
    )
}

/// Render an Echelle diagram: frequency modulo Δν (x) vs frequency (y,
/// increasing upward). Modes are marked by degree: `o` (l=0), `+` (l=1),
/// `x` (l=2), `#` (overlap).
pub fn render_echelle_ascii(
    points: &[EchellePoint],
    delta_nu: f64,
    width: usize,
    height: usize,
) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(8, 100);
    if points.is_empty() || delta_nu <= 0.0 {
        return "(no modes)\n".to_string();
    }
    let f_lo = points
        .iter()
        .map(|p| p.frequency)
        .fold(f64::INFINITY, f64::min);
    let f_hi = points.iter().map(|p| p.frequency).fold(0.0, f64::max);
    let mut c = Canvas::new(width, height);
    for p in points {
        let x = scale(p.modulo, 0.0, delta_nu, width);
        let y = height - 1 - scale(p.frequency, f_lo, f_hi, height);
        let mark = match p.l {
            0 => b'o',
            1 => b'+',
            2 => b'x',
            _ => b'?',
        };
        let idx = y * c.w + x;
        if c.cells[idx] != b' ' && c.cells[idx] != mark {
            c.set(x, y, b'#');
        } else {
            c.set(x, y, mark);
        }
    }
    format!(
        "Echelle diagram (nu mod {delta_nu:.1} uHz -> | nu {f_lo:.0}-{f_hi:.0} uHz ^)  o:l=0 +:l=1 x:l=2\n{}",
        c.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{evolution_track, evolve};
    use crate::params::{Domain, StellarParams};

    #[test]
    fn hr_plot_structure() {
        let d = Domain::default();
        let track = evolution_track(&StellarParams::sun(), &d, 40).unwrap();
        let art = render_hr_ascii(&track, 60, 20);
        assert!(art.starts_with("HR diagram"));
        assert_eq!(art.lines().count(), 21);
        assert!(art.contains('*'), "endpoint marked");
        assert!(art.matches('.').count() > 10, "track drawn");
        // fixed canvas width
        for line in art.lines().skip(1) {
            assert_eq!(line.len(), 60);
        }
    }

    #[test]
    fn echelle_plot_shows_three_ridges() {
        let d = Domain::default();
        let m = evolve(&StellarParams::sun(), &d).unwrap();
        let pts = crate::freqs::echelle(&m.frequencies, m.delta_nu);
        let art = render_echelle_ascii(&pts, m.delta_nu, 60, 24);
        assert!(art.contains('o'), "l=0 ridge");
        assert!(art.contains('+'), "l=1 ridge");
        assert!(art.contains('x') || art.contains('#'), "l=2 ridge");
        // the asymptotic relation puts l=0 and l=1 ridges roughly half a
        // delta_nu apart: their mean column positions must differ clearly
        let col_mean = |mark: char| -> f64 {
            let mut cols = Vec::new();
            for line in art.lines().skip(1) {
                for (i, ch) in line.chars().enumerate() {
                    if ch == mark {
                        cols.push(i as f64);
                    }
                }
            }
            cols.iter().sum::<f64>() / cols.len().max(1) as f64
        };
        let sep = (col_mean('o') - col_mean('+')).abs();
        assert!(sep > 10.0, "ridge separation {sep} columns");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(render_hr_ascii(&[], 60, 20), "(empty track)\n");
        assert_eq!(render_echelle_ascii(&[], 135.0, 60, 20), "(no modes)\n");
        let one = [TrackPoint {
            age_gyr: 1.0,
            teff: 5772.0,
            luminosity: 1.0,
        }];
        let art = render_hr_ascii(&one, 60, 20);
        assert!(art.contains('*'));
    }

    #[test]
    fn dimensions_clamped() {
        let one = [TrackPoint {
            age_gyr: 1.0,
            teff: 5772.0,
            luminosity: 1.0,
        }];
        let art = render_hr_ascii(&one, 1, 1);
        assert!(art.lines().count() >= 8, "height clamped up");
    }
}
