//! Stellar model input parameters and their validity domain.
//!
//! The paper (§2): ASTEC "takes as input five floating-point physical
//! parameters (mass, metallicity, helium mass fraction, and convective
//! efficiency) and constructs a model of the star's evolution through a
//! specified age". The five inputs here are exactly those, with domain
//! bounds matching the Sun-like stars AMP targets.

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The five ASTEC input parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StellarParams {
    /// Stellar mass in solar masses.
    pub mass: f64,
    /// Heavy-element mass fraction Z.
    pub metallicity: f64,
    /// Helium mass fraction Y.
    pub helium: f64,
    /// Convective mixing-length efficiency alpha.
    pub alpha: f64,
    /// Age in Gyr at which the evolution stops.
    pub age: f64,
}

/// Inclusive lower/upper bound for one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bound {
    pub lo: f64,
    pub hi: f64,
}

impl Bound {
    pub fn contains(&self, v: f64) -> bool {
        v.is_finite() && v >= self.lo && v <= self.hi
    }

    /// Map a normalized coordinate in \[0,1] into the bound.
    pub fn denormalize(&self, t: f64) -> f64 {
        self.lo + (self.hi - self.lo) * t.clamp(0.0, 1.0)
    }

    /// Map a value in the bound to \[0,1].
    pub fn normalize(&self, v: f64) -> f64 {
        if self.hi == self.lo {
            0.0
        } else {
            ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        }
    }
}

/// The search domain used by the AMP optimization pipeline (Sun-like stars
/// observable by Kepler).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    pub mass: Bound,
    pub metallicity: Bound,
    pub helium: Bound,
    pub alpha: Bound,
    pub age: Bound,
}

impl Default for Domain {
    fn default() -> Self {
        Domain {
            mass: Bound { lo: 0.75, hi: 1.75 },
            metallicity: Bound {
                lo: 0.002,
                hi: 0.050,
            },
            helium: Bound { lo: 0.22, hi: 0.32 },
            alpha: Bound { lo: 1.0, hi: 3.0 },
            age: Bound { lo: 0.1, hi: 13.0 },
        }
    }
}

impl Domain {
    /// Number of model parameters (genome length for the GA).
    pub const N_PARAMS: usize = 5;

    pub fn contains(&self, p: &StellarParams) -> bool {
        self.mass.contains(p.mass)
            && self.metallicity.contains(p.metallicity)
            && self.helium.contains(p.helium)
            && self.alpha.contains(p.alpha)
            && self.age.contains(p.age)
    }

    /// Validate, returning a model-failure error (the kind AMP's daemon
    /// escalates to a hold state) for out-of-domain input.
    pub fn check(&self, p: &StellarParams) -> Result<(), ModelError> {
        if self.contains(p) {
            Ok(())
        } else {
            Err(ModelError::OutOfDomain(*p))
        }
    }

    /// Decode a normalized GA genome (\[0,1]^5) into physical parameters.
    pub fn decode(&self, genome: &[f64]) -> Result<StellarParams, ModelError> {
        if genome.len() != Self::N_PARAMS {
            return Err(ModelError::BadGenome(genome.len()));
        }
        Ok(StellarParams {
            mass: self.mass.denormalize(genome[0]),
            metallicity: self.metallicity.denormalize(genome[1]),
            helium: self.helium.denormalize(genome[2]),
            alpha: self.alpha.denormalize(genome[3]),
            age: self.age.denormalize(genome[4]),
        })
    }

    /// Encode physical parameters as a normalized genome.
    pub fn encode(&self, p: &StellarParams) -> [f64; Self::N_PARAMS] {
        [
            self.mass.normalize(p.mass),
            self.metallicity.normalize(p.metallicity),
            self.helium.normalize(p.helium),
            self.alpha.normalize(p.alpha),
            self.age.normalize(p.age),
        ]
    }
}

impl StellarParams {
    /// The calibration star for benchmarks: an *evolved* solar analogue
    /// (1.0 M_sun at 9.5 Gyr, at the cost model's saturation point) whose
    /// run time defines each system's Table 1 benchmark (relative cost
    /// exactly 1.0). The paper benchmarked with a near-worst-case model
    /// run — typical Kepler targets evolve to younger ages and run ~20%
    /// faster, which is exactly how 200 iterations fit in ~160x the
    /// benchmark time.
    pub fn benchmark() -> Self {
        StellarParams {
            mass: 1.0,
            metallicity: 0.018,
            helium: 0.27,
            alpha: 1.9,
            age: 9.5,
        }
    }

    /// The Sun, for reference outputs.
    pub fn sun() -> Self {
        StellarParams {
            mass: 1.0,
            metallicity: 0.018,
            helium: 0.27,
            alpha: 1.9,
            age: 4.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_domain_contains_benchmark() {
        let d = Domain::default();
        assert!(d.contains(&StellarParams::benchmark()));
        assert!(d.check(&StellarParams::benchmark()).is_ok());
    }

    #[test]
    fn out_of_domain_rejected() {
        let d = Domain::default();
        let mut p = StellarParams::benchmark();
        p.mass = 5.0;
        assert!(!d.contains(&p));
        assert!(matches!(d.check(&p), Err(ModelError::OutOfDomain(_))));
        p.mass = f64::NAN;
        assert!(!d.contains(&p));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = Domain::default();
        let p = StellarParams {
            mass: 1.3,
            metallicity: 0.02,
            helium: 0.25,
            alpha: 2.2,
            age: 6.0,
        };
        let g = d.encode(&p);
        let p2 = d.decode(&g).unwrap();
        assert!((p.mass - p2.mass).abs() < 1e-12);
        assert!((p.age - p2.age).abs() < 1e-12);
    }

    #[test]
    fn decode_clamps_and_checks_arity() {
        let d = Domain::default();
        let p = d.decode(&[2.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(p.mass, d.mass.hi);
        assert_eq!(p.metallicity, d.metallicity.lo);
        assert!(matches!(
            d.decode(&[0.5, 0.5]),
            Err(ModelError::BadGenome(2))
        ));
    }

    #[test]
    fn bound_normalize_degenerate() {
        let b = Bound { lo: 1.0, hi: 1.0 };
        assert_eq!(b.normalize(1.0), 0.0);
    }
}
