//! The simulated SIMBAD astronomical database.
//!
//! §4.2: "If no stars are in AMP's catalog, the search is passed to the
//! SIMBAD astronomical database and the target, if found, is added to the
//! local catalog." We cannot reach Strasbourg, so this is a deterministic
//! synthetic sky with the same query surface, plus an availability toggle
//! so tests can exercise the external-service-down path.

use amp_stellar::{famous_stars, synthetic_sky, CatalogStar};
use parking_lot::RwLock;

/// Errors from the external catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum SimbadError {
    /// Service unreachable (network blip — the portal degrades gracefully).
    Unavailable,
    /// Identifier not found in the external database.
    NotFound(String),
}

/// The external catalog service.
pub struct Simbad {
    sky: Vec<CatalogStar>,
    available: RwLock<bool>,
    queries: RwLock<u64>,
}

impl Simbad {
    /// Build the synthetic universe: the famous stars plus `n` synthetic
    /// targets (deterministic per seed).
    pub fn new(n: usize, seed: u64) -> Simbad {
        let mut sky = famous_stars();
        sky.extend(synthetic_sky(n, seed));
        Simbad {
            sky,
            available: RwLock::new(true),
            queries: RwLock::new(0),
        }
    }

    /// Toggle availability (outage injection).
    pub fn set_available(&self, up: bool) {
        *self.available.write() = up;
    }

    /// Number of queries served (the portal should only fall through on
    /// local misses — tested).
    pub fn query_count(&self) -> u64 {
        *self.queries.read()
    }

    /// Exact-identifier lookup across aliases (case-insensitive,
    /// whitespace-tolerant).
    pub fn resolve(&self, identifier: &str) -> Result<CatalogStar, SimbadError> {
        *self.queries.write() += 1;
        if !*self.available.read() {
            return Err(SimbadError::Unavailable);
        }
        let needle = normalize(identifier);
        self.sky
            .iter()
            .find(|s| s.aliases().iter().any(|a| normalize(a) == needle))
            .cloned()
            .ok_or_else(|| SimbadError::NotFound(identifier.to_string()))
    }

    /// Prefix search over aliases (used by tests and the admin tooling;
    /// the public portal only resolves exact identifiers, as AMP did).
    pub fn search_prefix(&self, prefix: &str, limit: usize) -> Vec<CatalogStar> {
        let needle = normalize(prefix);
        if needle.is_empty() {
            return Vec::new();
        }
        self.sky
            .iter()
            .filter(|s| {
                s.aliases()
                    .iter()
                    .any(|a| normalize(a).starts_with(&needle))
            })
            .take(limit)
            .cloned()
            .collect()
    }
}

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_famous_star_by_any_alias() {
        let s = Simbad::new(10, 1);
        for query in ["Alpha Centauri", "HD 128620", "hd128620", "  HD  128620 "] {
            let star = s.resolve(query).unwrap();
            assert_eq!(star.hd_number, Some(128620), "query {query:?}");
        }
        assert_eq!(s.query_count(), 4);
    }

    #[test]
    fn resolves_synthetic_star() {
        let s = Simbad::new(5, 2);
        let target = synthetic_sky(5, 2)[3].clone();
        let found = s.resolve(&target.identifier()).unwrap();
        assert_eq!(found.identifier(), target.identifier());
    }

    #[test]
    fn unknown_identifier() {
        let s = Simbad::new(5, 2);
        assert_eq!(
            s.resolve("HD 999999999"),
            Err(SimbadError::NotFound("HD 999999999".into()))
        );
    }

    #[test]
    fn outage_toggle() {
        let s = Simbad::new(5, 2);
        s.set_available(false);
        assert_eq!(s.resolve("HD 128620"), Err(SimbadError::Unavailable));
        s.set_available(true);
        assert!(s.resolve("HD 128620").is_ok());
    }

    #[test]
    fn prefix_search() {
        let s = Simbad::new(0, 0);
        let hits = s.search_prefix("HD 1", 50);
        assert!(hits.iter().any(|h| h.hd_number == Some(128620)));
        assert!(s.search_prefix("", 10).is_empty());
        assert_eq!(s.search_prefix("Sirius", 10).len(), 1);
        // limit respected
        assert!(s.search_prefix("HD", 2).len() <= 2);
    }
}
