//! The portal application object: configuration, shared services, and the
//! URL map wiring the Django-style apps together.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use amp_core::models::AmpUser;
use amp_core::roles::{ROLE_ADMIN, ROLE_WEB};
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, Db, DbError};

use crate::auth::{Session, SessionStore};
use crate::captcha::Captcha;
use crate::http::{html_escape, Request, Response};
use crate::router::Router;
use crate::simbad::Simbad;

/// Portal configuration.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// §4.1: the admin interface is only reachable on non-public deploys
    /// ("the administrative functionality is not even possible from any
    /// publicly accessible web servers"). When false, /admin/* routes 404
    /// and the portal never even holds an admin DB connection.
    pub admin_enabled: bool,
    /// Synthetic-SIMBAD size and seed.
    pub simbad_stars: usize,
    pub simbad_seed: u64,
    /// Site title shown in the layout.
    pub site_title: String,
}

impl Default for PortalConfig {
    fn default() -> Self {
        PortalConfig {
            admin_enabled: false,
            simbad_stars: 200,
            simbad_seed: 2009,
            site_title: "Asteroseismic Modeling Portal".into(),
        }
    }
}

/// The web gateway.
pub struct Portal {
    conn: Connection,
    admin_conn: Option<Connection>,
    pub sessions: SessionStore,
    pub captcha: Captcha,
    pub simbad: Simbad,
    pub config: PortalConfig,
    clock: AtomicI64,
    register_nonce: AtomicU64,
    router: Router,
}

impl Portal {
    /// Connect to the central database. The portal always uses the `web`
    /// role; the admin connection exists only on admin-enabled deploys.
    pub fn new(db: &Db, config: PortalConfig) -> Result<Portal, DbError> {
        let conn = db.connect(ROLE_WEB)?;
        let admin_conn = if config.admin_enabled {
            Some(db.connect(ROLE_ADMIN)?)
        } else {
            None
        };
        let mut portal = Portal {
            conn,
            admin_conn,
            sessions: SessionStore::new(),
            captcha: Captcha::astronomy(),
            simbad: Simbad::new(config.simbad_stars, config.simbad_seed),
            config,
            clock: AtomicI64::new(0),
            register_nonce: AtomicU64::new(0),
            router: Router::new(),
        };
        portal.router = crate::apps::build_router(portal.config.admin_enabled);
        Ok(portal)
    }

    /// The portal's clock is fed from the simulation (all of AMP runs on
    /// simulated time in this reproduction).
    pub fn set_now(&self, now: i64) {
        self.clock.store(now, Ordering::SeqCst);
    }

    pub fn now(&self) -> i64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// The web-role connection (what every public view uses).
    pub fn conn(&self) -> &Connection {
        &self.conn
    }

    /// The admin connection — present only on admin-enabled deploys.
    pub fn admin_conn(&self) -> Option<&Connection> {
        self.admin_conn.as_ref()
    }

    pub(crate) fn next_register_nonce(&self) -> u64 {
        self.register_nonce.fetch_add(1, Ordering::SeqCst)
    }

    /// Handle one request end-to-end.
    pub fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(self, req)
    }

    /// Resolve the request's session cookie.
    pub fn session(&self, req: &Request) -> Option<Session> {
        let token = req.cookies.get("amp_session")?;
        self.sessions.get(token, self.now())
    }

    /// Resolve the logged-in user (session + fresh DB row).
    pub fn current_user(&self, req: &Request) -> Option<AmpUser> {
        let session = self.session(req)?;
        Manager::<AmpUser>::new(self.conn.clone())
            .get(session.user_id)
            .ok()
    }

    /// Render a page in the site layout.
    pub fn page(&self, title: &str, user: Option<&AmpUser>, body: &str) -> Response {
        let nav_user = match user {
            Some(u) => format!(
                "<a href=\"/accounts/profile\">{}</a> | <a href=\"/accounts/logout\">log out</a>",
                html_escape(&u.username)
            ),
            None => "<a href=\"/accounts/login\">log in</a> | <a href=\"/accounts/register\">register</a>"
                .to_string(),
        };
        let html = format!(
            "<!doctype html>\n<html><head><title>{title} — {site}</title></head>\n<body>\n\
             <header><h1><a href=\"/\">{site}</a></h1>\
             <nav><a href=\"/stars\">stars</a> | <a href=\"/simulations\">simulations</a> | {nav_user}</nav></header>\n\
             <main>\n{body}\n</main>\n\
             <footer>AMP — simulations, computational jobs, allocations and supercomputers.</footer>\n</body></html>",
            title = html_escape(title),
            site = html_escape(&self.config.site_title),
        );
        Response::html(html)
    }
}
