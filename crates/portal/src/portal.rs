//! The portal application object: configuration, shared services, and the
//! URL map wiring the Django-style apps together.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use amp_core::models::AmpUser;
use amp_core::roles::{ROLE_ADMIN, ROLE_WEB};
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, Db, DbError};

use crate::auth::{Session, SessionStore};
use crate::cache::ResponseCache;
use crate::captcha::Captcha;
use crate::http::{html_escape, Request, Response};
use crate::router::Router;
use crate::simbad::Simbad;
use crate::templates::TemplateRegistry;

/// The site layout, compiled once into the shared [`registry`]. `body`
/// and `nav_user` are pre-rendered HTML (`|safe`); `title` and `site`
/// are escaped by the engine exactly as the old `format!` path did.
const LAYOUT_TEMPLATE: &str = "<!doctype html>\n\
     <html><head><title>{{ title }} — {{ site }}</title></head>\n\
     <body>\n\
     <header><h1><a href=\"/\">{{ site }}</a></h1>\
     <nav><a href=\"/stars\">stars</a> | <a href=\"/simulations\">simulations</a> | {{ nav_user|safe }}</nav></header>\n\
     <main>\n{{ body|safe }}\n</main>\n\
     <footer>AMP — simulations, computational jobs, allocations and supercomputers.</footer>\n</body></html>";

/// The portal's precompiled templates, parsed once per process. Views
/// render through here instead of re-parsing template source per request.
pub(crate) fn registry() -> &'static TemplateRegistry {
    static REGISTRY: std::sync::OnceLock<TemplateRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = TemplateRegistry::new();
        reg.register("layout", LAYOUT_TEMPLATE)
            .expect("layout template parses");
        reg.register("home", crate::apps::HOME_TEMPLATE)
            .expect("home template parses");
        reg
    })
}

/// Portal configuration.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// §4.1: the admin interface is only reachable on non-public deploys
    /// ("the administrative functionality is not even possible from any
    /// publicly accessible web servers"). When false, /admin/* routes 404
    /// and the portal never even holds an admin DB connection.
    pub admin_enabled: bool,
    /// Synthetic-SIMBAD size and seed.
    pub simbad_stars: usize,
    pub simbad_seed: u64,
    /// Site title shown in the layout.
    pub site_title: String,
    /// Serve anonymous read-only pages from the versioned response cache
    /// (see [`crate::cache`]). Disable to force every request through a
    /// fresh render — the cache property test diffs the two.
    pub cache_enabled: bool,
    /// Maximum cached entries before wholesale eviction.
    pub cache_capacity: usize,
}

impl Default for PortalConfig {
    fn default() -> Self {
        PortalConfig {
            admin_enabled: false,
            simbad_stars: 200,
            simbad_seed: 2009,
            site_title: "Asteroseismic Modeling Portal".into(),
            cache_enabled: true,
            cache_capacity: 4096,
        }
    }
}

/// The web gateway.
pub struct Portal {
    conn: Connection,
    admin_conn: Option<Connection>,
    pub sessions: SessionStore,
    pub captcha: Captcha,
    pub simbad: Simbad,
    pub config: PortalConfig,
    clock: AtomicI64,
    register_nonce: AtomicU64,
    router: Router,
    cache: ResponseCache,
}

impl Portal {
    /// Connect to the central database. The portal always uses the `web`
    /// role; the admin connection exists only on admin-enabled deploys.
    pub fn new(db: &Db, config: PortalConfig) -> Result<Portal, DbError> {
        let conn = db.connect(ROLE_WEB)?;
        let admin_conn = if config.admin_enabled {
            Some(db.connect(ROLE_ADMIN)?)
        } else {
            None
        };
        let cache = ResponseCache::new(config.cache_capacity);
        let mut portal = Portal {
            conn,
            admin_conn,
            sessions: SessionStore::new(),
            captcha: Captcha::astronomy(),
            simbad: Simbad::new(config.simbad_stars, config.simbad_seed),
            config,
            clock: AtomicI64::new(0),
            register_nonce: AtomicU64::new(0),
            router: Router::new(),
            cache,
        };
        portal.router = crate::apps::build_router(portal.config.admin_enabled);
        Ok(portal)
    }

    /// The portal's clock is fed from the simulation (all of AMP runs on
    /// simulated time in this reproduction).
    pub fn set_now(&self, now: i64) {
        self.clock.store(now, Ordering::SeqCst);
    }

    pub fn now(&self) -> i64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// The web-role connection (what every public view uses).
    pub fn conn(&self) -> &Connection {
        &self.conn
    }

    /// The admin connection — present only on admin-enabled deploys.
    pub fn admin_conn(&self) -> Option<&Connection> {
        self.admin_conn.as_ref()
    }

    pub(crate) fn next_register_nonce(&self) -> u64 {
        self.register_nonce.fetch_add(1, Ordering::SeqCst)
    }

    /// Handle one request end-to-end, serving anonymous read-only pages
    /// from the versioned response cache when possible. Every request is
    /// recorded in the global metrics registry (per-route count, status,
    /// latency; cache hit/miss).
    pub fn handle(&self, req: &Request) -> Response {
        let start = std::time::Instant::now();
        let response = self.handle_uninstrumented(req);
        let route = self.router.label(req).unwrap_or("unmatched");
        let registry = amp_obs::registry();
        registry
            .counter(&amp_obs::labeled(
                "portal_requests_total",
                &[("route", route), ("status", &response.status.to_string())],
            ))
            .inc();
        registry
            .histogram(
                &amp_obs::labeled("portal_request_seconds", &[("route", route)]),
                amp_obs::Unit::Seconds,
            )
            .observe_duration(start.elapsed());
        response
    }

    fn handle_uninstrumented(&self, req: &Request) -> Response {
        static CACHE_HITS: std::sync::OnceLock<amp_obs::Counter> = std::sync::OnceLock::new();
        static CACHE_MISSES: std::sync::OnceLock<amp_obs::Counter> = std::sync::OnceLock::new();
        if self.config.cache_enabled {
            if let Some(deps) = ResponseCache::cacheable(req) {
                let key = ResponseCache::key(req);
                // Stamp before rendering: a commit-clock-validated pin of
                // each dependency table's published version — a handful of
                // atomic loads, no lock, no writer blocked. The cut is
                // coherent, so the stamp can never mix a pre-transaction
                // version of one table with a post-transaction version of
                // another. A write racing the render itself can only make
                // the stored entry look stale, never fresh.
                // (Not-yet-migrated tables stamp as version 0.)
                let stamp = self.conn.table_versions(deps);
                if let Some(resp) = self.cache.get(&key, &stamp) {
                    CACHE_HITS
                        .get_or_init(|| amp_obs::counter("portal_cache_hits_total"))
                        .inc();
                    return resp;
                }
                CACHE_MISSES
                    .get_or_init(|| amp_obs::counter("portal_cache_misses_total"))
                    .inc();
                let resp = self.router.dispatch(self, req);
                self.cache.put(key, stamp, &resp);
                return resp;
            }
        }
        self.router.dispatch(self, req)
    }

    /// The response cache (hit/miss counters for tests and benches).
    pub fn cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// Resolve the request's session cookie.
    pub fn session(&self, req: &Request) -> Option<Session> {
        let token = req.cookies.get("amp_session")?;
        self.sessions.get(token, self.now())
    }

    /// Resolve the logged-in user (session + fresh DB row).
    pub fn current_user(&self, req: &Request) -> Option<AmpUser> {
        let session = self.session(req)?;
        Manager::<AmpUser>::new(self.conn.clone())
            .get(session.user_id)
            .ok()
    }

    /// Render a page in the site layout.
    pub fn page(&self, title: &str, user: Option<&AmpUser>, body: &str) -> Response {
        let nav_user = match user {
            Some(u) => format!(
                "<a href=\"/accounts/profile\">{}</a> | <a href=\"/accounts/logout\">log out</a>",
                html_escape(&u.username)
            ),
            None => "<a href=\"/accounts/login\">log in</a> | <a href=\"/accounts/register\">register</a>"
                .to_string(),
        };
        let ctx = serde_json::json!({
            "title": title,
            "site": self.config.site_title,
            "nav_user": nav_user,
            "body": body,
        });
        Response::html(registry().render("layout", &ctx))
    }

    /// A 404 rendered in the site layout — used when a route exists but
    /// its subject doesn't (e.g. an unknown science application id), so
    /// users get navigation back out instead of a bare error line.
    pub fn page_not_found(&self, user: Option<&AmpUser>, msg: &str) -> Response {
        let body = format!(
            "<h2>Not found</h2><p>{}</p>\
             <p><a href=\"/apps\">Browse the installed science applications</a></p>",
            html_escape(msg)
        );
        let mut resp = self.page("Not found", user, &body);
        resp.status = 404;
        resp
    }
}
