//! A small Django-flavoured template engine.
//!
//! Supports exactly what the portal's pages need:
//!
//! * `{{ expr }}` — HTML-escaped interpolation (dotted paths into the
//!   context, e.g. `{{ star.name }}`);
//! * `{{ expr|safe }}` — unescaped interpolation;
//! * `{% if expr %} ... {% else %} ... {% endif %}` — truthiness like
//!   Django's (empty string / 0 / false / null / empty array are falsy);
//! * `{% for x in expr %} ... {% endfor %}` — iterate arrays, binding `x`.
//!
//! The context is a `serde_json::Value` (maps compose well with the ORM
//! rows the views build).

use crate::http::html_escape;
use serde_json::Value;

/// Template render failures (syntax problems; missing values render "").
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    UnclosedTag(String),
    UnexpectedTag(String),
    BadFor(String),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::UnclosedTag(t) => write!(f, "unclosed tag: {t}"),
            TemplateError::UnexpectedTag(t) => write!(f, "unexpected tag: {t}"),
            TemplateError::BadFor(t) => write!(f, "malformed for tag: {t}"),
        }
    }
}

impl std::error::Error for TemplateError {}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Text(String),
    /// (expression, escape?)
    Var(String, bool),
    If {
        cond: String,
        then: Vec<Node>,
        otherwise: Vec<Node>,
    },
    For {
        binding: String,
        list: String,
        body: Vec<Node>,
    },
}

/// A parsed template, reusable across renders.
#[derive(Debug, Clone)]
pub struct Template {
    nodes: Vec<Node>,
}

impl Template {
    pub fn parse(source: &str) -> Result<Template, TemplateError> {
        let tokens = tokenize(source);
        let mut pos = 0;
        let nodes = parse_nodes(&tokens, &mut pos, None)?;
        Ok(Template { nodes })
    }

    pub fn render(&self, ctx: &Value) -> String {
        let mut out = String::new();
        self.render_into(ctx, &mut out);
        out
    }

    /// Render appending to an existing buffer (callers size-hint it).
    pub fn render_into(&self, ctx: &Value, out: &mut String) {
        render_nodes(&self.nodes, std::slice::from_ref(ctx), out);
    }
}

/// A set of precompiled templates, parsed once and rendered many times.
///
/// Each entry remembers the largest output it has produced so far and
/// pre-sizes the next render's buffer accordingly — page renders stop
/// paying repeated `String` growth reallocations once warm. Registries are
/// built at startup (or first use, behind a `OnceLock`) so the per-request
/// path never touches the parser.
#[derive(Debug, Default)]
pub struct TemplateRegistry {
    templates: std::collections::BTreeMap<&'static str, RegisteredTemplate>,
}

#[derive(Debug)]
struct RegisteredTemplate {
    template: Template,
    size_hint: std::sync::atomic::AtomicUsize,
}

impl TemplateRegistry {
    pub fn new() -> TemplateRegistry {
        TemplateRegistry::default()
    }

    /// Compile and register a template under `name`.
    pub fn register(&mut self, name: &'static str, source: &str) -> Result<(), TemplateError> {
        let template = Template::parse(source)?;
        self.templates.insert(
            name,
            RegisteredTemplate {
                template,
                size_hint: std::sync::atomic::AtomicUsize::new(source.len()),
            },
        );
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<&Template> {
        self.templates.get(name).map(|r| &r.template)
    }

    /// Render a registered template with a size-hinted output buffer.
    ///
    /// # Panics
    /// Panics on an unregistered name — registry contents are static
    /// program data, so a miss is a programming error, not input.
    pub fn render(&self, name: &str, ctx: &Value) -> String {
        use std::sync::atomic::Ordering;
        let reg = self
            .templates
            .get(name)
            .unwrap_or_else(|| panic!("template {name:?} is not registered"));
        let mut out = String::with_capacity(reg.size_hint.load(Ordering::Relaxed));
        reg.template.render_into(ctx, &mut out);
        reg.size_hint.fetch_max(out.len(), Ordering::Relaxed);
        out
    }
}

/// Parse + render in one call.
pub fn render(source: &str, ctx: &Value) -> Result<String, TemplateError> {
    Ok(Template::parse(source)?.render(ctx))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Text(String),
    Var(String),
    Tag(String),
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut rest = src;
    loop {
        let var = rest.find("{{");
        let tag = rest.find("{%");
        let (idx, is_var) = match (var, tag) {
            (Some(v), Some(t)) if v < t => (v, true),
            (Some(v), None) => (v, true),
            (_, Some(t)) => (t, false),
            (None, None) => {
                if !rest.is_empty() {
                    out.push(Token::Text(rest.to_string()));
                }
                return out;
            }
        };
        if idx > 0 {
            out.push(Token::Text(rest[..idx].to_string()));
        }
        let close = if is_var { "}}" } else { "%}" };
        match rest[idx + 2..].find(close) {
            Some(end) => {
                let inner = rest[idx + 2..idx + 2 + end].trim().to_string();
                out.push(if is_var {
                    Token::Var(inner)
                } else {
                    Token::Tag(inner)
                });
                rest = &rest[idx + 2 + end + 2..];
            }
            None => {
                // Unterminated marker: treat as literal text.
                out.push(Token::Text(rest[idx..].to_string()));
                return out;
            }
        }
    }
}

fn parse_nodes(
    tokens: &[Token],
    pos: &mut usize,
    until: Option<&[&str]>,
) -> Result<Vec<Node>, TemplateError> {
    let mut nodes = Vec::new();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            Token::Text(t) => {
                nodes.push(Node::Text(t.clone()));
                *pos += 1;
            }
            Token::Var(expr) => {
                let (expr, safe) = match expr.split_once('|') {
                    Some((e, filter)) if filter.trim() == "safe" => (e.trim().to_string(), false),
                    _ => (expr.clone(), true),
                };
                nodes.push(Node::Var(expr, safe));
                *pos += 1;
            }
            Token::Tag(tag) => {
                let word = tag.split_whitespace().next().unwrap_or("");
                if let Some(stops) = until {
                    if stops.contains(&word) {
                        return Ok(nodes);
                    }
                }
                *pos += 1;
                match word {
                    "if" => {
                        let cond = tag["if".len()..].trim().to_string();
                        let then = parse_nodes(tokens, pos, Some(&["else", "endif"]))?;
                        let mut otherwise = Vec::new();
                        match current_tag(tokens, *pos) {
                            Some("else") => {
                                *pos += 1;
                                otherwise = parse_nodes(tokens, pos, Some(&["endif"]))?;
                                expect_tag(tokens, pos, "endif", "if")?;
                            }
                            Some("endif") => {
                                *pos += 1;
                            }
                            _ => return Err(TemplateError::UnclosedTag("if".into())),
                        }
                        nodes.push(Node::If {
                            cond,
                            then,
                            otherwise,
                        });
                    }
                    "for" => {
                        // "for x in expr"
                        let parts: Vec<&str> = tag.split_whitespace().collect();
                        if parts.len() != 4 || parts[2] != "in" {
                            return Err(TemplateError::BadFor(tag.clone()));
                        }
                        let body = parse_nodes(tokens, pos, Some(&["endfor"]))?;
                        expect_tag(tokens, pos, "endfor", "for")?;
                        nodes.push(Node::For {
                            binding: parts[1].to_string(),
                            list: parts[3].to_string(),
                            body,
                        });
                    }
                    other => return Err(TemplateError::UnexpectedTag(other.to_string())),
                }
            }
        }
    }
    if until.is_some() {
        Err(TemplateError::UnclosedTag("block".into()))
    } else {
        Ok(nodes)
    }
}

fn current_tag(tokens: &[Token], pos: usize) -> Option<&str> {
    match tokens.get(pos) {
        Some(Token::Tag(t)) => t.split_whitespace().next(),
        _ => None,
    }
}

fn expect_tag(
    tokens: &[Token],
    pos: &mut usize,
    expected: &str,
    opener: &str,
) -> Result<(), TemplateError> {
    if current_tag(tokens, *pos) == Some(expected) {
        *pos += 1;
        Ok(())
    } else {
        Err(TemplateError::UnclosedTag(opener.to_string()))
    }
}

/// Resolve a dotted path against a scope stack (innermost first).
fn lookup<'v>(scopes: &'v [Value], expr: &str) -> Option<&'v Value> {
    let mut parts = expr.split('.');
    let head = parts.next()?;
    let parts: Vec<&str> = parts.collect();
    for scope in scopes.iter().rev() {
        if let Some(mut v) = scope.get(head) {
            for p in &parts {
                v = v.get(p)?;
            }
            return Some(v);
        }
    }
    None
}

fn truthy(v: Option<&Value>) -> bool {
    match v {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(Value::Number(n)) => n.as_f64().map(|f| f != 0.0).unwrap_or(true),
        Some(Value::String(s)) => !s.is_empty(),
        Some(Value::Array(a)) => !a.is_empty(),
        Some(Value::Object(_)) => true,
    }
}

fn stringify(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

fn render_nodes(nodes: &[Node], scopes: &[Value], out: &mut String) {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Var(expr, escape) => {
                let text = lookup(scopes, expr).map(stringify).unwrap_or_default();
                if *escape {
                    out.push_str(&html_escape(&text));
                } else {
                    out.push_str(&text);
                }
            }
            Node::If {
                cond,
                then,
                otherwise,
            } => {
                let branch = if truthy(lookup(scopes, cond)) {
                    then
                } else {
                    otherwise
                };
                render_nodes(branch, scopes, out);
            }
            Node::For {
                binding,
                list,
                body,
            } => {
                let items: Vec<Value> = match lookup(scopes, list) {
                    Some(Value::Array(a)) => a.clone(),
                    _ => Vec::new(),
                };
                for item in items {
                    let mut inner = scopes.to_vec();
                    inner.push(serde_json::json!({ binding.as_str(): item }));
                    render_nodes(body, &inner, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn interpolation_escapes_by_default() {
        let out = render(
            "<h1>{{ title }}</h1>{{ raw|safe }}",
            &json!({"title": "<b>Stars & Planets</b>", "raw": "<i>ok</i>"}),
        )
        .unwrap();
        assert_eq!(
            out,
            "<h1>&lt;b&gt;Stars &amp; Planets&lt;/b&gt;</h1><i>ok</i>"
        );
    }

    #[test]
    fn dotted_paths() {
        let out = render(
            "{{ star.name }} ({{ star.pos.ra }})",
            &json!({"star": {"name": "HD 1", "pos": {"ra": 1.5}}}),
        )
        .unwrap();
        assert_eq!(out, "HD 1 (1.5)");
    }

    #[test]
    fn missing_values_render_empty() {
        assert_eq!(render("[{{ nope }}]", &json!({})).unwrap(), "[]");
        assert_eq!(
            render("[{{ a.b.c }}]", &json!({"a": {"b": 1}})).unwrap(),
            "[]"
        );
    }

    #[test]
    fn if_else_truthiness() {
        let t = "{% if items %}yes{% else %}no{% endif %}";
        assert_eq!(render(t, &json!({"items": [1]})).unwrap(), "yes");
        assert_eq!(render(t, &json!({"items": []})).unwrap(), "no");
        assert_eq!(render(t, &json!({})).unwrap(), "no");
        assert_eq!(render(t, &json!({"items": 0})).unwrap(), "no");
        assert_eq!(render(t, &json!({"items": "x"})).unwrap(), "yes");
        let bare = "{% if ok %}y{% endif %}";
        assert_eq!(render(bare, &json!({"ok": true})).unwrap(), "y");
        assert_eq!(render(bare, &json!({"ok": false})).unwrap(), "");
    }

    #[test]
    fn for_loop_binds_and_nests() {
        let t = "{% for s in stars %}{{ s.name }}:{% for f in s.freqs %}{{ f }},{% endfor %};{% endfor %}";
        let out = render(
            t,
            &json!({"stars": [
                {"name": "A", "freqs": [1, 2]},
                {"name": "B", "freqs": []}
            ]}),
        )
        .unwrap();
        assert_eq!(out, "A:1,2,;B:;");
    }

    #[test]
    fn loop_variable_shadows_outer() {
        let t = "{% for x in xs %}{{ x }}{% endfor %}{{ x }}";
        let out = render(t, &json!({"xs": [1, 2], "x": "outer"})).unwrap();
        assert_eq!(out, "12outer");
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(matches!(
            render("{% if a %}x", &json!({})),
            Err(TemplateError::UnclosedTag(_))
        ));
        assert!(matches!(
            render("{% for a of b %}x{% endfor %}", &json!({})),
            Err(TemplateError::BadFor(_))
        ));
        assert!(matches!(
            render("{% bogus %}", &json!({})),
            Err(TemplateError::UnexpectedTag(_))
        ));
        assert!(matches!(
            render("{% endif %}", &json!({})),
            Err(TemplateError::UnexpectedTag(_))
        ));
    }

    #[test]
    fn unterminated_marker_is_literal() {
        assert_eq!(
            render("hello {{ name", &json!({})).unwrap(),
            "hello {{ name"
        );
    }

    #[test]
    fn template_reuse() {
        let t = Template::parse("{{ n }}").unwrap();
        assert_eq!(t.render(&json!({"n": 1})), "1");
        assert_eq!(t.render(&json!({"n": 2})), "2");
    }

    #[test]
    fn registry_renders_and_learns_size_hint() {
        let mut reg = TemplateRegistry::new();
        reg.register("greet", "hello {{ who }}!").unwrap();
        assert_eq!(
            reg.render("greet", &json!({"who": "world"})),
            "hello world!"
        );
        // a large render raises the hint; the next render pre-sizes to it
        let big = "x".repeat(4096);
        assert_eq!(
            reg.render("greet", &json!({"who": big})).len(),
            4096 + "hello !".len()
        );
        let hinted = reg.render("greet", &json!({"who": "tiny"}));
        assert_eq!(hinted, "hello tiny!");
        assert!(reg.get("greet").is_some());
        assert!(reg.get("nope").is_none());
        assert!(reg.register("bad", "{% if x %}").is_err());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn registry_panics_on_unknown_name() {
        TemplateRegistry::new().render("missing", &json!({}));
    }
}
