//! Minimal HTTP/1.1 message types and parsing.
//!
//! AMP's portal was Django behind Apache; with no web framework on the
//! offline crate list the reproduction hand-rolls the HTTP layer. Only the
//! subset a database-driven portal needs: GET/POST, headers, cookies,
//! query strings, form bodies.

use std::collections::BTreeMap;
use std::fmt;

/// Request method (the portal only serves GET and POST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
}

impl Method {
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Path with the query string stripped.
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub cookies: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Build a GET request programmatically (tests, internal calls).
    pub fn get(path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: BTreeMap::new(),
            cookies: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Build a form POST programmatically.
    pub fn post(path_and_query: &str, form: &[(&str, &str)]) -> Request {
        let (path, query) = split_query(path_and_query);
        let body = form
            .iter()
            .map(|(k, v)| format!("{}={}", urlencode(k), urlencode(v)))
            .collect::<Vec<_>>()
            .join("&")
            .into_bytes();
        let mut headers = BTreeMap::new();
        headers.insert(
            "content-type".to_string(),
            "application/x-www-form-urlencoded".to_string(),
        );
        Request {
            method: Method::Post,
            path,
            query,
            headers,
            cookies: BTreeMap::new(),
            body,
        }
    }

    pub fn with_cookie(mut self, name: &str, value: &str) -> Request {
        self.cookies.insert(name.to_string(), value.to_string());
        self
    }

    /// Parse a raw HTTP/1.x request (start line + headers + body).
    pub fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let header_end = find_header_end(raw).ok_or(HttpError::Incomplete)?;
        let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| HttpError::BadEncoding)?;
        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let mut parts = start.split_whitespace();
        let method = Method::parse(parts.next().ok_or(HttpError::BadStartLine)?)
            .ok_or(HttpError::UnsupportedMethod)?;
        let target = parts.next().ok_or(HttpError::BadStartLine)?;
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadStartLine);
        }
        let (path, query) = split_query(target);

        let mut headers = BTreeMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
        let cookies = headers
            .get("cookie")
            .map(|c| parse_cookies(c))
            .unwrap_or_default();

        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let body_start = header_end + 4;
        if raw.len() < body_start + content_length {
            return Err(HttpError::Incomplete);
        }
        let body = raw[body_start..body_start + content_length].to_vec();

        Ok(Request {
            method,
            path,
            query,
            headers,
            cookies,
            body,
        })
    }

    /// Decode an `application/x-www-form-urlencoded` body.
    pub fn form(&self) -> BTreeMap<String, String> {
        parse_urlencoded(&String::from_utf8_lossy(&self.body))
    }

    /// Query parameter accessor.
    pub fn q(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(|s| s.as_str())
    }
}

/// Parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    Incomplete,
    BadEncoding,
    BadStartLine,
    BadHeader,
    UnsupportedMethod,
}

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn split_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_urlencoded(q)),
        None => (target.to_string(), BTreeMap::new()),
    }
}

fn parse_cookies(header: &str) -> BTreeMap<String, String> {
    header
        .split(';')
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect()
}

/// Decode `k=v&k2=v2` with percent-escapes and `+` as space.
pub fn parse_urlencoded(s: &str) -> BTreeMap<String, String> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (urldecode(k), urldecode(v)),
            None => (urldecode(pair), String::new()),
        })
        .collect()
}

/// Percent-decode (lossy on malformed escapes).
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode for form bodies and URLs.
pub fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "text/html; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    pub fn json(value: &serde_json::Value) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: serde_json::to_vec(value).expect("json serializes"),
        }
    }

    pub fn xml(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "application/xml".into())],
            body: body.into().into_bytes(),
        }
    }

    pub fn redirect(location: &str) -> Response {
        Response {
            status: 302,
            headers: vec![("Location".into(), location.into())],
            body: Vec::new(),
        }
    }

    pub fn not_found() -> Response {
        Response {
            status: 404,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: b"404 not found".to_vec(),
        }
    }

    pub fn forbidden(msg: &str) -> Response {
        Response {
            status: 403,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    pub fn bad_request(msg: &str) -> Response {
        Response {
            status: 400,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    pub fn server_error(msg: &str) -> Response {
        Response {
            status: 500,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    pub fn set_cookie(mut self, name: &str, value: &str) -> Response {
        self.headers.push((
            "Set-Cookie".into(),
            format!("{name}={value}; Path=/; HttpOnly"),
        ));
        self
    }

    pub fn clear_cookie(mut self, name: &str) -> Response {
        self.headers
            .push(("Set-Cookie".into(), format!("{name}=; Path=/; Max-Age=0")));
        self
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize to raw HTTP/1.1 bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Status",
        };
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, reason).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// HTML-escape (used by templates and handlers echoing user input).
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#x27;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_get_with_query_and_cookies() {
        let raw = b"GET /star/search?q=HD+52265&page=2 HTTP/1.1\r\nHost: amp.ucar.edu\r\nCookie: sid=abc123; theme=dark\r\n\r\n";
        let req = Request::parse(raw).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/star/search");
        assert_eq!(req.q("q"), Some("HD 52265"));
        assert_eq!(req.q("page"), Some("2"));
        assert_eq!(req.cookies["sid"], "abc123");
        assert_eq!(req.cookies["theme"], "dark");
    }

    #[test]
    fn parse_post_form() {
        let body = "username=astro1&password=p%40ss+word";
        let raw = format!(
            "POST /accounts/login HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = Request::parse(raw.as_bytes()).unwrap();
        let form = req.form();
        assert_eq!(form["username"], "astro1");
        assert_eq!(form["password"], "p@ss word");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Request::parse(b"HELLO"), Err(HttpError::Incomplete));
        assert_eq!(
            Request::parse(b"DELETE / HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnsupportedMethod)
        );
        assert_eq!(
            Request::parse(b"GET /\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        // declared body longer than provided
        assert_eq!(
            Request::parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Incomplete)
        );
    }

    impl PartialEq for Request {
        fn eq(&self, other: &Self) -> bool {
            self.method == other.method && self.path == other.path
        }
    }

    #[test]
    fn urlencode_roundtrip() {
        for s in ["hello world", "a&b=c", "HD 52265", "100% sure?", "αβγ"] {
            assert_eq!(urldecode(&urlencode(s)), s, "{s}");
        }
    }

    #[test]
    fn response_serialization() {
        let r = Response::html("<p>hi</p>").set_cookie("sid", "x1");
        let raw = String::from_utf8(r.to_bytes()).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Set-Cookie: sid=x1; Path=/; HttpOnly\r\n"));
        assert!(raw.contains("Content-Length: 9\r\n"));
        assert!(raw.ends_with("<p>hi</p>"));
    }

    #[test]
    fn response_helpers() {
        assert_eq!(Response::not_found().status, 404);
        assert_eq!(Response::redirect("/x").status, 302);
        assert_eq!(Response::forbidden("no").status, 403);
        assert_eq!(Response::bad_request("bad").status, 400);
        let j = Response::json(&serde_json::json!({"a": 1}));
        assert_eq!(j.body_str(), "{\"a\":1}");
    }

    #[test]
    fn html_escaping() {
        assert_eq!(
            html_escape("<script>alert('x&y')</script>"),
            "&lt;script&gt;alert(&#x27;x&amp;y&#x27;)&lt;/script&gt;"
        );
    }

    #[test]
    fn programmatic_builders() {
        let g = Request::get("/a/b?x=1");
        assert_eq!(g.path, "/a/b");
        assert_eq!(g.q("x"), Some("1"));
        let p = Request::post("/f", &[("k", "v v"), ("e", "a&b")]);
        assert_eq!(p.form()["k"], "v v");
        assert_eq!(p.form()["e"], "a&b");
    }
}
