//! Minimal HTTP/1.1 message types and parsing.
//!
//! AMP's portal was Django behind Apache; with no web framework on the
//! offline crate list the reproduction hand-rolls the HTTP layer. Only the
//! subset a database-driven portal needs: GET/POST, headers, cookies,
//! query strings, form bodies.

use std::collections::BTreeMap;
use std::fmt;

/// Request method (the portal only serves GET and POST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
}

impl Method {
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Path with the query string stripped.
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub cookies: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Build a GET request programmatically (tests, internal calls).
    pub fn get(path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: BTreeMap::new(),
            cookies: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Build a form POST programmatically.
    pub fn post(path_and_query: &str, form: &[(&str, &str)]) -> Request {
        let (path, query) = split_query(path_and_query);
        let body = form
            .iter()
            .map(|(k, v)| format!("{}={}", urlencode(k), urlencode(v)))
            .collect::<Vec<_>>()
            .join("&")
            .into_bytes();
        let mut headers = BTreeMap::new();
        headers.insert(
            "content-type".to_string(),
            "application/x-www-form-urlencoded".to_string(),
        );
        Request {
            method: Method::Post,
            path,
            query,
            headers,
            cookies: BTreeMap::new(),
            body,
        }
    }

    pub fn with_cookie(mut self, name: &str, value: &str) -> Request {
        self.cookies.insert(name.to_string(), value.to_string());
        self
    }

    /// Parse a raw HTTP/1.x request (start line + headers + body).
    pub fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let header_end = find_header_end(raw).ok_or(HttpError::Incomplete)?;
        let head = parse_head(&raw[..header_end])?;
        let body_start = header_end + 4;
        if raw.len() < body_start + head.content_length {
            return Err(HttpError::Incomplete);
        }
        let mut request = head.request;
        request.body = raw[body_start..body_start + head.content_length].to_vec();
        Ok(request)
    }

    /// Decode an `application/x-www-form-urlencoded` body.
    pub fn form(&self) -> BTreeMap<String, String> {
        parse_urlencoded(&String::from_utf8_lossy(&self.body))
    }

    /// Query parameter accessor.
    pub fn q(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(|s| s.as_str())
    }
}

/// Parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    Incomplete,
    BadEncoding,
    BadStartLine,
    BadHeader,
    /// Malformed, duplicated, or absurdly large `Content-Length`. Fatal
    /// for the connection: with an untrusted length the body/next-request
    /// boundary is unknowable, so the server must 400 and close rather
    /// than risk reparsing body bytes as a pipelined request (request
    /// smuggling / desync).
    BadContentLength,
    UnsupportedMethod,
}

/// Upper bound on a declared `Content-Length`. Anything larger is
/// rejected at parse time ([`HttpError::BadContentLength`]) — the portal
/// serves forms and API calls, not uploads, and an attacker-controlled
/// length otherwise feeds unchecked arithmetic in the framing layer.
pub const MAX_CONTENT_LENGTH: usize = 1 << 30;

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A fully parsed request head (everything before the body).
struct Head {
    request: Request,
    content_length: usize,
    keep_alive: bool,
}

/// Parse start line + headers (the bytes before `\r\n\r\n`).
fn parse_head(raw: &[u8]) -> Result<Head, HttpError> {
    let head = std::str::from_utf8(raw).map_err(|_| HttpError::BadEncoding)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(HttpError::BadStartLine)?;
    let mut parts = start.split_whitespace();
    let method = Method::parse(parts.next().ok_or(HttpError::BadStartLine)?)
        .ok_or(HttpError::UnsupportedMethod)?;
    let target = parts.next().ok_or(HttpError::BadStartLine)?;
    let version = parts.next().ok_or(HttpError::BadStartLine)?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadStartLine);
    }
    let (path, query) = split_query(target);

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        let name = name.trim().to_ascii_lowercase();
        // Duplicate Content-Length headers are a classic smuggling vector
        // (two frontends picking different values); reject outright.
        if headers
            .insert(name.clone(), value.trim().to_string())
            .is_some()
            && name == "content-length"
        {
            return Err(HttpError::BadContentLength);
        }
    }
    let cookies = headers
        .get("cookie")
        .map(|c| parse_cookies(c))
        .unwrap_or_default();
    // A Content-Length that doesn't parse (or overflows) must NOT default
    // to 0: the unread body bytes would be reparsed as the next pipelined
    // request. Reject so the server answers 400 and closes.
    let content_length: usize = match headers.get("content-length") {
        Some(v) => {
            // RFC 7230: Content-Length is 1*DIGIT. `u64::parse` alone is
            // too lenient (it accepts a leading `+`), and lenient length
            // parsing is exactly how frontends disagree about framing.
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadContentLength);
            }
            let n = v.parse::<u64>().map_err(|_| HttpError::BadContentLength)?;
            if n > MAX_CONTENT_LENGTH as u64 {
                return Err(HttpError::BadContentLength);
            }
            n as usize
        }
        None => 0,
    };
    // HTTP/1.1 defaults to persistent connections; 1.0 to close. An
    // explicit Connection header overrides either way.
    let keep_alive = match headers.get("connection").map(|v| v.to_ascii_lowercase()) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => version != "HTTP/1.0",
    };

    Ok(Head {
        request: Request {
            method,
            path,
            query,
            headers,
            cookies,
            body: Vec::new(),
        },
        content_length,
        keep_alive,
    })
}

/// Incremental HTTP/1.x request parser for persistent connections.
///
/// Feed raw bytes with [`extend`](RequestParser::extend) as they arrive and
/// drain complete requests with [`next_request`](RequestParser::next_request).
/// Unlike [`Request::parse`] over a growing buffer, this never rescans: the
/// `\r\n\r\n` search resumes from a saved offset, the head is parsed exactly
/// once, and after that only the body-completeness check runs per chunk.
/// Bytes following a complete request stay buffered, so pipelined requests
/// parse back-to-back without another read.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Resume offset for the header-terminator search.
    scanned: usize,
    /// Parsed head of the in-flight request, once found.
    head: Option<Head>,
}

impl RequestParser {
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (guards oversized requests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total size the in-flight request has *declared* (head bytes plus
    /// its `Content-Length`), once the head has been parsed. Lets a
    /// server reject an oversized request as soon as the headers arrive
    /// instead of buffering the whole body first.
    pub fn pending_request_bytes(&self) -> Option<usize> {
        self.head.as_ref().map(|h| self.scanned + h.content_length)
    }

    /// Try to extract the next complete request. Returns the request plus
    /// its keep-alive decision, `Ok(None)` when more bytes are needed.
    pub fn next_request(&mut self) -> Result<Option<(Request, bool)>, HttpError> {
        if self.head.is_none() {
            // Resume the terminator scan three bytes back, in case a chunk
            // boundary split the "\r\n\r\n".
            let from = self.scanned.saturating_sub(3);
            match self.buf[from..].windows(4).position(|w| w == b"\r\n\r\n") {
                Some(rel) => {
                    let header_end = from + rel;
                    self.head = Some(parse_head(&self.buf[..header_end])?);
                    self.scanned = header_end + 4;
                }
                None => {
                    self.scanned = self.buf.len();
                    return Ok(None);
                }
            }
        }
        let head = self.head.as_ref().expect("head parsed above");
        let total = self.scanned + head.content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let mut request = head.request;
        request.body = self.buf[self.scanned..total].to_vec();
        self.buf.drain(..total);
        self.scanned = 0;
        Ok(Some((request, head.keep_alive)))
    }
}

fn split_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_urlencoded(q)),
        None => (target.to_string(), BTreeMap::new()),
    }
}

fn parse_cookies(header: &str) -> BTreeMap<String, String> {
    header
        .split(';')
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect()
}

/// Decode `k=v&k2=v2` with percent-escapes and `+` as space (the
/// `application/x-www-form-urlencoded` rules — query strings and form
/// bodies only, never paths).
pub fn parse_urlencoded(s: &str) -> BTreeMap<String, String> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (urldecode_query(k), urldecode_query(v)),
            None => (urldecode_query(pair), String::new()),
        })
        .collect()
}

/// Percent-decode a path segment (lossy on malformed escapes). `+` stays
/// a literal plus: the space-as-`+` convention belongs to form/query
/// encoding only, and star identifiers like `/star/HD+52265` carry
/// meaningful pluses.
pub fn urldecode(s: &str) -> String {
    percent_decode(s, false)
}

/// Percent-decode query-string / form data: like [`urldecode`] but with
/// `+` decoded as space.
pub fn urldecode_query(s: &str) -> String {
    percent_decode(s, true)
}

fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode for form bodies and query strings (space becomes `+`;
/// invert with [`urldecode_query`]).
pub fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-encode a path segment (space becomes `%20`, `+` becomes `%2B`;
/// invert with [`urldecode`]).
pub fn urlencode_path(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "text/html; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    pub fn json(value: &serde_json::Value) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: serde_json::to_vec(value).expect("json serializes"),
        }
    }

    pub fn xml(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "application/xml".into())],
            body: body.into().into_bytes(),
        }
    }

    pub fn redirect(location: &str) -> Response {
        Response {
            status: 302,
            headers: vec![("Location".into(), location.into())],
            body: Vec::new(),
        }
    }

    pub fn not_found() -> Response {
        Response {
            status: 404,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: b"404 not found".to_vec(),
        }
    }

    pub fn forbidden(msg: &str) -> Response {
        Response {
            status: 403,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    pub fn bad_request(msg: &str) -> Response {
        Response {
            status: 400,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    /// The over-size rejection: a request exceeding the server's byte
    /// budget gets the status the RFC assigns it (413), not a generic
    /// 400, so clients can distinguish "too big" from "malformed".
    pub fn payload_too_large() -> Response {
        Response {
            status: 413,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: b"413 payload too large".to_vec(),
        }
    }

    pub fn server_error(msg: &str) -> Response {
        Response {
            status: 500,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: msg.as_bytes().to_vec(),
        }
    }

    pub fn set_cookie(mut self, name: &str, value: &str) -> Response {
        self.headers.push((
            "Set-Cookie".into(),
            format!("{name}={value}; Path=/; HttpOnly"),
        ));
        self
    }

    pub fn clear_cookie(mut self, name: &str) -> Response {
        self.headers
            .push(("Set-Cookie".into(), format!("{name}=; Path=/; Max-Age=0")));
        self
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize to raw HTTP/1.1 bytes, closing the connection afterwards.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        self.write_into(&mut out, false);
        out
    }

    /// Serialize into a reusable buffer. `keep_alive` selects the
    /// `Connection:` header; the body is always Content-Length framed, so a
    /// keep-alive client knows exactly where the response ends.
    pub fn write_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        use std::io::Write;
        let reason = match self.status {
            200 => "OK",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        };
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, reason);
        for (k, v) in &self.headers {
            let _ = write!(out, "{k}: {v}\r\n");
        }
        let _ = write!(out, "Content-Length: {}\r\n", self.body.len());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n\r\n".as_slice()
        } else {
            b"Connection: close\r\n\r\n".as_slice()
        });
        out.extend_from_slice(&self.body);
    }
}

/// HTML-escape (used by templates and handlers echoing user input).
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#x27;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_get_with_query_and_cookies() {
        let raw = b"GET /star/search?q=HD+52265&page=2 HTTP/1.1\r\nHost: amp.ucar.edu\r\nCookie: sid=abc123; theme=dark\r\n\r\n";
        let req = Request::parse(raw).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/star/search");
        assert_eq!(req.q("q"), Some("HD 52265"));
        assert_eq!(req.q("page"), Some("2"));
        assert_eq!(req.cookies["sid"], "abc123");
        assert_eq!(req.cookies["theme"], "dark");
    }

    #[test]
    fn parse_post_form() {
        let body = "username=astro1&password=p%40ss+word";
        let raw = format!(
            "POST /accounts/login HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = Request::parse(raw.as_bytes()).unwrap();
        let form = req.form();
        assert_eq!(form["username"], "astro1");
        assert_eq!(form["password"], "p@ss word");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Request::parse(b"HELLO"), Err(HttpError::Incomplete));
        assert_eq!(
            Request::parse(b"DELETE / HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnsupportedMethod)
        );
        assert_eq!(
            Request::parse(b"GET /\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        // declared body longer than provided
        assert_eq!(
            Request::parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Incomplete)
        );
    }

    impl PartialEq for Request {
        fn eq(&self, other: &Self) -> bool {
            self.method == other.method && self.path == other.path
        }
    }

    #[test]
    fn urlencode_roundtrip() {
        for s in ["hello world", "a&b=c", "HD 52265", "100% sure?", "αβγ"] {
            assert_eq!(urldecode_query(&urlencode(s)), s, "query: {s}");
            assert_eq!(urldecode(&urlencode_path(s)), s, "path: {s}");
        }
    }

    #[test]
    fn path_decode_keeps_literal_plus() {
        // Path segments are not form-encoded: '+' must survive.
        assert_eq!(urldecode("HD+52265"), "HD+52265");
        assert_eq!(urldecode("HD%2052265"), "HD 52265");
        assert_eq!(urldecode("HD%2B52265"), "HD+52265");
        // Query strings keep the form rules.
        assert_eq!(urldecode_query("HD+52265"), "HD 52265");
    }

    #[test]
    fn rejects_malformed_content_length() {
        for cl in [
            "oops",
            "-1",
            "+5",
            "1e3",
            "18446744073709551616",
            "4294967296",
            "",
        ] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n");
            assert_eq!(
                Request::parse(raw.as_bytes()),
                Err(HttpError::BadContentLength),
                "Content-Length: {cl}"
            );
        }
        // Duplicate Content-Length is rejected even when values agree.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(Request::parse(raw), Err(HttpError::BadContentLength));
    }

    #[test]
    fn malformed_content_length_never_desyncs_pipelined_stream() {
        // Pre-fix, "Content-Length: oops" decayed to 0 and the body bytes
        // were reparsed as the next pipelined request — here an injected
        // GET /admin. The parser must fail the connection instead.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: oops\r\n\r\nGET /admin HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new();
        p.extend(raw);
        assert_eq!(p.next_request(), Err(HttpError::BadContentLength));
    }

    #[test]
    fn incremental_parser_handles_split_chunks() {
        let raw = b"POST /accounts/login HTTP/1.1\r\nContent-Length: 7\r\n\r\nusr=abcGET /next HTTP/1.1\r\n\r\n";
        // feed one byte at a time: the parser must find both pipelined
        // requests without ever rescanning from offset 0
        let mut parser = RequestParser::new();
        let mut got = Vec::new();
        for b in raw.iter() {
            parser.extend(std::slice::from_ref(b));
            while let Some((req, ka)) = parser.next_request().unwrap() {
                got.push((req, ka));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.method, Method::Post);
        assert_eq!(got[0].0.body, b"usr=abc");
        assert!(got[0].1, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(got[1].0.path, "/next");
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn keep_alive_negotiation() {
        let ka = |raw: &[u8]| {
            let mut p = RequestParser::new();
            p.extend(raw);
            p.next_request().unwrap().unwrap().1
        };
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    }

    #[test]
    fn incremental_parser_rejects_garbage() {
        let mut p = RequestParser::new();
        p.extend(b"DELETE / HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::UnsupportedMethod));
        let mut p = RequestParser::new();
        p.extend(b"GET /\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::BadStartLine));
    }

    #[test]
    fn response_keep_alive_framing() {
        let r = Response::html("<p>hi</p>");
        let mut out = Vec::new();
        r.write_into(&mut out, true);
        let raw = String::from_utf8(out).unwrap();
        assert!(raw.contains("Connection: keep-alive\r\n"));
        assert!(raw.contains("Content-Length: 9\r\n"));
        // to_bytes() remains the closing form
        assert!(String::from_utf8(r.to_bytes())
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn response_serialization() {
        let r = Response::html("<p>hi</p>").set_cookie("sid", "x1");
        let raw = String::from_utf8(r.to_bytes()).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Set-Cookie: sid=x1; Path=/; HttpOnly\r\n"));
        assert!(raw.contains("Content-Length: 9\r\n"));
        assert!(raw.ends_with("<p>hi</p>"));
    }

    #[test]
    fn response_helpers() {
        assert_eq!(Response::not_found().status, 404);
        assert_eq!(Response::redirect("/x").status, 302);
        assert_eq!(Response::forbidden("no").status, 403);
        assert_eq!(Response::bad_request("bad").status, 400);
        let j = Response::json(&serde_json::json!({"a": 1}));
        assert_eq!(j.body_str(), "{\"a\":1}");
    }

    #[test]
    fn html_escaping() {
        assert_eq!(
            html_escape("<script>alert('x&y')</script>"),
            "&lt;script&gt;alert(&#x27;x&amp;y&#x27;)&lt;/script&gt;"
        );
    }

    #[test]
    fn programmatic_builders() {
        let g = Request::get("/a/b?x=1");
        assert_eq!(g.path, "/a/b");
        assert_eq!(g.q("x"), Some("1"));
        let p = Request::post("/f", &[("k", "v v"), ("e", "a&b")]);
        assert_eq!(p.form()["k"], "v v");
        assert_eq!(p.form()["e"], "a&b");
    }
}
