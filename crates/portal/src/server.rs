//! The TCP front end: a worker-pool HTTP/1.1 server over the portal.
//!
//! Production AMP sat behind Apache; the seed reproduction used a
//! thread-per-connection loop that closed after one request and polled
//! `accept` on a 5 ms sleep. This version serves sustained concurrent
//! load instead:
//!
//! * a fixed pool of [`ServerConfig::workers`] threads drains a bounded
//!   connection queue (the accept thread blocks when it fills — natural
//!   backpressure instead of unbounded thread spawn);
//! * `accept` blocks in the kernel; shutdown wakes it with a self-connect
//!   instead of a poll loop;
//! * connections are persistent: HTTP/1.1 keep-alive with Content-Length
//!   framing, sequential pipelined requests, and an idle timeout;
//! * request bytes are parsed incrementally ([`RequestParser`]) — no
//!   re-scan of the buffer on every 4 KiB chunk.
//!
//! The portal logic itself stays transport-independent
//! ([`Portal::handle`]), which is also how the integration tests drive it.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use amp_obs::{Counter, Gauge, Histogram};

use crate::http::{RequestParser, Response};
use crate::portal::Portal;

/// Serving-layer metric handles, resolved once per process (the hot path
/// is then a single relaxed atomic op per observation).
struct ServerMetrics {
    queue_depth: Gauge,
    queue_wait: Histogram,
    closed_idle: Counter,
    closed_eof: Counter,
    closed_client: Counter,
    closed_bad_request: Counter,
    closed_too_large: Counter,
    closed_error: Counter,
}

fn metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let closed = |reason: &str| {
            amp_obs::counter(&amp_obs::labeled(
                "portal_connections_closed_total",
                &[("reason", reason)],
            ))
        };
        ServerMetrics {
            queue_depth: amp_obs::gauge("portal_conn_queue_depth"),
            queue_wait: amp_obs::histogram("portal_conn_queue_wait_seconds"),
            closed_idle: closed("idle_timeout"),
            closed_eof: closed("eof"),
            closed_client: closed("client_close"),
            closed_bad_request: closed("bad_request"),
            closed_too_large: closed("too_large"),
            closed_error: closed("error"),
        }
    })
}

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Accepted-but-unserviced connections held before `accept` blocks.
    pub queue_depth: usize,
    /// Honour HTTP keep-alive (off forces `Connection: close` after the
    /// first response, the seed behaviour — useful for benchmarks).
    pub keep_alive: bool,
    /// How long a persistent connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Reject requests whose buffered bytes exceed this.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            max_request_bytes: 1 << 20,
        }
    }
}

/// Bounded MPMC queue of accepted connections (std Mutex + Condvar — the
/// vendored parking_lot has no Condvar).
struct ConnQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct QueueState {
    /// Accepted connections, each stamped with its enqueue time so the
    /// dequeueing worker can record the queue wait.
    items: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Block until there is room (backpressure), then enqueue. Returns
    /// false once the queue is closed.
    fn push(&self, stream: TcpStream) -> bool {
        let mut state = self.state.lock().expect("queue lock");
        while state.items.len() >= self.cap && !state.closed {
            state = self.not_full.wait(state).expect("queue lock");
        }
        if state.closed {
            return false;
        }
        state.items.push_back((stream, Instant::now()));
        metrics().queue_depth.set(state.items.len() as i64);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Block until a connection arrives; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some((stream, enqueued)) = state.items.pop_front() {
                let m = metrics();
                m.queue_depth.set(state.items.len() as i64);
                drop(state);
                m.queue_wait.observe_duration(enqueued.elapsed());
                self.not_full.notify_one();
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A running server handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and serve on 127.0.0.1 (port 0 = ephemeral) with default
    /// configuration. The portal is shared with the workers via `Arc`.
    pub fn spawn(portal: Arc<Portal>, port: u16) -> std::io::Result<Server> {
        Server::spawn_with(portal, port, ServerConfig::default())
    }

    /// Bind and serve with explicit serving-layer configuration.
    pub fn spawn_with(
        portal: Arc<Portal>,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.queue_depth));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let portal = portal.clone();
                let queue = queue.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop() {
                        // Every Ok path records its own close reason; an
                        // Err is a genuine I/O failure mid-connection.
                        if serve_connection(&portal, stream, &config).is_err() {
                            metrics().closed_error.inc();
                        }
                    }
                })
            })
            .collect();

        let accept_handle = {
            let flag = shutdown.clone();
            let queue = queue.clone();
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // The shutdown wake-up is itself a connection;
                        // check the flag before queueing anything.
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        if !queue.push(stream) {
                            break;
                        }
                    }
                    Err(_) => {
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (e.g. EMFILE); keep going.
                    }
                }
            })
        };

        Ok(Server {
            addr,
            shutdown,
            queue,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Serve one connection to completion: a keep-alive loop parsing requests
/// incrementally and answering each with Content-Length framing.
fn serve_connection(
    portal: &Portal,
    mut stream: TcpStream,
    config: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(config.idle_timeout))?;
    stream.set_nodelay(true)?;
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 4096];
    let mut out = Vec::with_capacity(4096);
    loop {
        // Drain every complete request already buffered (pipelining)
        // before going back to the socket.
        loop {
            match parser.next_request() {
                Ok(Some((request, client_keep_alive))) => {
                    let keep_alive = config.keep_alive && client_keep_alive;
                    let response = portal.handle(&request);
                    out.clear();
                    response.write_into(&mut out, keep_alive);
                    stream.write_all(&out)?;
                    if !keep_alive {
                        metrics().closed_client.inc();
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Any parse failure (including a malformed or
                    // duplicated Content-Length) poisons the framing:
                    // answer 400 and close rather than guess where the
                    // next request starts.
                    let response = Response::bad_request("malformed request");
                    out.clear();
                    response.write_into(&mut out, false);
                    stream.write_all(&out)?;
                    metrics().closed_bad_request.inc();
                    return Ok(());
                }
            }
        }
        if parser.buffered() > config.max_request_bytes {
            let response = Response::bad_request("request too large");
            out.clear();
            response.write_into(&mut out, false);
            stream.write_all(&out)?;
            metrics().closed_too_large.inc();
            return Ok(());
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            // SO_RCVTIMEO expiry surfaces as WouldBlock on Linux (and
            // TimedOut on some platforms): an idle keep-alive connection
            // reaching its timeout is a *graceful* close, not an error.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                metrics().closed_idle.inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            metrics().closed_eof.inc();
            return Ok(());
        }
        parser.extend(&chunk[..n]);
    }
}

/// Read one Content-Length-framed response from `stream`, consuming from
/// (and refilling) `buf`, which may already hold pipelined bytes. Public
/// so load-generating clients (benches) can drive a keep-alive
/// connection request-by-request.
pub fn read_framed_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<String> {
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response headers",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let total = header_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let raw = String::from_utf8_lossy(&buf[..total]).into_owned();
    buf.drain(..total);
    Ok(raw)
}

/// A tiny blocking HTTP client for tests and examples: one request, one
/// response, framed by Content-Length (a keep-alive server no longer
/// closes the connection to delimit the body).
pub fn fetch(addr: SocketAddr, raw_request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw_request.as_bytes())?;
    let mut buf = Vec::new();
    read_framed_response(&mut stream, &mut buf)
}

/// Send several requests over ONE connection (written back-to-back, i.e.
/// pipelined) and read the same number of framed responses — the
/// keep-alive client the multi-request tests and benches use.
pub fn fetch_pipelined(addr: SocketAddr, raw_requests: &[&str]) -> std::io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    let mut wire = Vec::new();
    for r in raw_requests {
        wire.extend_from_slice(r.as_bytes());
    }
    stream.write_all(&wire)?;
    let mut buf = Vec::new();
    let mut out = Vec::with_capacity(raw_requests.len());
    for _ in raw_requests {
        out.push(read_framed_response(&mut stream, &mut buf)?);
    }
    Ok(out)
}
