//! The TCP front end: an event-driven HTTP/1.1 server over the portal.
//!
//! Production AMP sat behind Apache; the seed reproduction used a
//! thread-per-connection loop, and the first rewrite a worker pool that
//! still parked one blocking thread per in-flight connection — capping
//! concurrency at `workers` and letting a slow-loris client pin a worker
//! forever. This version separates connection count from thread count:
//!
//! * one event-loop thread ([`crate::event_loop`]) owns every socket via
//!   OS readiness polling (epoll on Linux, `poll(2)` elsewhere, both
//!   zero-dependency), so tens of thousands of idle keep-alive
//!   connections cost a few bytes of state each and no threads;
//! * a fixed pool of [`ServerConfig::workers`] threads runs
//!   [`Portal::handle`] only — parsing, buffering, timeouts, and writes
//!   all happen on the loop;
//! * a timer wheel enforces both the idle timeout between requests and a
//!   total per-request read deadline (the slow-loris fix), and every
//!   close is attributed: `portal_connections_closed_total{reason=...}`;
//! * backpressure is layered: per-connection (read interest off while a
//!   response is in flight), queue (accept pauses when the dispatch
//!   queue fills), and global ([`ServerConfig::max_connections`]).
//!
//! The portal logic itself stays transport-independent
//! ([`Portal::handle`]), which is also how the integration tests drive it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use amp_obs::{Counter, Gauge, Histogram};

use crate::event_loop::{worker_main, CloseReason, Dispatcher, EventLoop, Poller};
use crate::portal::Portal;

/// Serving-layer metric handles, resolved once per process (the hot path
/// is then a single relaxed atomic op per observation).
pub(crate) struct ServerMetrics {
    /// Requests waiting for a worker (the dispatch queue).
    pub(crate) queue_depth: Gauge,
    /// How long a parsed request waited for a worker.
    pub(crate) queue_wait: Histogram,
    /// Currently open connections on the event loop.
    pub(crate) open_connections: Gauge,
    closed_idle: Counter,
    closed_read_deadline: Counter,
    closed_eof: Counter,
    closed_client: Counter,
    closed_server: Counter,
    closed_bad_request: Counter,
    closed_too_large: Counter,
    closed_error: Counter,
    closed_shutdown: Counter,
}

impl ServerMetrics {
    /// The counter a given close reason increments — one reason, one
    /// series, every close accounted exactly once.
    pub(crate) fn closed(&self, reason: CloseReason) -> &Counter {
        match reason {
            CloseReason::IdleTimeout => &self.closed_idle,
            CloseReason::ReadDeadline => &self.closed_read_deadline,
            CloseReason::Eof => &self.closed_eof,
            CloseReason::ClientClose => &self.closed_client,
            CloseReason::ServerClose => &self.closed_server,
            CloseReason::BadRequest => &self.closed_bad_request,
            CloseReason::TooLarge => &self.closed_too_large,
            CloseReason::Error => &self.closed_error,
            CloseReason::Shutdown => &self.closed_shutdown,
        }
    }
}

pub(crate) fn metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let closed = |reason: &str| {
            amp_obs::counter(&amp_obs::labeled(
                "portal_connections_closed_total",
                &[("reason", reason)],
            ))
        };
        ServerMetrics {
            queue_depth: amp_obs::gauge("portal_conn_queue_depth"),
            queue_wait: amp_obs::histogram("portal_conn_queue_wait_seconds"),
            open_connections: amp_obs::gauge("portal_open_connections"),
            closed_idle: closed("idle_timeout"),
            closed_read_deadline: closed("read_deadline"),
            closed_eof: closed("eof"),
            closed_client: closed("client_close"),
            closed_server: closed("server_close"),
            closed_bad_request: closed("bad_request"),
            closed_too_large: closed("too_large"),
            closed_error: closed("error"),
            closed_shutdown: closed("shutdown"),
        }
    })
}

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads running [`Portal::handle`] (socket I/O is not
    /// theirs: the event loop owns every connection).
    pub workers: usize,
    /// Parsed requests waiting for a worker before `accept` pauses.
    pub queue_depth: usize,
    /// Honour HTTP keep-alive (off forces `Connection: close` after the
    /// first response, the seed behaviour — useful for benchmarks).
    pub keep_alive: bool,
    /// How long a persistent connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Total time budget for receiving one request, headers and body,
    /// measured from its first byte. A client trickling a byte at a
    /// time extends the idle timeout forever but never this one.
    pub read_deadline: Duration,
    /// Reject requests whose buffered or declared size exceeds this
    /// (answered `413 Payload Too Large`).
    pub max_request_bytes: usize,
    /// Concurrently open connections; past this, accept pauses and new
    /// clients wait in the kernel backlog.
    pub max_connections: usize,
    /// Artificial per-request service delay (benchmarks and drain tests
    /// only; zero in production configs).
    pub handler_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            read_deadline: Duration::from_secs(10),
            max_request_bytes: 1 << 20,
            max_connections: 16_384,
            handler_delay: Duration::ZERO,
        }
    }
}

/// A running server handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    poller: Arc<Poller>,
    dispatcher: Arc<Dispatcher>,
    loop_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and serve on 127.0.0.1 (port 0 = ephemeral) with default
    /// configuration. The portal is shared with the workers via `Arc`.
    pub fn spawn(portal: Arc<Portal>, port: u16) -> std::io::Result<Server> {
        Server::spawn_with(portal, port, ServerConfig::default())
    }

    /// Bind and serve with explicit serving-layer configuration.
    pub fn spawn_with(
        portal: Arc<Portal>,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let poller = Arc::new(Poller::new()?);
        let dispatcher = Arc::new(Dispatcher::new());

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let portal = portal.clone();
                let dispatcher = dispatcher.clone();
                let poller = poller.clone();
                let config = config.clone();
                std::thread::spawn(move || worker_main(portal, dispatcher, poller, config))
            })
            .collect();

        let event_loop = EventLoop::new(
            listener,
            poller.clone(),
            dispatcher.clone(),
            config,
            shutdown.clone(),
        )?;
        let loop_handle = std::thread::spawn(move || event_loop.run());

        Ok(Server {
            addr,
            shutdown,
            poller,
            dispatcher,
            loop_handle: Some(loop_handle),
            workers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, close idle connections, let
    /// in-flight requests finish and flush, then join every thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.poller.wake();
        // The loop drains in-flight work before exiting, so workers must
        // stay alive until it has joined.
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
        self.dispatcher.stop();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Read one Content-Length-framed response from `stream`, consuming from
/// (and refilling) `buf`, which may already hold pipelined bytes. Public
/// so load-generating clients (benches) can drive a keep-alive
/// connection request-by-request.
pub fn read_framed_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<String> {
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response headers",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    // An unparseable Content-Length must fail loudly, not decay to 0:
    // a zero-length guess leaves the body bytes in `buf` to be misread
    // as the next pipelined response (silent framing desync).
    let content_length: usize = match head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("content-length")
            .then(|| value.trim().to_string())
    }) {
        Some(v) => v.parse().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable Content-Length: {v:?}"),
            )
        })?,
        None => 0,
    };
    let total = header_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let raw = String::from_utf8_lossy(&buf[..total]).into_owned();
    buf.drain(..total);
    Ok(raw)
}

/// A tiny blocking HTTP client for tests and examples: one request, one
/// response, framed by Content-Length (a keep-alive server no longer
/// closes the connection to delimit the body).
pub fn fetch(addr: SocketAddr, raw_request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw_request.as_bytes())?;
    let mut buf = Vec::new();
    read_framed_response(&mut stream, &mut buf)
}

/// Send several requests over ONE connection (written back-to-back, i.e.
/// pipelined) and read the same number of framed responses — the
/// keep-alive client the multi-request tests and benches use.
pub fn fetch_pipelined(addr: SocketAddr, raw_requests: &[&str]) -> std::io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    let mut wire = Vec::new();
    for r in raw_requests {
        wire.extend_from_slice(r.as_bytes());
    }
    stream.write_all(&wire)?;
    let mut buf = Vec::new();
    let mut out = Vec::with_capacity(raw_requests.len());
    for _ in raw_requests {
        out.push(read_framed_response(&mut stream, &mut buf)?);
    }
    Ok(out)
}
