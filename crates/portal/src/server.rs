//! The TCP front end: a small threaded HTTP server over the portal.
//!
//! Production AMP sat behind Apache; here a thread-per-connection loop is
//! plenty. The portal logic itself is transport-independent
//! ([`Portal::handle`]), which is also how the integration tests drive it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::http::{Request, Response};
use crate::portal::Portal;

/// A running server handle.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and serve on 127.0.0.1 (port 0 = ephemeral). The portal is
    /// shared with the accept loop via `Arc`.
    pub fn spawn(portal: Arc<Portal>, port: u16) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let portal = portal.clone();
                        std::thread::spawn(move || {
                            let _ = handle_connection(&portal, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Server {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(portal: &Portal, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let response = loop {
        match Request::parse(&buf) {
            Ok(req) => break portal.handle(&req),
            Err(crate::http::HttpError::Incomplete) => {
                if buf.len() > 1 << 20 {
                    break Response::bad_request("request too large");
                }
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(()); // client hung up mid-request
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(_) => break Response::bad_request("malformed request"),
        }
    };
    stream.write_all(&response.to_bytes())
}

/// A tiny blocking HTTP client for tests and examples.
pub fn fetch(addr: SocketAddr, raw_request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw_request.as_bytes())?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}
