//! The application browser: AMP as a multi-application portal.
//!
//! The paper's portal serves one pipeline; its lineage (GRAPPA, Astrocomp)
//! serves many. This app lists every registered [`ScienceApp`] and renders
//! a detail page per application — parameter schema, resource template,
//! and submission links — straight from the registry, so installing an
//! application is all it takes to appear here.
//!
//! [`ScienceApp`]: amp_core::app::ScienceApp

use amp_core::app::{self, ScienceApp};

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

/// GET /apps — the application catalog.
pub fn browse(p: &Portal, req: &Request, _: &Params) -> Response {
    let mut body = String::from(
        "<h2>Science applications</h2>\
         <p>Each application brings its own forward model, parameter \
         space, and genetic-algorithm coupling; all of them share the \
         same submission, execution, and results machinery.</p>",
    );
    for a in app::builtin() {
        body.push_str(&format!(
            "<h3><a href=\"/apps/{id}\">{title}</a> <code>{id}</code></h3>\
             <p>{desc}</p>",
            id = a.id(),
            title = html_escape(a.title()),
            desc = html_escape(a.description()),
        ));
    }
    p.page("Applications", p.current_user(req).as_ref(), &body)
}

fn schema_table(a: &dyn ScienceApp) -> String {
    let mut t = String::from(
        "<table><tr><th>parameter</th><th>label</th><th>range</th>\
         <th>unit</th><th>default</th></tr>",
    );
    for s in a.params() {
        t.push_str(&format!(
            "<tr><td><code>{}</code></td><td>{}</td><td>{}–{}</td><td>{}</td><td>{}</td></tr>",
            s.name,
            s.label,
            s.lo,
            s.hi,
            if s.unit.is_empty() { "—" } else { s.unit },
            s.default,
        ));
    }
    t.push_str("</table>");
    t
}

/// GET /apps/<app> — one application's schema, resources, and entry points.
pub fn detail(p: &Portal, req: &Request, params: &Params) -> Response {
    let id = params.get("app").unwrap_or_default();
    let Some(a) = app::lookup(id) else {
        return p.page_not_found(
            p.current_user(req).as_ref(),
            &format!("no science application {id:?} is installed on this portal"),
        );
    };
    let spec = a.resources();
    let body = format!(
        "<h2>{title} <code>{id}</code></h2>\
         <p>{desc}</p>\
         <h3>Parameter space ({n} genes)</h3>{schema}\
         <h3>Resources</h3>\
         <p>Direct model runs use {cores} core(s); the default optimization \
         ensemble is {runs} GA runs × {pop} candidates × {gens} iterations \
         on {per_run} processors each.</p>\
         <p>To submit, pick a target from <a href=\"/stars\">the catalog</a> \
         and choose <em>{title}</em> on its page; direct runs live at \
         <code>/submit/{id}/direct/&lt;star&gt;</code> and optimizations at \
         <code>/submit/{id}/optimization/&lt;star&gt;</code>.</p>",
        title = html_escape(a.title()),
        id = a.id(),
        desc = html_escape(a.description()),
        n = a.n_genes(),
        schema = schema_table(a.as_ref()),
        cores = spec.model_cores,
        runs = spec.default_spec.ga_runs,
        pop = spec.default_spec.population,
        gens = spec.default_spec.generations,
        per_run = spec.default_spec.cores_per_run,
    );
    p.page(a.title(), p.current_user(req).as_ref(), &body)
}
