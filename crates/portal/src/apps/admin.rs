//! The administrative interface.
//!
//! §4.1: Django's admin "can manipulate ORM objects ... administrative
//! tasks such as approving users or adjusting back-end parameters (like
//! allocations and the authorization for a user to submit to a machine
//! using a particular allocation) can easily be manipulated from a
//! graphical interface without custom development. ... the administrative
//! functionality is not even possible from any publicly accessible web
//! servers." Routes in this module only exist on admin-enabled deploys
//! (see [`crate::apps::build_router`]) and additionally require a
//! logged-in administrator.

use amp_core::models::{AmpUser, SystemAuthorization};
use amp_core::status::SimStatus;
use amp_simdb::admin as dbadmin;
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, Query};

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

/// Gate: deploy must be admin-enabled AND the user must be an admin.
fn require_admin<'p>(p: &'p Portal, req: &Request) -> Result<&'p Connection, Response> {
    let Some(conn) = p.admin_conn() else {
        // Defence in depth: routes shouldn't exist, but never trust that.
        return Err(Response::not_found());
    };
    match p.current_user(req) {
        Some(u) if u.is_admin => Ok(conn),
        Some(_) => Err(Response::forbidden("administrators only")),
        None => Err(Response::redirect("/accounts/login")),
    }
}

pub fn dashboard(p: &Portal, req: &Request, _: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let mut body = String::from("<h2>Administration</h2><h3>Tables</h3><ul>");
    for name in dbadmin::table_names(conn) {
        let len = dbadmin::table_len(conn, &name).unwrap_or(0);
        body.push_str(&format!(
            "<li><a href=\"/admin/table/{name}\">{name}</a> ({len} rows)</li>"
        ));
    }
    body.push_str("</ul><h3>Pending users</h3><ul>");
    let users = Manager::<AmpUser>::new(conn.clone())
        .filter(&Query::new().eq("approved", false))
        .unwrap_or_default();
    for u in &users {
        body.push_str(&format!(
            "<li>{} &lt;{}&gt; — <form method=\"post\" action=\"/admin/users/{}/approve\" style=\"display:inline\"><button>approve</button></form> <small>{}</small></li>",
            html_escape(&u.username),
            html_escape(&u.email),
            u.id.unwrap(),
            html_escape(&u.provenance),
        ));
    }
    body.push_str("</ul><h3>Held simulations</h3><ul>");
    let held = Manager::<amp_core::models::Simulation>::new(conn.clone())
        .filter(&Query::new().eq("status", SimStatus::Hold.as_str()))
        .unwrap_or_default();
    for s in &held {
        body.push_str(&format!(
            "<li>#{} ({}) — <form method=\"post\" action=\"/admin/simulations/{}/resume\" style=\"display:inline\"><button>resume</button></form></li>",
            s.id.unwrap(),
            html_escape(&s.status_message),
            s.id.unwrap(),
        ));
    }
    body.push_str("</ul>");
    p.page("Admin", p.current_user(req).as_ref(), &body)
}

pub fn table_list(p: &Portal, req: &Request, params: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let Some(name) = params.get("name") else {
        return Response::not_found();
    };
    let Ok(schema) = dbadmin::table_schema(conn, name) else {
        return Response::not_found();
    };
    let page: usize = req.q("page").and_then(|s| s.parse().ok()).unwrap_or(1);
    let rows = dbadmin::browse(conn, name, (page - 1) * 50, 50).unwrap_or_default();
    let mut body = format!("<h2>Table {name}</h2><table><tr><th>id</th>");
    for c in &schema.columns {
        body.push_str(&format!("<th>{}</th>", html_escape(&c.name)));
    }
    body.push_str("</tr>");
    for (id, row) in &rows {
        body.push_str(&format!("<tr><td>{id}</td>"));
        for v in row {
            body.push_str(&format!("<td>{}</td>", html_escape(&v.to_string())));
        }
        body.push_str("</tr>");
    }
    body.push_str("</table>");
    p.page(
        &format!("Admin: {name}"),
        p.current_user(req).as_ref(),
        &body,
    )
}

/// Generic single-field edit (the change form).
pub fn set_field(p: &Portal, req: &Request, params: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let (Some(name), Some(id)) = (params.get("name"), params.id("id")) else {
        return Response::not_found();
    };
    let form = req.form();
    let (Some(column), Some(value)) = (form.get("column"), form.get("value")) else {
        return Response::bad_request("need column and value");
    };
    match dbadmin::set_field(conn, name, id, column, value) {
        Ok(()) => Response::redirect(&format!("/admin/table/{name}")),
        Err(e) => Response::bad_request(&e.to_string()),
    }
}

pub fn approve_user(p: &Portal, req: &Request, params: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let Some(id) = params.id("id") else {
        return Response::not_found();
    };
    let mgr = Manager::<AmpUser>::new(conn.clone());
    match mgr.get(id) {
        Ok(mut u) => {
            u.approved = true;
            match mgr.save(&u) {
                Ok(()) => Response::redirect("/admin"),
                Err(e) => Response::server_error(&e.to_string()),
            }
        }
        Err(_) => Response::not_found(),
    }
}

/// Grant a user permission to submit to a machine via an allocation.
pub fn authorize(p: &Portal, req: &Request, _: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let form = req.form();
    let (Some(user_id), Some(alloc_id)) = (
        form.get("user_id").and_then(|s| s.parse::<i64>().ok()),
        form.get("allocation_id")
            .and_then(|s| s.parse::<i64>().ok()),
    ) else {
        return Response::bad_request("need user_id and allocation_id");
    };
    let mgr = Manager::<SystemAuthorization>::new(conn.clone());
    let mut auth = SystemAuthorization::new(user_id, alloc_id, p.now());
    match mgr.create(&mut auth) {
        Ok(_) => Response::redirect("/admin"),
        Err(e) => Response::bad_request(&e.to_string()),
    }
}

/// Release a held simulation back to its pre-failure state. The portal
/// only flips the DB state; the daemon notices on its next poll (§4.4:
/// "once the problem has been resolved, the workflow resumes
/// automatically").
pub fn resume_hold(p: &Portal, req: &Request, params: &Params) -> Response {
    let conn = match require_admin(p, req) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let Some(id) = params.id("id") else {
        return Response::not_found();
    };
    let mgr = Manager::<amp_core::models::Simulation>::new(conn.clone());
    match mgr.get(id) {
        Ok(mut sim) if sim.status == SimStatus::Hold => {
            let back: SimStatus = sim
                .held_from
                .as_deref()
                .and_then(|s| s.parse().ok())
                .unwrap_or(SimStatus::Queued);
            sim.status = back;
            sim.held_from = None;
            sim.status_message = "resumed by administrator".into();
            match mgr.save(&sim) {
                Ok(()) => Response::redirect("/admin"),
                Err(e) => Response::server_error(&e.to_string()),
            }
        }
        Ok(_) => Response::bad_request("simulation is not held"),
        Err(_) => Response::not_found(),
    }
}
