//! The portal's Django-style applications.
//!
//! §4.2: "we wrote separate Django applications to implement independent
//! portions of the website functionality. One application allows users to
//! browse and search star catalogs, one allows users to view completed
//! simulation results, and another facilitates simulation submission."
//! Plus the account app (auth + CAPTCHA), the admin interface (§4.1) and
//! the RSS feeds (§6 future work, implemented here).

pub mod accounts;
pub mod admin;
pub mod appstore;
pub mod catalog;
pub mod feeds;
pub mod results;
pub mod submit;

use crate::router::Router;

/// The home page, rendered through the Django-style template engine
/// (most views build HTML directly; this demonstrates the template path
/// with live data, as AMP's Django templates did). Compiled once into the
/// portal-wide [`crate::portal::registry`].
pub(crate) const HOME_TEMPLATE: &str = "\
<p>Derive the properties of Sun-like stars from observations of their \
pulsation frequencies.</p>\
<ul><li><a href=\"/stars\">Browse the star catalog</a> ({{ stars }} stars, \
{{ with_results }} with results)</li>\
<li><a href=\"/stars/search\">Search for a target</a></li>\
<li><a href=\"/simulations\">View simulations</a> ({{ done }} completed)</li></ul>\
{% if recent %}<h3>Recently completed</h3><ul>\
{% for s in recent %}<li><a href=\"/simulation/{{ s.id }}\">#{{ s.id }} {{ s.kind }} of {{ s.star }}</a></li>{% endfor %}\
</ul>{% endif %}";

/// Wire the full URL map. Admin routes exist only on admin-enabled
/// deploys — on the public portal they are not merely forbidden, they are
/// absent.
pub fn build_router(admin_enabled: bool) -> Router {
    let mut r = Router::new();

    // observability: Prometheus text exposition of the process-wide
    // metrics registry (portal + simdb + daemon + GA series). Never
    // cached — scrapes must see live values.
    r.get("/metrics", |_, _, _| {
        use crate::http::Response;
        Response {
            status: 200,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: amp_obs::render_prometheus().into_bytes(),
        }
    });

    // home
    r.get("/", |p, req, _| {
        use amp_core::models::{Simulation, Star};
        use amp_simdb::orm::Manager;
        use amp_simdb::Query;
        let user = p.current_user(req);
        let stars = Manager::<Star>::new(p.conn().clone());
        let sims = Manager::<Simulation>::new(p.conn().clone());
        // status is indexed: the "done" count below is an index probe that
        // never clones a row, and the recent-5 list is a top-k over the
        // probe's candidates rather than a full-table sort.
        let done_q = Query::new().eq("status", amp_core::SimStatus::Done.as_str());
        let recent: Vec<serde_json::Value> = sims
            .filter(&done_q.clone().order_by_desc("id").limit(5))
            .unwrap_or_default()
            .iter()
            .map(|s| {
                let star = stars
                    .get(s.star_id)
                    .map(|st| st.identifier)
                    .unwrap_or_default();
                serde_json::json!({
                    "id": s.id.unwrap_or(0),
                    "kind": s.kind.as_str(),
                    "star": star,
                })
            })
            .collect();
        let ctx = serde_json::json!({
            "stars": stars.count(&Query::new()).unwrap_or(0),
            "with_results": stars
                .count(&Query::new().eq("has_results", true))
                .unwrap_or(0),
            "done": sims.count(&done_q).unwrap_or(0),
            "recent": recent,
        });
        let body = crate::portal::registry().render("home", &ctx);
        p.page("Home", user.as_ref(), &body)
    });

    // accounts app
    r.get("/accounts/register", accounts::register_form);
    r.post("/accounts/register", accounts::register_submit);
    r.get("/accounts/pending", accounts::pending);
    r.get("/accounts/login", accounts::login_form);
    r.post("/accounts/login", accounts::login_submit);
    r.get("/accounts/logout", accounts::logout);
    r.get("/accounts/profile", accounts::profile_form);
    r.post("/accounts/profile", accounts::profile_submit);

    // catalog app
    r.get("/stars", catalog::browse);
    r.get("/stars/search", catalog::search);
    r.get("/api/suggest", catalog::suggest);
    r.get("/star/<ident>", catalog::star_detail);
    r.post("/star/<ident>/observations", catalog::upload_observation);

    // results app
    r.get("/simulations", results::list);
    r.get("/simulation/<id>", results::detail);
    r.get("/simulation/<id>/plots.json", results::plots);

    // application browser
    r.get("/apps", appstore::browse);
    r.get("/apps/<app>", appstore::detail);

    // submission app — the legacy stellar routes plus the per-application
    // generic ones (the legacy pair is an alias for app id "stellar")
    r.get("/submit/direct/<star_id>", submit::direct_form);
    r.post("/submit/direct/<star_id>", submit::direct_submit);
    r.get("/submit/optimization/<star_id>", submit::optimization_form);
    r.post(
        "/submit/optimization/<star_id>",
        submit::optimization_submit,
    );
    r.get("/submit/<app>/direct/<star_id>", submit::app_direct_form);
    r.post("/submit/<app>/direct/<star_id>", submit::app_direct_submit);
    r.get(
        "/submit/<app>/optimization/<star_id>",
        submit::app_optimization_form,
    );
    r.post(
        "/submit/<app>/optimization/<star_id>",
        submit::app_optimization_submit,
    );

    // feeds (§6) — the captured segment carries the ".rss" extension
    r.get("/feeds/star/<id>", feeds::star_feed);

    if admin_enabled {
        r.get("/admin", admin::dashboard);
        r.get("/admin/table/<name>", admin::table_list);
        r.post("/admin/table/<name>/<id>/set", admin::set_field);
        r.post("/admin/users/<id>/approve", admin::approve_user);
        r.post("/admin/authorize", admin::authorize);
        r.post("/admin/simulations/<id>/resume", admin::resume_hold);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_routes_absent_on_public_deploys() {
        let public = build_router(false);
        let internal = build_router(true);
        assert!(internal.len() > public.len());
        assert_eq!(internal.len() - public.len(), 6);
    }
}
