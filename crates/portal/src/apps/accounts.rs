//! The account application: registration (with the astronomy CAPTCHA),
//! login/logout, and profile (notification preferences).

use amp_core::models::AmpUser;
use amp_core::NotifyMode;
use amp_simdb::orm::Manager;
use amp_simdb::Query;

use crate::auth::{hash_password, verify_password};
use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

fn users(p: &Portal) -> Manager<AmpUser> {
    Manager::new(p.conn().clone())
}

pub fn register_form(p: &Portal, req: &Request, _: &Params) -> Response {
    let nonce = p.next_register_nonce();
    let ch = p.captcha.challenge(nonce);
    let body = format!(
        "<h2>Request an account</h2>\
         <form method=\"post\" action=\"/accounts/register\">\
         <label>Username <input name=\"username\"></label><br>\
         <label>E-mail <input name=\"email\"></label><br>\
         <label>Password <input type=\"password\" name=\"password\"></label><br>\
         <fieldset><legend>Are you an astronomer?</legend>\
         <p>{q} (<a href=\"{link}\">can't remember?</a>)</p>\
         <input type=\"hidden\" name=\"captcha_id\" value=\"{id}\">\
         <label>Answer <input name=\"captcha_answer\"></label></fieldset>\
         <button>Request account</button></form>",
        q = html_escape(&ch.question),
        link = ch.answer_link,
        id = ch.id,
    );
    p.page("Register", p.current_user(req).as_ref(), &body)
}

pub fn register_submit(p: &Portal, req: &Request, _: &Params) -> Response {
    let form = req.form();
    let username = form.get("username").map(|s| s.trim()).unwrap_or("");
    let email = form.get("email").map(|s| s.trim()).unwrap_or("");
    let password = form.get("password").map(|s| s.as_str()).unwrap_or("");
    let captcha_id: usize = match form.get("captcha_id").and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => return Response::bad_request("missing captcha id"),
    };
    let answer = form.get("captcha_answer").map(|s| s.as_str()).unwrap_or("");

    if username.len() < 3
        || username.len() > 64
        || !username
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Response::bad_request("username must be 3-64 alphanumeric characters");
    }
    if !email.contains('@') || email.len() > 190 {
        return Response::bad_request("invalid e-mail address");
    }
    if password.len() < 8 {
        return Response::bad_request("password must be at least 8 characters");
    }
    if !p.captcha.verify(captcha_id, answer) {
        // §4.2: "only one real estate agent turned fashion supermodel has
        // requested the ability to submit AMP jobs."
        return Response::forbidden("captcha answer incorrect");
    }
    let mgr = users(p);
    if mgr
        .exists(&Query::new().eq("username", username))
        .unwrap_or(false)
    {
        return Response::bad_request("username already taken");
    }
    let now = p.now();
    let salt = format!("{username}:{now}");
    let mut user = AmpUser::new(username, email, &hash_password(password, &salt), now);
    user.provenance = format!("self-registered at t={now}; captcha question {captcha_id}");
    match mgr.create(&mut user) {
        Ok(_) => Response::redirect("/accounts/pending"),
        Err(e) => Response::server_error(&e.to_string()),
    }
}

pub fn pending(p: &Portal, req: &Request, _: &Params) -> Response {
    p.page(
        "Account pending",
        p.current_user(req).as_ref(),
        "<p>Thanks! Your account request is awaiting administrator approval.</p>",
    )
}

pub fn login_form(p: &Portal, req: &Request, _: &Params) -> Response {
    let body = "<h2>Log in</h2>\
         <form method=\"post\" action=\"/accounts/login\">\
         <label>Username <input name=\"username\"></label><br>\
         <label>Password <input type=\"password\" name=\"password\"></label><br>\
         <button>Log in</button></form>";
    p.page("Log in", p.current_user(req).as_ref(), body)
}

pub fn login_submit(p: &Portal, _req: &Request, _: &Params) -> Response {
    login_submit_inner(p, _req)
}

fn login_submit_inner(p: &Portal, req: &Request) -> Response {
    let form = req.form();
    let username = form.get("username").map(|s| s.trim()).unwrap_or("");
    let password = form.get("password").map(|s| s.as_str()).unwrap_or("");
    let mgr = users(p);
    let Ok(Some(user)) = mgr.first(&Query::new().eq("username", username)) else {
        return Response::forbidden("unknown user or wrong password");
    };
    if !verify_password(password, &user.password_hash) {
        return Response::forbidden("unknown user or wrong password");
    }
    if !user.approved {
        return Response::forbidden("account not yet approved");
    }
    let token = p.sessions.create(
        user.id.expect("saved"),
        &user.username,
        user.is_admin,
        p.now(),
    );
    Response::redirect("/").set_cookie("amp_session", &token)
}

pub fn logout(p: &Portal, req: &Request, _: &Params) -> Response {
    if let Some(token) = req.cookies.get("amp_session") {
        p.sessions.destroy(token);
    }
    Response::redirect("/").clear_cookie("amp_session")
}

pub fn profile_form(p: &Portal, req: &Request, _: &Params) -> Response {
    let Some(user) = p.current_user(req) else {
        return Response::redirect("/accounts/login");
    };
    let mode = user.notify_mode.as_str();
    let body = format!(
        "<h2>Profile: {}</h2>\
         <form method=\"post\" action=\"/accounts/profile\">\
         <p>Current notification mode: <b>{mode}</b></p>\
         <select name=\"notify_mode\">\
         <option value=\"none\">no e-mail</option>\
         <option value=\"on_completion\">when my simulation completes</option>\
         <option value=\"every_transition\">at each state transition</option>\
         </select> <button>Save</button></form>",
        html_escape(&user.username),
    );
    p.page("Profile", Some(&user), &body)
}

pub fn profile_submit(p: &Portal, req: &Request, _: &Params) -> Response {
    let Some(mut user) = p.current_user(req) else {
        return Response::redirect("/accounts/login");
    };
    let form = req.form();
    let Some(mode) = form
        .get("notify_mode")
        .and_then(|m| m.parse::<NotifyMode>().ok())
    else {
        return Response::bad_request("unknown notification mode");
    };
    user.notify_mode = mode;
    match users(p).save(&user) {
        Ok(()) => Response::redirect("/accounts/profile"),
        Err(e) => Response::server_error(&e.to_string()),
    }
}
