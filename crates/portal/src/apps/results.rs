//! The results application: simulation lists, status/detail pages, and
//! plot data (HR diagram + Echelle, §2) as JSON for the AJAX front end.

use amp_core::app;
use amp_core::models::{GridJobRecord, Simulation, Star};
use amp_core::status::SimStatus;
use amp_core::SimKind;
use amp_simdb::orm::Manager;
use amp_simdb::Query;
use amp_stellar::{
    echelle, evolution_track, render_echelle_ascii, render_hr_ascii, Domain, ModelOutput,
};

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

fn sims(p: &Portal) -> Manager<Simulation> {
    Manager::new(p.conn().clone())
}

pub fn list(p: &Portal, req: &Request, _: &Params) -> Response {
    let user = p.current_user(req);
    let mgr = sims(p);
    let rows = match &user {
        Some(u) => mgr
            .filter(
                &Query::new()
                    .eq("owner_id", u.id.unwrap())
                    .order_by_desc("id"),
            )
            .unwrap_or_default(),
        None => mgr
            .filter(
                &Query::new()
                    .eq("status", SimStatus::Done.as_str())
                    .order_by_desc("id")
                    .limit(50),
            )
            .unwrap_or_default(),
    };
    let stars = Manager::<Star>::new(p.conn().clone());
    let mut body = String::from("<h2>Simulations</h2><table><tr><th>id</th><th>star</th><th>kind</th><th>status</th><th>progress</th></tr>");
    for s in &rows {
        let star_name = stars
            .get(s.star_id)
            .map(|st| st.identifier)
            .unwrap_or_else(|_| format!("star {}", s.star_id));
        body.push_str(&format!(
            "<tr><td><a href=\"/simulation/{id}\">#{id}</a></td><td>{}</td><td>{}</td><td>{}</td><td>{:.0}%</td></tr>",
            html_escape(&star_name),
            s.kind.as_str(),
            s.status,
            s.progress * 100.0,
            id = s.id.unwrap(),
        ));
    }
    body.push_str("</table>");
    if user.is_none() {
        body.push_str(
            "<p>Showing recently completed public results. Log in to see your own runs.</p>",
        );
    }
    p.page("Simulations", user.as_ref(), &body)
}

pub fn detail(p: &Portal, req: &Request, params: &Params) -> Response {
    let Some(id) = params.id("id") else {
        return Response::not_found();
    };
    let Ok(sim) = sims(p).get(id) else {
        return Response::not_found();
    };
    // A simulation whose application is no longer installed has no way to
    // render its results — a layout 404, not a crash or an empty page.
    if app::lookup(&sim.app).is_none() {
        return p.page_not_found(
            p.current_user(req).as_ref(),
            &format!(
                "simulation #{id} belongs to science application {:?}, \
                 which is not installed on this portal",
                sim.app
            ),
        );
    }
    let jobs = Manager::<GridJobRecord>::new(p.conn().clone())
        .filter(&Query::new().eq("simulation_id", id).order_by("id"))
        .unwrap_or_default();

    let mut body = format!(
        "<h2>Simulation #{id} — {}</h2>\
         <p>Status: <b>{}</b> ({:.0}% complete)</p>",
        sim.kind.as_str(),
        sim.status,
        sim.progress * 100.0,
    );
    if !sim.status_message.is_empty() {
        // §4.4: transients annotate the display in plain language.
        body.push_str(&format!(
            "<p><em>{}</em></p>",
            html_escape(&sim.status_message)
        ));
    }
    body.push_str(&format!(
        "<p>System: {} | submitted at t={}{}</p>",
        html_escape(&sim.system),
        sim.created_at,
        sim.completed_at
            .map(|t| format!(" | completed at t={t}"))
            .unwrap_or_default(),
    ));

    // Job progress table (read-only; the portal holds no grid state).
    body.push_str("<h3>Computational jobs</h3><table><tr><th>purpose</th><th>run</th><th>status</th><th>cores</th><th>wait (s)</th><th>run (s)</th></tr>");
    for j in &jobs {
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            j.purpose.as_str(),
            if j.ga_run >= 0 {
                format!("GA {} / job {}", j.ga_run + 1, j.continuation + 1)
            } else {
                "—".to_string()
            },
            j.status,
            j.cores,
            j.wait_secs().map(|w| w.to_string()).unwrap_or_default(),
            j.run_secs().map(|r| r.to_string()).unwrap_or_default(),
        ));
    }
    body.push_str("</table>");

    if sim.status == SimStatus::Done {
        body.push_str(&render_results(&sim));
        // The HR/Echelle plots are asteroseismology-specific; other
        // applications render only their summary table.
        if sim.app == "stellar" {
            body.push_str(&render_ascii_plots(&sim));
            body.push_str(&format!(
                "<p><a href=\"/simulation/{id}/plots.json\">HR + Echelle plot data (JSON)</a></p>"
            ));
        }
    }
    p.page(
        &format!("Simulation #{id}"),
        p.current_user(req).as_ref(),
        &body,
    )
}

/// Render the result summary through the simulation's science application:
/// the app owns its artifact format and hands back `(heading, rows)`.
fn render_results(sim: &Simulation) -> String {
    let Some(raw) = &sim.result_json else {
        return "<p>No results recorded.</p>".to_string();
    };
    let Some(app) = app::lookup(&sim.app) else {
        return "<p>Result payload unreadable.</p>".to_string();
    };
    match app.result_summary(sim.kind, raw) {
        Some((heading, rows)) => {
            let mut out = format!("<h3>{heading}</h3><table>");
            for (k, v) in rows {
                out.push_str(&format!("<tr><td>{k}</td><td>{v}</td></tr>"));
            }
            out.push_str("</table>");
            out
        }
        None => "<p>Result payload unreadable.</p>".to_string(),
    }
}

/// Extract the stellar result model from a simulation row, for plotting.
fn result_model(sim: &Simulation) -> Option<ModelOutput> {
    let raw = sim.result_json.as_ref()?;
    match sim.kind {
        SimKind::Direct => serde_json::from_str(raw).ok(),
        SimKind::Optimization => serde_json::from_str::<serde_json::Value>(raw)
            .ok()
            .and_then(|v| serde_json::from_value(v.get("detail")?.clone()).ok()),
    }
}

/// Server-side ASCII plots (§2's HR diagram and Echelle plot), so results
/// pages work without any JavaScript (§4.2).
fn render_ascii_plots(sim: &Simulation) -> String {
    let Some(model) = result_model(sim) else {
        return String::new();
    };
    let domain = Domain::default();
    let track = evolution_track(&model.params, &domain, 60).unwrap_or_default();
    let ech = echelle(&model.frequencies, model.delta_nu);
    format!(
        "<h3>Plots</h3><pre>{}</pre><pre>{}</pre>",
        html_escape(&render_hr_ascii(&track, 64, 18)),
        html_escape(&render_echelle_ascii(&ech, model.delta_nu, 64, 20)),
    )
}

/// HR-diagram track and Echelle diagram data for the result model (§2:
/// "basic graphical plots describing the star's characteristics").
pub fn plots(p: &Portal, _req: &Request, params: &Params) -> Response {
    let Some(id) = params.id("id") else {
        return Response::not_found();
    };
    let Ok(sim) = sims(p).get(id) else {
        return Response::not_found();
    };
    // HR/Echelle data exists only for the asteroseismology application.
    if sim.app != "stellar" || sim.result_json.is_none() {
        return Response::not_found();
    }
    let Some(model) = result_model(&sim) else {
        return Response::server_error("result payload unreadable");
    };
    let domain = Domain::default();
    let track = evolution_track(&model.params, &domain, 40).unwrap_or_default();
    let ech = echelle(&model.frequencies, model.delta_nu);
    Response::json(&serde_json::json!({
        "hr_track": track.iter().map(|t| {
            serde_json::json!({"age_gyr": t.age_gyr, "teff": t.teff, "luminosity": t.luminosity})
        }).collect::<Vec<_>>(),
        "echelle": ech.iter().map(|e| {
            serde_json::json!({"l": e.l, "frequency": e.frequency, "modulo": e.modulo})
        }).collect::<Vec<_>>(),
        "delta_nu": model.delta_nu,
        "nu_max": model.nu_max,
    }))
}
