//! The star-catalog application: browse, search with SIMBAD fall-through,
//! the AJAX suggest endpoint, star detail pages, and observation upload.
//!
//! §4.2: "the process of searching for a star uses AJAX to suggest stars
//! with results or in the Kepler catalog. If no stars are in AMP's
//! catalog, the search is passed to the SIMBAD astronomical database and
//! the target, if found, is added to the local catalog." The site remains
//! "fully functional without these JavaScript enhancements" — /stars/search
//! is the non-AJAX path over the same data.

use amp_core::models::{Observation, Simulation, Star};
use amp_simdb::orm::Manager;
use amp_simdb::{Op, Query};
use amp_stellar::{Constraint, ObservedMode, ObservedStar};

use crate::http::{html_escape, urlencode, urlencode_path, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

fn stars(p: &Portal) -> Manager<Star> {
    Manager::new(p.conn().clone())
}

const PAGE_SIZE: usize = 25;

pub fn browse(p: &Portal, req: &Request, _: &Params) -> Response {
    let page: usize = req.q("page").and_then(|s| s.parse().ok()).unwrap_or(1);
    let mgr = stars(p);
    let total = mgr.count(&Query::new()).unwrap_or(0);
    // `identifier` is unique + NOT NULL, so this pagination is an
    // index-ordered scan: the engine streams the ordered index and stops
    // after offset + PAGE_SIZE rows instead of sorting the whole catalog.
    let rows = mgr
        .filter(
            &Query::new()
                .order_by("identifier")
                .offset((page.saturating_sub(1)) * PAGE_SIZE)
                .limit(PAGE_SIZE),
        )
        .unwrap_or_default();
    let mut list = String::from("<ul>");
    for s in &rows {
        list.push_str(&format!(
            "<li><a href=\"/star/{}\">{}</a>{}{}</li>",
            urlencode_path(&s.identifier),
            html_escape(&s.identifier),
            s.name
                .as_deref()
                .map(|n| format!(" ({})", html_escape(n)))
                .unwrap_or_default(),
            if s.has_results { " ★ results" } else { "" },
        ));
    }
    list.push_str("</ul>");
    let body = format!(
        "<h2>Star catalog ({total} stars)</h2>\
         <form action=\"/stars/search\"><input name=\"q\" placeholder=\"HD 52265\">\
         <button>Search</button></form>{list}\
         <p>page {page} — <a href=\"/stars?page={next}\">next</a></p>",
        next = page + 1,
    );
    p.page("Stars", p.current_user(req).as_ref(), &body)
}

/// Local catalog lookup by identifier-ish query.
fn local_search(p: &Portal, q: &str) -> Vec<Star> {
    let mgr = stars(p);
    // exact identifier first
    if let Ok(Some(hit)) = mgr.first(&Query::new().eq("identifier", q)) {
        return vec![hit];
    }
    let mut out = mgr
        .filter(
            &Query::new()
                .filter("identifier", Op::IContains, q)
                .limit(PAGE_SIZE),
        )
        .unwrap_or_default();
    if out.is_empty() {
        out = mgr
            .filter(
                &Query::new()
                    .filter("name", Op::IContains, q)
                    .limit(PAGE_SIZE),
            )
            .unwrap_or_default();
    }
    out
}

/// Import an external catalog entry into the local catalog.
fn import_from_simbad(p: &Portal, q: &str) -> Option<Star> {
    let entry = p.simbad.resolve(q).ok()?;
    let mgr = stars(p);
    // Someone may have imported it since the local miss.
    if let Ok(Some(existing)) = mgr.first(&Query::new().eq("identifier", entry.identifier())) {
        return Some(existing);
    }
    let mut star = Star::from_catalog(&entry, "simbad");
    mgr.create(&mut star).ok()?;
    Some(star)
}

pub fn search(p: &Portal, req: &Request, _: &Params) -> Response {
    let q = req.q("q").unwrap_or("").trim().to_string();
    if q.is_empty() {
        return Response::redirect("/stars");
    }
    let mut hits = local_search(p, &q);
    let mut imported = false;
    if hits.is_empty() {
        if let Some(star) = import_from_simbad(p, &q) {
            hits.push(star);
            imported = true;
        }
    }
    let mut body = format!("<h2>Search results for “{}”</h2>", html_escape(&q));
    if imported {
        body.push_str("<p><em>Target found in SIMBAD and added to the AMP catalog.</em></p>");
    }
    if hits.is_empty() {
        body.push_str("<p>No matching targets, locally or in SIMBAD.</p>");
    } else {
        body.push_str("<ul>");
        for s in &hits {
            body.push_str(&format!(
                "<li><a href=\"/star/{}\">{}</a></li>",
                urlencode_path(&s.identifier),
                html_escape(&s.identifier)
            ));
        }
        body.push_str("</ul>");
    }
    p.page("Search", p.current_user(req).as_ref(), &body)
}

/// AJAX suggest endpoint — JSON, ranked so stars with results or in the
/// Kepler catalog come first (§4.2).
pub fn suggest(p: &Portal, req: &Request, _: &Params) -> Response {
    let q = req.q("q").unwrap_or("").trim().to_string();
    if q.len() < 2 {
        return Response::json(&serde_json::json!([]));
    }
    let mgr = stars(p);
    let mut hits = mgr
        .filter(
            &Query::new()
                .filter("identifier", Op::IContains, q.as_str())
                .limit(50),
        )
        .unwrap_or_default();
    let by_name: Vec<Star> = mgr
        .filter(
            &Query::new()
                .filter("name", Op::IContains, q.as_str())
                .limit(50),
        )
        .unwrap_or_default()
        .into_iter()
        .filter(|n| !hits.iter().any(|h| h.id == n.id))
        .collect();
    hits.extend(by_name);
    hits.sort_by_key(|s| {
        (
            !(s.has_results || s.in_kepler_field), // interesting first
            s.identifier.clone(),
        )
    });
    hits.truncate(10);
    let items: Vec<serde_json::Value> = hits
        .iter()
        .map(|s| {
            serde_json::json!({
                "identifier": s.identifier,
                "name": s.name,
                "has_results": s.has_results,
                "in_kepler_field": s.in_kepler_field,
            })
        })
        .collect();
    Response::json(&serde_json::Value::Array(items))
}

fn find_star(p: &Portal, ident: &str) -> Option<Star> {
    let mgr = stars(p);
    if let Ok(id) = ident.parse::<i64>() {
        if let Ok(star) = mgr.get(id) {
            return Some(star);
        }
    }
    mgr.first(&Query::new().eq("identifier", ident)).ok()?
}

pub fn star_detail(p: &Portal, req: &Request, params: &Params) -> Response {
    let ident = params.get("ident").unwrap_or("");
    let Some(star) = find_star(p, ident) else {
        return Response::not_found();
    };
    let star_id = star.id.expect("saved");
    let observations = Manager::<Observation>::new(p.conn().clone())
        .filter(&Query::new().eq("star_id", star_id))
        .unwrap_or_default();
    let sims = Manager::<Simulation>::new(p.conn().clone())
        .filter(&Query::new().eq("star_id", star_id).order_by_desc("id"))
        .unwrap_or_default();
    let mut body = format!(
        "<h2>{}</h2><table>\
         <tr><td>Name</td><td>{}</td></tr>\
         <tr><td>RA / Dec</td><td>{:.3} / {:.3}</td></tr>\
         <tr><td>V magnitude</td><td>{:.2}</td></tr>\
         <tr><td>Kepler field</td><td>{}</td></tr>\
         <tr><td>Source</td><td>{}</td></tr></table>",
        html_escape(&star.identifier),
        html_escape(star.name.as_deref().unwrap_or("—")),
        star.ra,
        star.dec,
        star.vmag,
        if star.in_kepler_field { "yes" } else { "no" },
        html_escape(&star.source),
    );
    body.push_str(&format!("<h3>Observations ({})</h3>", observations.len()));
    body.push_str(&format!(
        "<form method=\"post\" action=\"/star/{}/observations\">\
         <p>Upload pulsation frequencies (one per line: <code>l n frequency sigma</code>, µHz):</p>\
         <textarea name=\"modes\"></textarea><br>\
         <label>T<sub>eff</sub> <input name=\"teff\"> ± <input name=\"teff_sigma\"></label><br>\
         <label>L/L<sub>☉</sub> <input name=\"lum\"> ± <input name=\"lum_sigma\"></label><br>\
         <button>Upload observation set</button></form>",
        urlencode_path(&star.identifier)
    ));
    body.push_str("<h3>Simulations</h3><ul>");
    for s in &sims {
        body.push_str(&format!(
            "<li><a href=\"/simulation/{}\">#{} {} — {}</a> ({:.0}%)</li>",
            s.id.unwrap(),
            s.id.unwrap(),
            s.kind.as_str(),
            s.status,
            s.progress * 100.0,
        ));
    }
    body.push_str("</ul>");
    body.push_str(&format!(
        "<p><a href=\"/submit/direct/{id}\">Submit direct model run</a> | \
         <a href=\"/submit/optimization/{id}\">Submit optimization run</a> | \
         <a href=\"/feeds/star/{id}.rss\">RSS feed</a></p>",
        id = star_id
    ));
    // Multi-application portal: one submit pair per installed science app.
    let app_links: Vec<String> = amp_core::app::builtin()
        .iter()
        .map(|a| {
            format!(
                "{} (<a href=\"/submit/{app}/direct/{id}\">direct</a> | \
                 <a href=\"/submit/{app}/optimization/{id}\">optimization</a>)",
                crate::http::html_escape(a.title()),
                app = a.id(),
                id = star_id
            )
        })
        .collect();
    body.push_str(&format!(
        "<p>Other applications: {} — <a href=\"/apps\">browse all</a></p>",
        app_links.join(" | ")
    ));
    // §5: "dynamic links to astronomical catalogs and visualization
    // services such as SIMBAD and Google Sky"
    body.push_str(&format!(
        "<p>External services: \
         <a href=\"https://simbad.u-strasbg.fr/simbad/sim-id?Ident={q}\">SIMBAD</a> | \
         <a href=\"https://www.google.com/sky/#ra={ra}&dec={dec}\">Google Sky</a></p>",
        q = urlencode(&star.identifier),
        ra = star.ra,
        dec = star.dec,
    ));
    p.page(
        &star.identifier.clone(),
        p.current_user(req).as_ref(),
        &body,
    )
}

/// Parse the observation-upload form into a typed observation set. This
/// is the web half of the §3 marshaling story: free text enters here and
/// only validated typed rows reach the database.
pub fn upload_observation(p: &Portal, req: &Request, params: &Params) -> Response {
    let Some(user) = p.current_user(req) else {
        return Response::redirect("/accounts/login");
    };
    if !user.approved {
        return Response::forbidden("account not approved");
    }
    let ident = params.get("ident").unwrap_or("");
    let Some(star) = find_star(p, ident) else {
        return Response::not_found();
    };
    let form = req.form();
    let modes_text = form.get("modes").map(|s| s.as_str()).unwrap_or("");
    let mut modes = Vec::new();
    for (lineno, line) in modes_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let parsed = (|| -> Option<ObservedMode> {
            if parts.len() != 4 {
                return None;
            }
            let l: u8 = parts[0].parse().ok()?;
            let n: u32 = parts[1].parse().ok()?;
            let frequency: f64 = parts[2].parse().ok()?;
            let sigma: f64 = parts[3].parse().ok()?;
            if l > 3 || !frequency.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
                return None;
            }
            Some(ObservedMode {
                l,
                n,
                frequency,
                sigma,
            })
        })();
        match parsed {
            Some(m) => modes.push(m),
            None => {
                return Response::bad_request(&format!(
                    "line {}: expected 'l n frequency sigma'",
                    lineno + 1
                ))
            }
        }
    }
    if modes.len() < 3 {
        return Response::bad_request("at least 3 modes required");
    }
    let constraint = |v: Option<&String>, s: Option<&String>| -> Result<Option<Constraint>, ()> {
        match (
            v.map(|x| x.trim()).filter(|x| !x.is_empty()),
            s.map(|x| x.trim()).filter(|x| !x.is_empty()),
        ) {
            (None, _) => Ok(None),
            (Some(v), Some(s)) => {
                let value: f64 = v.parse().map_err(|_| ())?;
                let sigma: f64 = s.parse().map_err(|_| ())?;
                if !value.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
                    return Err(());
                }
                Ok(Some(Constraint { value, sigma }))
            }
            (Some(_), None) => Err(()),
        }
    };
    let Ok(teff) = constraint(form.get("teff"), form.get("teff_sigma")) else {
        return Response::bad_request("invalid Teff constraint");
    };
    let Ok(lum) = constraint(form.get("lum"), form.get("lum_sigma")) else {
        return Response::bad_request("invalid luminosity constraint");
    };
    let observed = ObservedStar {
        identifier: star.identifier.clone(),
        modes,
        teff,
        luminosity: lum,
    };
    let mut rec = Observation::new(
        star.id.expect("saved"),
        user.id.expect("saved"),
        &observed,
        p.now(),
    );
    match Manager::<Observation>::new(p.conn().clone()).create(&mut rec) {
        Ok(_) => Response::redirect(&format!("/star/{}", urlencode_path(&star.identifier))),
        Err(e) => Response::server_error(&e.to_string()),
    }
}
