//! RSS feeds: "we are currently working on using RSS feeds to allow
//! astronomers to subscribe to stars of interest" (§5/§6). Implemented:
//! one RSS 2.0 feed per star, with an item per simulation update.

use amp_core::models::{Simulation, Star};
use amp_simdb::orm::Manager;
use amp_simdb::Query;

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

pub fn star_feed(p: &Portal, _req: &Request, params: &Params) -> Response {
    // The route pattern is "/feeds/star/<id>.rss": the captured segment
    // includes the extension.
    let raw = params.get("id.rss").or_else(|| params.get("id"));
    let Some(id) = raw
        .and_then(|s| s.strip_suffix(".rss").or(Some(s)))
        .and_then(|s| s.parse::<i64>().ok())
    else {
        return Response::not_found();
    };
    let Ok(star) = Manager::<Star>::new(p.conn().clone()).get(id) else {
        return Response::not_found();
    };
    let sims = Manager::<Simulation>::new(p.conn().clone())
        .filter(&Query::new().eq("star_id", id).order_by_desc("id").limit(20))
        .unwrap_or_default();

    let mut items = String::new();
    for s in &sims {
        let when = s.completed_at.unwrap_or(s.created_at);
        items.push_str(&format!(
            "<item>\
             <title>{kind} simulation #{id}: {status}</title>\
             <link>/simulation/{id}</link>\
             <guid isPermaLink=\"false\">amp-sim-{id}-{status}</guid>\
             <description>{kind} run for {star} is {status} ({progress:.0}% complete) at t={when}.</description>\
             </item>",
            kind = s.kind.as_str(),
            id = s.id.unwrap(),
            status = s.status,
            star = html_escape(&star.identifier),
            progress = s.progress * 100.0,
        ));
    }
    let xml = format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\
         <rss version=\"2.0\"><channel>\
         <title>AMP updates for {star}</title>\
         <link>/star/{id}</link>\
         <description>Simulation progress and results for {star} on the Asteroseismic Modeling Portal.</description>\
         {items}\
         </channel></rss>",
        star = html_escape(&star.identifier),
    );
    Response::xml(xml)
}
