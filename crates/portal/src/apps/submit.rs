//! The submission application: direct model runs and optimization runs.
//!
//! All user input is validated into typed values here; the simulation row
//! is the only thing that crosses to the daemon (§3's marshaling story).
//! Submission requires an approved account plus an authorization to use
//! the chosen machine/allocation (§4.1).

use amp_core::models::{Allocation, Observation, Simulation, Star, SystemAuthorization};
use amp_core::OptimizationSpec;
use amp_simdb::orm::Manager;
use amp_simdb::Query;
use amp_stellar::{Domain, StellarParams};

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

fn allocations(p: &Portal) -> Vec<Allocation> {
    Manager::<Allocation>::new(p.conn().clone())
        .filter(&Query::new().eq("active", true))
        .unwrap_or_default()
}

fn allocation_options(p: &Portal) -> String {
    allocations(p)
        .iter()
        .map(|a| {
            format!(
                "<option value=\"{}\">{} on {} ({:.0} SUs left)</option>",
                a.id.unwrap(),
                html_escape(&a.account),
                html_escape(&a.system),
                a.su_remaining(),
            )
        })
        .collect()
}

fn require_submitter(p: &Portal, req: &Request) -> Result<amp_core::models::AmpUser, Response> {
    match p.current_user(req) {
        None => Err(Response::redirect("/accounts/login")),
        Some(u) if !u.approved => Err(Response::forbidden("account not approved")),
        Some(u) => Ok(u),
    }
}

fn load_star(p: &Portal, params: &Params) -> Result<Star, Response> {
    let id = params.id("star_id").ok_or_else(Response::not_found)?;
    Manager::<Star>::new(p.conn().clone())
        .get(id)
        .map_err(|_| Response::not_found())
}

/// Authorization + allocation resolution shared by both submit paths.
fn resolve_allocation(
    p: &Portal,
    user: &amp_core::models::AmpUser,
    form: &std::collections::BTreeMap<String, String>,
) -> Result<Allocation, Response> {
    let alloc_id: i64 = form
        .get("allocation")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Response::bad_request("choose an allocation"))?;
    let alloc = Manager::<Allocation>::new(p.conn().clone())
        .get(alloc_id)
        .map_err(|_| Response::bad_request("no such allocation"))?;
    if !alloc.active {
        return Err(Response::bad_request("allocation is inactive"));
    }
    let auth_mgr = Manager::<SystemAuthorization>::new(p.conn().clone());
    let authorized =
        SystemAuthorization::is_authorized(&auth_mgr, user.id.unwrap(), alloc_id).unwrap_or(false);
    if !authorized {
        return Err(Response::forbidden(
            "you are not authorized to submit to this machine with this allocation",
        ));
    }
    Ok(alloc)
}

pub fn direct_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let d = Domain::default();
    let body = format!(
        "<h2>Direct model run — {}</h2>\
         <form method=\"post\">\
         <label>Mass [{}–{} M☉] <input name=\"mass\" value=\"1.0\"></label><br>\
         <label>Metallicity Z [{}–{}] <input name=\"metallicity\" value=\"0.018\"></label><br>\
         <label>Helium Y [{}–{}] <input name=\"helium\" value=\"0.27\"></label><br>\
         <label>Mixing length α [{}–{}] <input name=\"alpha\" value=\"1.9\"></label><br>\
         <label>Age [{}–{} Gyr] <input name=\"age\" value=\"4.6\"></label><br>\
         <label>Allocation <select name=\"allocation\">{}</select></label><br>\
         <button>Run model</button></form>",
        html_escape(&star.identifier),
        d.mass.lo,
        d.mass.hi,
        d.metallicity.lo,
        d.metallicity.hi,
        d.helium.lo,
        d.helium.hi,
        d.alpha.lo,
        d.alpha.hi,
        d.age.lo,
        d.age.hi,
        allocation_options(p),
    );
    p.page("Direct run", p.current_user(req).as_ref(), &body)
}

pub fn direct_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let user = match require_submitter(p, req) {
        Ok(u) => u,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let form = req.form();
    let float = |name: &str| -> Result<f64, Response> {
        form.get(name)
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or_else(|| Response::bad_request(&format!("{name} must be a number")))
    };
    let params5 = match (|| -> Result<StellarParams, Response> {
        Ok(StellarParams {
            mass: float("mass")?,
            metallicity: float("metallicity")?,
            helium: float("helium")?,
            alpha: float("alpha")?,
            age: float("age")?,
        })
    })() {
        Ok(p) => p,
        Err(r) => return r,
    };
    if Domain::default().check(&params5).is_err() {
        return Response::bad_request("parameters outside the supported domain");
    }
    let alloc = match resolve_allocation(p, &user, &form) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let mut sim = Simulation::new_direct(
        star.id.unwrap(),
        user.id.unwrap(),
        params5,
        &alloc.system,
        alloc.id.unwrap(),
        p.now(),
    );
    match Manager::<Simulation>::new(p.conn().clone()).create(&mut sim) {
        Ok(id) => Response::redirect(&format!("/simulation/{id}")),
        Err(e) => Response::server_error(&e.to_string()),
    }
}

pub fn optimization_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let observations = Manager::<Observation>::new(p.conn().clone())
        .filter(&Query::new().eq("star_id", star.id.unwrap()))
        .unwrap_or_default();
    let obs_options: String = observations
        .iter()
        .map(|o| {
            format!(
                "<option value=\"{}\">observation #{} (uploaded t={})</option>",
                o.id.unwrap(),
                o.id.unwrap(),
                o.created_at
            )
        })
        .collect();
    let default = OptimizationSpec::default();
    let body = format!(
        "<h2>Optimization run — {}</h2>\
         <p>Ensemble of independent genetic-algorithm runs (the Kepler \
         configuration uses 4 runs × 126 models × 200 iterations on 128 \
         processors each).</p>\
         <form method=\"post\">\
         <label>Observation set <select name=\"observation\">{obs_options}</select></label><br>\
         <label>GA runs <input name=\"ga_runs\" value=\"{}\"></label><br>\
         <label>Iterations <input name=\"generations\" value=\"{}\"></label><br>\
         <label>Allocation <select name=\"allocation\">{}</select></label><br>\
         <button>Submit optimization</button></form>",
        html_escape(&star.identifier),
        default.ga_runs,
        default.generations,
        allocation_options(p),
    );
    p.page("Optimization run", p.current_user(req).as_ref(), &body)
}

pub fn optimization_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let user = match require_submitter(p, req) {
        Ok(u) => u,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let form = req.form();
    let obs_id: i64 = match form.get("observation").and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => return Response::bad_request("choose an observation set"),
    };
    let obs = match Manager::<Observation>::new(p.conn().clone()).get(obs_id) {
        Ok(o) if o.star_id == star.id.unwrap() => o,
        Ok(_) => return Response::bad_request("observation belongs to another star"),
        Err(_) => return Response::bad_request("no such observation"),
    };
    let ga_runs: u32 = form
        .get("ga_runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let generations: u32 = form
        .get("generations")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    if !(1..=16).contains(&ga_runs) || !(1..=1000).contains(&generations) {
        return Response::bad_request("ensemble parameters out of range");
    }
    let alloc = match resolve_allocation(p, &user, &form) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let spec = OptimizationSpec {
        ga_runs,
        generations,
        // user id + clock give each submission distinct GA seeds (§2)
        seed: (user.id.unwrap() as u64) << 32 | (p.now() as u64 & 0xffff_ffff),
        ..OptimizationSpec::default()
    };
    let mut sim = Simulation::new_optimization(
        star.id.unwrap(),
        user.id.unwrap(),
        spec,
        obs.id.unwrap(),
        &alloc.system,
        alloc.id.unwrap(),
        p.now(),
    );
    match Manager::<Simulation>::new(p.conn().clone()).create(&mut sim) {
        Ok(id) => Response::redirect(&format!("/simulation/{id}")),
        Err(e) => Response::server_error(&e.to_string()),
    }
}
