//! The submission application: direct model runs and optimization runs
//! for any registered science application.
//!
//! All user input is validated into typed values here; the simulation row
//! is the only thing that crosses to the daemon (§3's marshaling story).
//! Submission requires an approved account plus an authorization to use
//! the chosen machine/allocation (§4.1). Forms are rendered from each
//! application's [`ScienceApp::params`] schema, so adding an application
//! adds its submission pages without touching this module.
//!
//! [`ScienceApp::params`]: amp_core::app::ScienceApp::params

use std::sync::Arc;

use amp_core::app::{self, ScienceApp};
use amp_core::models::{Allocation, Observation, Simulation, Star, SystemAuthorization};
use amp_simdb::orm::Manager;
use amp_simdb::Query;

use crate::http::{html_escape, Request, Response};
use crate::portal::Portal;
use crate::router::Params;

fn allocations(p: &Portal) -> Vec<Allocation> {
    Manager::<Allocation>::new(p.conn().clone())
        .filter(&Query::new().eq("active", true))
        .unwrap_or_default()
}

fn allocation_options(p: &Portal) -> String {
    allocations(p)
        .iter()
        .map(|a| {
            format!(
                "<option value=\"{}\">{} on {} ({:.0} SUs left)</option>",
                a.id.unwrap(),
                html_escape(&a.account),
                html_escape(&a.system),
                a.su_remaining(),
            )
        })
        .collect()
}

fn require_submitter(p: &Portal, req: &Request) -> Result<amp_core::models::AmpUser, Response> {
    match p.current_user(req) {
        None => Err(Response::redirect("/accounts/login")),
        Some(u) if !u.approved => Err(Response::forbidden("account not approved")),
        Some(u) => Ok(u),
    }
}

fn load_star(p: &Portal, params: &Params) -> Result<Star, Response> {
    let id = params.id("star_id").ok_or_else(Response::not_found)?;
    Manager::<Star>::new(p.conn().clone())
        .get(id)
        .map_err(|_| Response::not_found())
}

/// Resolve the `<app>` path segment against the registry; an unknown id
/// gets the site-layout 404 page (the application browser lists what *is*
/// installed).
fn load_app(p: &Portal, req: &Request, params: &Params) -> Result<Arc<dyn ScienceApp>, Response> {
    let id = params.get("app").unwrap_or_default();
    app::lookup(id).ok_or_else(|| {
        p.page_not_found(
            p.current_user(req).as_ref(),
            &format!("no science application {id:?} is installed on this portal"),
        )
    })
}

/// Authorization + allocation resolution shared by both submit paths.
fn resolve_allocation(
    p: &Portal,
    user: &amp_core::models::AmpUser,
    form: &std::collections::BTreeMap<String, String>,
) -> Result<Allocation, Response> {
    let alloc_id: i64 = form
        .get("allocation")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Response::bad_request("choose an allocation"))?;
    let alloc = Manager::<Allocation>::new(p.conn().clone())
        .get(alloc_id)
        .map_err(|_| Response::bad_request("no such allocation"))?;
    if !alloc.active {
        return Err(Response::bad_request("allocation is inactive"));
    }
    let auth_mgr = Manager::<SystemAuthorization>::new(p.conn().clone());
    let authorized =
        SystemAuthorization::is_authorized(&auth_mgr, user.id.unwrap(), alloc_id).unwrap_or(false);
    if !authorized {
        return Err(Response::forbidden(
            "you are not authorized to submit to this machine with this allocation",
        ));
    }
    Ok(alloc)
}

/// Render a schema default the way the old hand-written forms did: whole
/// numbers keep one decimal place ("1.0"), everything else prints plainly.
fn default_value(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// One `<label>` + `<input>` per schema parameter, bounds inline.
fn param_fields(app: &dyn ScienceApp) -> String {
    app.params()
        .iter()
        .map(|s| {
            let unit = if s.unit.is_empty() {
                String::new()
            } else {
                format!(" {}", s.unit)
            };
            format!(
                "<label>{} [{}–{}{unit}] <input name=\"{}\" value=\"{}\"></label><br>",
                s.label,
                s.lo,
                s.hi,
                s.name,
                default_value(s.default),
            )
        })
        .collect()
}

fn render_direct_form(p: &Portal, req: &Request, app: &dyn ScienceApp, star: &Star) -> Response {
    let body = format!(
        "<h2>Direct model run — {}</h2>\
         <form method=\"post\">\
         {}\
         <label>Allocation <select name=\"allocation\">{}</select></label><br>\
         <button>Run model</button></form>",
        html_escape(&star.identifier),
        param_fields(app),
        allocation_options(p),
    );
    p.page("Direct run", p.current_user(req).as_ref(), &body)
}

fn handle_direct_submit(p: &Portal, req: &Request, app: &dyn ScienceApp, star: &Star) -> Response {
    let user = match require_submitter(p, req) {
        Ok(u) => u,
        Err(r) => return r,
    };
    let form = req.form();
    let mut values = serde_json::Map::new();
    for spec in app.params() {
        let v = match form
            .get(spec.name)
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|v| v.is_finite())
        {
            Some(v) => v,
            None => return Response::bad_request(&format!("{} must be a number", spec.name)),
        };
        values.insert(spec.name.to_string(), serde_json::json!(v));
    }
    let params_json = serde_json::Value::Object(values);
    if app.validate_params(&params_json).is_err() {
        return Response::bad_request("parameters outside the supported domain");
    }
    let alloc = match resolve_allocation(p, &user, &form) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let mut sim = Simulation::direct_for(
        app.id(),
        star.id.unwrap(),
        user.id.unwrap(),
        params_json,
        &alloc.system,
        alloc.id.unwrap(),
        p.now(),
    );
    match Manager::<Simulation>::new(p.conn().clone()).create(&mut sim) {
        Ok(id) => Response::redirect(&format!("/simulation/{id}")),
        Err(e) => Response::server_error(&e.to_string()),
    }
}

fn render_optimization_form(
    p: &Portal,
    req: &Request,
    app: &dyn ScienceApp,
    star: &Star,
) -> Response {
    let observations = Manager::<Observation>::new(p.conn().clone())
        .filter(&Query::new().eq("star_id", star.id.unwrap()))
        .unwrap_or_default();
    let obs_options: String = observations
        .iter()
        .map(|o| {
            format!(
                "<option value=\"{}\">observation #{} (uploaded t={})</option>",
                o.id.unwrap(),
                o.id.unwrap(),
                o.created_at
            )
        })
        .collect();
    let default = app.resources().default_spec;
    let body = format!(
        "<h2>Optimization run — {}</h2>\
         <p>Ensemble of independent genetic-algorithm runs (the Kepler \
         configuration uses 4 runs × 126 models × 200 iterations on 128 \
         processors each).</p>\
         <form method=\"post\">\
         <label>Observation set <select name=\"observation\">{obs_options}</select></label><br>\
         <label>GA runs <input name=\"ga_runs\" value=\"{}\"></label><br>\
         <label>Iterations <input name=\"generations\" value=\"{}\"></label><br>\
         <label>Allocation <select name=\"allocation\">{}</select></label><br>\
         <button>Submit optimization</button></form>",
        html_escape(&star.identifier),
        default.ga_runs,
        default.generations,
        allocation_options(p),
    );
    p.page("Optimization run", p.current_user(req).as_ref(), &body)
}

fn handle_optimization_submit(
    p: &Portal,
    req: &Request,
    app: &dyn ScienceApp,
    star: &Star,
) -> Response {
    let user = match require_submitter(p, req) {
        Ok(u) => u,
        Err(r) => return r,
    };
    let form = req.form();
    let obs_id: i64 = match form.get("observation").and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => return Response::bad_request("choose an observation set"),
    };
    let obs = match Manager::<Observation>::new(p.conn().clone()).get(obs_id) {
        Ok(o) if o.star_id == star.id.unwrap() => o,
        Ok(_) => return Response::bad_request("observation belongs to another star"),
        Err(_) => return Response::bad_request("no such observation"),
    };
    let default = app.resources().default_spec;
    let ga_runs: u32 = form
        .get("ga_runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default.ga_runs);
    let generations: u32 = form
        .get("generations")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default.generations);
    if !(1..=16).contains(&ga_runs) || !(1..=1000).contains(&generations) {
        return Response::bad_request("ensemble parameters out of range");
    }
    let alloc = match resolve_allocation(p, &user, &form) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let spec = amp_core::OptimizationSpec {
        ga_runs,
        generations,
        // user id + clock give each submission distinct GA seeds (§2)
        seed: (user.id.unwrap() as u64) << 32 | (p.now() as u64 & 0xffff_ffff),
        ..default
    };
    let mut sim = Simulation::optimization_for(
        app.id(),
        star.id.unwrap(),
        user.id.unwrap(),
        spec,
        obs.id.unwrap(),
        &alloc.system,
        alloc.id.unwrap(),
        p.now(),
    );
    match Manager::<Simulation>::new(p.conn().clone()).create(&mut sim) {
        Ok(id) => Response::redirect(&format!("/simulation/{id}")),
        Err(e) => Response::server_error(&e.to_string()),
    }
}

// ---- the legacy stellar routes (/submit/direct/<star_id> etc.) ----
// Kept verbatim so bookmarks, the catalog's links, and the original test
// suite keep working; they are aliases for the "stellar" application.

fn stellar() -> Arc<dyn ScienceApp> {
    app::lookup("stellar").expect("stellar app registered")
}

pub fn direct_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    render_direct_form(p, req, stellar().as_ref(), &star)
}

pub fn direct_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    handle_direct_submit(p, req, stellar().as_ref(), &star)
}

pub fn optimization_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    render_optimization_form(p, req, stellar().as_ref(), &star)
}

pub fn optimization_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    handle_optimization_submit(p, req, stellar().as_ref(), &star)
}

// ---- the per-application routes (/submit/<app>/direct/<star_id> etc.) ----

pub fn app_direct_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let app = match load_app(p, req, params) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    render_direct_form(p, req, app.as_ref(), &star)
}

pub fn app_direct_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let app = match load_app(p, req, params) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    handle_direct_submit(p, req, app.as_ref(), &star)
}

pub fn app_optimization_form(p: &Portal, req: &Request, params: &Params) -> Response {
    let app = match load_app(p, req, params) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    render_optimization_form(p, req, app.as_ref(), &star)
}

pub fn app_optimization_submit(p: &Portal, req: &Request, params: &Params) -> Response {
    let app = match load_app(p, req, params) {
        Ok(a) => a,
        Err(r) => return r,
    };
    let star = match load_star(p, params) {
        Ok(s) => s,
        Err(r) => return r,
    };
    handle_optimization_submit(p, req, app.as_ref(), &star)
}
