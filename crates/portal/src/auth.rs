//! Authentication: password hashing and session management.
//!
//! The analogue of Django's auth framework that AMP adopted (§4.1) plus
//! the "SSL authentication and session management support" of §4.2.
//! SHA-256 is implemented from scratch (FIPS 180-4) because no crypto
//! crate is on the offline dependency list; passwords are stored as
//! `pbkdf-lite$<iterations>$<salt>$<hex digest>` with iterated salted
//! hashing.

use parking_lot::Mutex;
use std::collections::HashMap;

/// SHA-256 (FIPS 180-4). Straightforward, test-vector-verified.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

const SCHEME: &str = "pbkdf-lite";
const DEFAULT_ITERATIONS: u32 = 600;

/// Hash a password with a salt (iterated salted SHA-256).
pub fn hash_password(password: &str, salt: &str) -> String {
    hash_password_iter(password, salt, DEFAULT_ITERATIONS)
}

fn hash_password_iter(password: &str, salt: &str, iterations: u32) -> String {
    let mut digest = sha256(format!("{salt}:{password}").as_bytes());
    for _ in 1..iterations {
        let mut input = Vec::with_capacity(64);
        input.extend_from_slice(&digest);
        input.extend_from_slice(salt.as_bytes());
        digest = sha256(&input);
    }
    format!("{SCHEME}${iterations}${salt}${}", hex(&digest))
}

/// Verify a candidate password against a stored hash string.
pub fn verify_password(password: &str, stored: &str) -> bool {
    let parts: Vec<&str> = stored.split('$').collect();
    if parts.len() != 4 || parts[0] != SCHEME {
        return false;
    }
    let Ok(iterations) = parts[1].parse::<u32>() else {
        return false;
    };
    let recomputed = hash_password_iter(password, parts[2], iterations);
    // constant-time-ish comparison
    recomputed.len() == stored.len()
        && recomputed
            .bytes()
            .zip(stored.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
}

/// Active login session data.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    pub user_id: i64,
    pub username: String,
    pub is_admin: bool,
    pub created_at: i64,
    pub expires_at: i64,
}

/// In-memory session store keyed by cookie token. (AMP used Django's DB
/// sessions; in-memory with expiry gives the same observable behaviour
/// for a single portal process.)
#[derive(Default)]
pub struct SessionStore {
    inner: Mutex<SessionInner>,
}

#[derive(Default)]
struct SessionInner {
    sessions: HashMap<String, Session>,
    counter: u64,
}

/// Session lifetime in (simulated) seconds.
pub const SESSION_TTL_SECS: i64 = 12 * 3600;

impl SessionStore {
    pub fn new() -> Self {
        SessionStore::default()
    }

    /// Create a session; returns the cookie token.
    pub fn create(&self, user_id: i64, username: &str, is_admin: bool, now: i64) -> String {
        let mut inner = self.inner.lock();
        inner.counter += 1;
        let token = hex(&sha256(
            format!("session:{}:{}:{}", inner.counter, username, now).as_bytes(),
        ));
        inner.sessions.insert(
            token.clone(),
            Session {
                user_id,
                username: username.to_string(),
                is_admin,
                created_at: now,
                expires_at: now + SESSION_TTL_SECS,
            },
        );
        token
    }

    /// Resolve a token, honouring expiry.
    pub fn get(&self, token: &str, now: i64) -> Option<Session> {
        let mut inner = self.inner.lock();
        match inner.sessions.get(token) {
            Some(s) if s.expires_at > now => Some(s.clone()),
            Some(_) => {
                inner.sessions.remove(token);
                None
            }
            None => None,
        }
    }

    pub fn destroy(&self, token: &str) {
        self.inner.lock().sessions.remove(token);
    }

    pub fn len(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // multi-block with length near padding boundary
        let long = vec![b'a'; 1_000];
        assert_eq!(
            hex(&sha256(&long)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn password_roundtrip_and_rejection() {
        let stored = hash_password("correct horse", "salt123");
        assert!(verify_password("correct horse", &stored));
        assert!(!verify_password("wrong horse", &stored));
        assert!(!verify_password("correct horse", "garbage"));
        assert!(!verify_password(
            "correct horse",
            "pbkdf-lite$notanum$salt$00"
        ));
    }

    #[test]
    fn distinct_salts_distinct_hashes() {
        let a = hash_password("pw", "salt-a");
        let b = hash_password("pw", "salt-b");
        assert_ne!(a, b);
        assert!(verify_password("pw", &a));
        assert!(verify_password("pw", &b));
    }

    #[test]
    fn hash_never_contains_password() {
        let stored = hash_password("hunter2", "s");
        assert!(!stored.contains("hunter2"));
    }

    #[test]
    fn sessions_create_resolve_expire() {
        let store = SessionStore::new();
        let token = store.create(7, "astro1", false, 100);
        let s = store.get(&token, 200).unwrap();
        assert_eq!(s.user_id, 7);
        assert_eq!(s.username, "astro1");
        // expiry
        assert!(store.get(&token, 100 + SESSION_TTL_SECS + 1).is_none());
        // expired session was purged
        assert!(store.is_empty());
    }

    #[test]
    fn sessions_unique_and_destroyable() {
        let store = SessionStore::new();
        let a = store.create(1, "a", false, 0);
        let b = store.create(1, "a", false, 0);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        store.destroy(&a);
        assert!(store.get(&a, 1).is_none());
        assert!(store.get(&b, 1).is_some());
    }

    #[test]
    fn bogus_token_rejected() {
        let store = SessionStore::new();
        assert!(store.get("nonsense", 0).is_none());
    }
}
