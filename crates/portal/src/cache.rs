//! Versioned response cache for anonymous read-only pages.
//!
//! The portal's hottest pages — the home page, the `/stars` catalog, and
//! `/star/<ident>` detail pages — are pure functions of a handful of
//! database tables. Each cache entry is stamped with the modification
//! counters of exactly the tables the page reads, taken through a
//! coherent multi-table read view
//! ([`Connection::read_view`](amp_simdb::Connection::read_view)); any
//! committed write to one of those tables changes its counter and
//! invalidates dependent entries on the next lookup, so a cache hit is
//! always byte-identical to a fresh render (property-tested in
//! `tests/portal_serving.rs`).
//!
//! Stamps are read *before* rendering: a write racing the render can only
//! make the stored entry look stale (harmless over-invalidation), never
//! let a stale body match a fresh stamp. The read view makes the stamp
//! itself untearable — under the sharded engine there is no global lock
//! to make two separate `table_version` reads mutually consistent, so the
//! view's ordered shared-lock acquisition is what keeps a multi-table
//! transaction from splitting a stamp down the middle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::http::{Method, Request, Response};

/// The tables an eligible path reads, or `None` if the path is not
/// cacheable (mutating handlers, per-user pages, everything else).
pub fn dependencies(path: &str) -> Option<&'static [&'static str]> {
    if path == "/" {
        // counts + recent-5 list join simulations to star identifiers
        return Some(&["star", "simulation"]);
    }
    if path == "/stars" {
        return Some(&["star"]);
    }
    if let Some(rest) = path.strip_prefix("/star/") {
        // the detail page itself, not nested routes like …/observations
        if !rest.is_empty() && !rest.contains('/') {
            return Some(&["star", "observation", "simulation"]);
        }
    }
    None
}

struct CacheEntry {
    stamp: Vec<u64>,
    response: Response,
}

/// The cache proper: `(path, query) → stamped response`.
pub struct ResponseCache {
    entries: RwLock<HashMap<String, CacheEntry>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            entries: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether `req` may be served from (and stored into) the cache, and
    /// if so which tables its response depends on. Only anonymous GETs of
    /// the known read-only routes qualify — any `amp_session` cookie
    /// bypasses the cache entirely, valid or not.
    pub fn cacheable(req: &Request) -> Option<&'static [&'static str]> {
        if req.method != Method::Get || req.cookies.contains_key("amp_session") {
            return None;
        }
        dependencies(&req.path)
    }

    /// Canonical cache key. `Request::query` is a `BTreeMap`, so two URLs
    /// naming the same parameters in different order share one entry.
    pub fn key(req: &Request) -> String {
        let mut key = req.path.clone();
        for (k, v) in &req.query {
            key.push('\u{0}');
            key.push_str(k);
            key.push('\u{1}');
            key.push_str(v);
        }
        key
    }

    /// Look up `key`; hits require the stored stamp to equal `stamp`
    /// (the *current* versions of the dependency tables).
    pub fn get(&self, key: &str, stamp: &[u64]) -> Option<Response> {
        let entries = self.entries.read();
        match entries.get(key) {
            Some(e) if e.stamp == stamp => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.response.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a rendered response under `key` with the pre-render `stamp`.
    /// Responses carrying `Set-Cookie` are never stored — replaying a
    /// cookie to another client would leak state.
    pub fn put(&self, key: String, stamp: Vec<u64>, response: &Response) {
        if response
            .headers
            .iter()
            .any(|(k, _)| k.eq_ignore_ascii_case("set-cookie"))
        {
            return;
        }
        let mut entries = self.entries.write();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // Wholesale eviction: stale-stamped entries dominate a full
            // cache, and the working set refills in one pass of traffic.
            entries.clear();
        }
        entries.insert(
            key,
            CacheEntry {
                stamp,
                response: response.clone(),
            },
        );
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_dependencies() {
        assert_eq!(dependencies("/"), Some(["star", "simulation"].as_slice()));
        assert_eq!(dependencies("/stars"), Some(["star"].as_slice()));
        assert!(dependencies("/star/HD%2052265").is_some());
        assert_eq!(dependencies("/star/HD1/observations"), None);
        assert_eq!(dependencies("/star/"), None);
        assert_eq!(dependencies("/stars/search"), None);
        assert_eq!(dependencies("/accounts/login"), None);
        assert_eq!(dependencies("/simulations"), None);
    }

    #[test]
    fn cacheability_rules() {
        assert!(ResponseCache::cacheable(&Request::get("/stars")).is_some());
        // sessions bypass the cache
        let with_session = Request::get("/stars").with_cookie("amp_session", "x");
        assert!(ResponseCache::cacheable(&with_session).is_none());
        // non-session cookies don't
        let with_other = Request::get("/stars").with_cookie("theme", "dark");
        assert!(ResponseCache::cacheable(&with_other).is_some());
        // POSTs never cache
        assert!(ResponseCache::cacheable(&Request::post("/stars", &[])).is_none());
    }

    #[test]
    fn key_is_order_canonical() {
        let a = Request::get("/stars?page=2&sort=id");
        let b = Request::get("/stars?sort=id&page=2");
        assert_eq!(ResponseCache::key(&a), ResponseCache::key(&b));
        let c = Request::get("/stars?page=3");
        assert_ne!(ResponseCache::key(&a), ResponseCache::key(&c));
    }

    #[test]
    fn stamped_get_put_and_invalidation() {
        let cache = ResponseCache::new(8);
        let resp = Response::html("v1");
        cache.put("k".into(), vec![1, 7], &resp);
        assert_eq!(cache.get("k", &[1, 7]).unwrap().body, resp.body);
        // any dependency bump misses
        assert!(cache.get("k", &[2, 7]).is_none());
        assert!(cache.get("k", &[1, 8]).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn set_cookie_responses_never_stored() {
        let cache = ResponseCache::new(8);
        let resp = Response::html("x").set_cookie("amp_session", "tok");
        cache.put("k".into(), vec![1], &resp);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_holds() {
        let cache = ResponseCache::new(4);
        for i in 0..20 {
            cache.put(format!("k{i}"), vec![1], &Response::html("x"));
            assert!(cache.len() <= 4);
        }
    }
}
