//! The accessibility-friendly question/answer CAPTCHA.
//!
//! §4.2: "Due to our accessibility requirements, using a typical
//! image-only CAPTCHA was problematic, so we decided to write our own.
//! Our general purpose question/answer CAPTCHA presents a series of
//! questions with optional links to answers. For AMP, users are asked to
//! enter the HD catalog numbers of popular stars, such as 'What is the HD
//! number for Alpha Centauri?'"

use amp_stellar::famous_stars;

/// One challenge.
#[derive(Debug, Clone, PartialEq)]
pub struct Challenge {
    /// Index into the question bank (round-trips through the form).
    pub id: usize,
    pub question: String,
    /// "For astronomers that can't remember, we present a link to the
    /// page containing the answer."
    pub answer_link: String,
}

/// A general-purpose question/answer CAPTCHA backed by a question bank.
pub struct Captcha {
    bank: Vec<(String, String, String)>, // (question, answer, link)
}

impl Default for Captcha {
    fn default() -> Self {
        Self::astronomy()
    }
}

impl Captcha {
    /// The AMP question bank: HD numbers of popular stars.
    pub fn astronomy() -> Captcha {
        let bank = famous_stars()
            .into_iter()
            .filter_map(|s| {
                let name = s.name.clone()?;
                let hd = s.hd_number?;
                Some((
                    format!("What is the HD number for {name}?"),
                    hd.to_string(),
                    format!("/star/HD+{hd}"),
                ))
            })
            .collect();
        Captcha { bank }
    }

    /// A custom bank (the "general purpose" part).
    pub fn with_bank(bank: Vec<(String, String, String)>) -> Captcha {
        Captcha { bank }
    }

    pub fn len(&self) -> usize {
        self.bank.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bank.is_empty()
    }

    /// Pick a challenge deterministically from a nonce (e.g. registration
    /// attempt counter); rotation prevents answer hard-coding.
    pub fn challenge(&self, nonce: u64) -> Challenge {
        assert!(!self.bank.is_empty(), "empty captcha bank");
        let id = (nonce as usize) % self.bank.len();
        let (q, _, link) = &self.bank[id];
        Challenge {
            id,
            question: q.clone(),
            answer_link: link.clone(),
        }
    }

    /// Check an answer for challenge `id`. Whitespace-insensitive; accepts
    /// "HD 128620" as well as "128620".
    pub fn verify(&self, id: usize, answer: &str) -> bool {
        let Some((_, expected, _)) = self.bank.get(id) else {
            return false;
        };
        let cleaned: String = answer
            .trim()
            .trim_start_matches("HD")
            .trim_start_matches("hd")
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        cleaned == *expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_centauri_question_present() {
        let c = Captcha::astronomy();
        assert!(!c.is_empty());
        let all: Vec<Challenge> = (0..c.len() as u64).map(|n| c.challenge(n)).collect();
        let ac = all
            .iter()
            .find(|ch| ch.question.contains("Alpha Centauri"))
            .expect("the paper's example question");
        assert!(c.verify(ac.id, "128620"));
        assert!(c.verify(ac.id, " HD 128620 "));
        assert!(!c.verify(ac.id, "48915"), "that's Sirius");
    }

    #[test]
    fn challenges_rotate_and_link_to_answers() {
        let c = Captcha::astronomy();
        let a = c.challenge(0);
        let b = c.challenge(1);
        assert_ne!(a.question, b.question);
        assert!(a.answer_link.starts_with("/star/"));
        // nonce wraps around the bank
        assert_eq!(c.challenge(c.len() as u64), c.challenge(0));
    }

    #[test]
    fn bogus_id_rejected() {
        let c = Captcha::astronomy();
        assert!(!c.verify(9999, "128620"));
    }

    #[test]
    fn custom_bank() {
        let c = Captcha::with_bank(vec![("2+2?".into(), "4".into(), "/math".into())]);
        let ch = c.challenge(42);
        assert_eq!(ch.question, "2+2?");
        assert!(c.verify(ch.id, "4"));
        assert!(!c.verify(ch.id, "5"));
    }
}
