//! URL routing: pattern → view function, Django-urls style.

use crate::http::{Method, Request, Response};
use crate::portal::Portal;
use std::collections::BTreeMap;

/// Captured path parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(|s| s.as_str())
    }

    /// Parse a parameter as an integer id.
    pub fn id(&self, name: &str) -> Option<i64> {
        self.get(name)?.parse().ok()
    }
}

/// A view function.
pub type Handler = Box<dyn Fn(&Portal, &Request, &Params) -> Response + Send + Sync>;

#[derive(Debug, Clone, PartialEq)]
enum Segment {
    Literal(String),
    /// `<name>` — captures one path segment.
    Param(String),
    /// `<name...>` — captures the remainder of the path (greedy tail).
    Tail(String),
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if let Some(name) = s.strip_prefix('<').and_then(|s| s.strip_suffix('>')) {
                if let Some(tail) = name.strip_suffix("...") {
                    Segment::Tail(tail.to_string())
                } else {
                    Segment::Param(name.to_string())
                }
            } else {
                Segment::Literal(s.to_string())
            }
        })
        .collect()
}

/// One registered route: method + compiled pattern + the pattern source
/// (the bounded-cardinality label metrics report under) + view.
struct Route {
    method: Method,
    segments: Vec<Segment>,
    pattern: String,
    handler: Handler,
}

/// The routing table.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Portal, &Request, &Params) -> Response + Send + Sync + 'static,
    ) {
        self.routes.push(Route {
            method: Method::Get,
            segments: parse_pattern(pattern),
            pattern: pattern.to_string(),
            handler: Box::new(handler),
        });
    }

    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Portal, &Request, &Params) -> Response + Send + Sync + 'static,
    ) {
        self.routes.push(Route {
            method: Method::Post,
            segments: parse_pattern(pattern),
            pattern: pattern.to_string(),
            handler: Box::new(handler),
        });
    }

    fn match_route(segments: &[Segment], path: &str) -> Option<Params> {
        let parts: Vec<&str> = path
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        let mut params = BTreeMap::new();
        let mut i = 0;
        for seg in segments {
            match seg {
                Segment::Literal(lit) => {
                    if parts.get(i) != Some(&lit.as_str()) {
                        return None;
                    }
                    i += 1;
                }
                Segment::Param(name) => {
                    let part = parts.get(i)?;
                    params.insert(name.clone(), crate::http::urldecode(part));
                    i += 1;
                }
                Segment::Tail(name) => {
                    if i >= parts.len() {
                        return None;
                    }
                    params.insert(name.clone(), parts[i..].join("/"));
                    i = parts.len();
                }
            }
        }
        if i == parts.len() {
            Some(Params(params))
        } else {
            None
        }
    }

    /// Dispatch a request.
    pub fn dispatch(&self, portal: &Portal, req: &Request) -> Response {
        for route in &self.routes {
            if route.method != req.method {
                continue;
            }
            if let Some(params) = Self::match_route(&route.segments, &req.path) {
                return (route.handler)(portal, req, &params);
            }
        }
        Response::not_found()
    }

    /// The pattern string of the route that would serve `req` — the
    /// bounded-cardinality label per-route metrics use (raw paths would
    /// mint one metric series per star identifier).
    pub fn label(&self, req: &Request) -> Option<&str> {
        self.routes
            .iter()
            .find(|r| r.method == req.method && Self::match_route(&r.segments, &req.path).is_some())
            .map(|r| r.pattern.as_str())
    }

    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching() {
        let segs = parse_pattern("/star/<id>/plots");
        assert!(Router::match_route(&segs, "/star/42/plots").is_some());
        assert_eq!(
            Router::match_route(&segs, "/star/42/plots")
                .unwrap()
                .get("id"),
            Some("42")
        );
        assert!(Router::match_route(&segs, "/star/42").is_none());
        assert!(Router::match_route(&segs, "/star/42/plots/extra").is_none());
        assert!(Router::match_route(&segs, "/other/42/plots").is_none());
    }

    #[test]
    fn root_pattern() {
        let segs = parse_pattern("/");
        assert!(Router::match_route(&segs, "/").is_some());
        assert!(Router::match_route(&segs, "/x").is_none());
    }

    #[test]
    fn tail_capture_and_urldecoding() {
        let segs = parse_pattern("/star/<ident...>");
        let p = Router::match_route(&segs, "/star/HD+52265").unwrap();
        // tail keeps raw joining; single params percent-decode
        assert_eq!(p.get("ident"), Some("HD+52265"));

        let segs = parse_pattern("/star/<ident>");
        let p = Router::match_route(&segs, "/star/HD%2052265").unwrap();
        assert_eq!(p.get("ident"), Some("HD 52265"));
    }

    #[test]
    fn single_segment_param_keeps_literal_plus() {
        // Regression: '+' in a path segment is NOT a space ('+'-as-space
        // is a form/query convention). /star/HD+52265 must reach the view
        // as the literal identifier "HD+52265".
        let segs = parse_pattern("/star/<ident>");
        let p = Router::match_route(&segs, "/star/HD+52265").unwrap();
        assert_eq!(p.get("ident"), Some("HD+52265"));
        // %2B also decodes to a literal plus, %20 to a space.
        let p = Router::match_route(&segs, "/star/HD%2B52265").unwrap();
        assert_eq!(p.get("ident"), Some("HD+52265"));
        let p = Router::match_route(&segs, "/star/HD%2052265").unwrap();
        assert_eq!(p.get("ident"), Some("HD 52265"));
    }

    #[test]
    fn params_id_parse() {
        let segs = parse_pattern("/sim/<id>");
        let p = Router::match_route(&segs, "/sim/17").unwrap();
        assert_eq!(p.id("id"), Some(17));
        let p = Router::match_route(&segs, "/sim/abc").unwrap();
        assert_eq!(p.id("id"), None);
    }
}
