//! Readiness event loop: C10K keep-alive serving without a thread per
//! connection.
//!
//! The worker-pool server (DESIGN.md §10) parked one blocking thread per
//! in-flight connection, so concurrency was hard-capped at
//! `ServerConfig::workers` and a few thousand mostly-idle keep-alive
//! clients would starve the queue. This module owns the sockets instead:
//!
//! * a single event-loop thread runs nonblocking `accept`/`read`/`write`
//!   under an OS readiness poller ([`Poller`]: `epoll` on Linux via thin
//!   FFI, `poll(2)` elsewhere — zero external dependencies);
//! * each connection is a small state machine (read → parse → dispatch →
//!   buffered write → keep-alive or close) driven by the incremental
//!   [`RequestParser`]; handler execution stays on the worker pool, so a
//!   slow view never stalls the loop;
//! * a hashed timer wheel enforces **two** deadlines: the idle timeout
//!   between requests, and a total per-request read deadline
//!   (headers+body) that evicts slow-loris tricklers no matter how
//!   diligently they feed one byte per interval;
//! * backpressure is structural: while a response is queued or being
//!   written, the connection's read interest is suspended (at most one
//!   request per connection is ever in flight), and the accept side
//!   pauses when the dispatch queue or the connection table fills;
//! * every close is attributed to exactly one reason
//!   (`portal_connections_closed_total{reason=...}`), and error responses
//!   half-close the write side and drain the client so the error is
//!   readable instead of being destroyed by an RST.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{Request, RequestParser, Response};
use crate::portal::Portal;
use crate::server::{metrics, ServerConfig};

/// How long a connection that owes nothing more may linger after the
/// server half-closes it (we keep reading so the peer's unread bytes
/// don't turn our final response into an RST).
const LINGER_DRAIN: Duration = Duration::from_secs(1);

/// Upper bound on graceful-shutdown draining: after this, remaining
/// connections are force-closed so `Server::stop` always returns.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Bytes read per `read` call on the shared scratch buffer.
const SCRATCH_BYTES: usize = 16 * 1024;

/// Max `read` calls per connection per wakeup — bounds how long one
/// chatty connection can monopolize the loop (level-triggered polling
/// re-delivers readiness for the remainder).
const READS_PER_WAKEUP: usize = 8;

// ---------------------------------------------------------------------------
// OS readiness poller: epoll (Linux FFI) with a portable poll(2) fallback.
// ---------------------------------------------------------------------------

mod sys {
    #![allow(non_camel_case_types, dead_code)]

    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel ABI packs `epoll_event` on x86/x86_64; other
    /// architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: i32) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut epoll_event) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
        #[cfg(target_os = "linux")]
        pub fn close(fd: i32) -> i32;
        pub fn poll(fds: *mut pollfd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR`/`EPOLLHUP`: the peer is gone (delivered even with no
    /// interest registered, which is how we notice an RST while a
    /// request is off being handled).
    pub hangup: bool,
}

/// Registered interest for one fd (the `poll(2)` backend keeps these in
/// a table; epoll keeps them in the kernel).
#[derive(Clone, Copy)]
struct Interest {
    fd: RawFd,
    token: u64,
    readable: bool,
    writable: bool,
}

enum PollerImpl {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    /// Portable fallback (and a testable second implementation on
    /// Linux): interest table + `poll(2)`. O(n) per wait, which is why
    /// epoll is the default wherever it exists. On Linux only the unit
    /// tests construct it, hence the allow.
    #[allow(dead_code)]
    Poll { interest: Mutex<Vec<Interest>> },
}

/// Token the poller's internal wake channel reports on (filtered out
/// before events reach the caller).
const WAKE_TOKEN: u64 = u64::MAX;

/// OS readiness poller with a cross-thread wake channel.
pub(crate) struct Poller {
    imp: PollerImpl,
    /// Self-wake channel: any thread writes a byte, the loop drains it.
    wake_tx: std::os::unix::net::UnixStream,
    wake_rx: std::os::unix::net::UnixStream,
}

impl Poller {
    pub(crate) fn new() -> std::io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Poller::with_impl(PollerImpl::Epoll { epfd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::new_poll_backend()
        }
    }

    /// The `poll(2)` backend, constructible on every platform (unit
    /// tests exercise it even where epoll is the default).
    #[allow(dead_code)]
    pub(crate) fn new_poll_backend() -> std::io::Result<Poller> {
        Poller::with_impl(PollerImpl::Poll {
            interest: Mutex::new(Vec::new()),
        })
    }

    fn with_impl(imp: PollerImpl) -> std::io::Result<Poller> {
        let (wake_tx, wake_rx) = std::os::unix::net::UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let poller = Poller {
            imp,
            wake_tx,
            wake_rx,
        };
        poller.add(poller.wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;
        Ok(poller)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, readable: bool, writable: bool) {
        match &self.imp {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll { epfd } => {
                let mut ev = sys::epoll_event {
                    events: if readable { sys::EPOLLIN } else { 0 }
                        | if writable { sys::EPOLLOUT } else { 0 },
                    data: token,
                };
                // The only realistic failure here is EBADF after a
                // racing close; nothing useful to do with it.
                unsafe { sys::epoll_ctl(*epfd, op, fd, &mut ev) };
            }
            PollerImpl::Poll { interest } => {
                let mut table = interest.lock().expect("poller interest");
                match op {
                    sys::EPOLL_CTL_DEL => table.retain(|i| i.fd != fd),
                    _ => {
                        if let Some(i) = table.iter_mut().find(|i| i.fd == fd) {
                            *i = Interest {
                                fd,
                                token,
                                readable,
                                writable,
                            };
                        } else {
                            table.push(Interest {
                                fd,
                                token,
                                readable,
                                writable,
                            });
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn add(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable);
        Ok(())
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable);
    }

    pub(crate) fn delete(&self, fd: RawFd) {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, false, false);
    }

    /// Wake a blocked [`Poller::wait`] from any thread. A full pipe
    /// means a wake is already pending — exactly what we need.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn drain_wake(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Block until readiness, a wake, or `timeout`; fills `out` with
    /// events (the internal wake channel is drained, never reported).
    pub(crate) fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) {
        out.clear();
        let timeout_ms: i32 = match timeout {
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            None => -1,
        };
        match &self.imp {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll { epfd } => {
                let mut events = [sys::epoll_event { events: 0, data: 0 }; 1024];
                let n = unsafe {
                    sys::epoll_wait(*epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
                };
                for ev in events.iter().take(n.max(0) as usize) {
                    let (bits, token) = (ev.events, ev.data);
                    if token == WAKE_TOKEN {
                        self.drain_wake();
                        continue;
                    }
                    out.push(PollEvent {
                        token,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
            }
            PollerImpl::Poll { interest } => {
                let snapshot: Vec<Interest> = interest.lock().expect("poller interest").clone();
                let mut fds: Vec<sys::pollfd> = snapshot
                    .iter()
                    .map(|i| sys::pollfd {
                        fd: i.fd,
                        events: if i.readable { sys::POLLIN } else { 0 }
                            | if i.writable { sys::POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe {
                    sys::poll(
                        fds.as_mut_ptr(),
                        fds.len() as core::ffi::c_ulong,
                        timeout_ms,
                    )
                };
                if n <= 0 {
                    return;
                }
                for (i, pfd) in fds.iter().enumerate() {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let token = snapshot[i].token;
                    if token == WAKE_TOKEN {
                        self.drain_wake();
                        continue;
                    }
                    out.push(PollEvent {
                        token,
                        readable: pfd.revents & sys::POLLIN != 0,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                    });
                }
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let PollerImpl::Epoll { epfd } = &self.imp {
            unsafe { sys::close(*epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Close-reason accounting.
// ---------------------------------------------------------------------------

/// Why a connection was closed — every close increments exactly one
/// `portal_connections_closed_total{reason=...}` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// Keep-alive connection sat idle past `idle_timeout` between
    /// requests.
    IdleTimeout,
    /// A partially received request blew its total read deadline
    /// (headers+body) — the slow-loris eviction.
    ReadDeadline,
    /// Clean EOF from the client.
    Eof,
    /// The client negotiated the close (`Connection: close` or
    /// HTTP/1.0 without keep-alive).
    ClientClose,
    /// The server forced the close: `ServerConfig::keep_alive` off, or
    /// the handler answered with `Connection: close`.
    ServerClose,
    /// Unparseable request; answered 400.
    BadRequest,
    /// Request exceeded `max_request_bytes`; answered 413.
    TooLarge,
    /// I/O error mid-connection (RST, write failure).
    Error,
    /// Graceful shutdown closed the connection.
    Shutdown,
}

// ---------------------------------------------------------------------------
// Worker-pool dispatch.
// ---------------------------------------------------------------------------

struct Job {
    token: usize,
    generation: u64,
    request: Request,
    client_keep_alive: bool,
    enqueued: Instant,
}

pub(crate) struct Completion {
    token: usize,
    generation: u64,
    bytes: Vec<u8>,
    /// `None` keeps the connection alive; `Some(reason)` closes it
    /// after the response is flushed.
    close: Option<CloseReason>,
}

/// Bridge between the event loop (produces jobs, consumes completions)
/// and the worker pool (the reverse). `Portal::handle` runs on workers
/// only, so a slow view never blocks socket I/O.
pub(crate) struct Dispatcher {
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    stopping: AtomicBool,
    completions: Mutex<Vec<Completion>>,
}

impl Dispatcher {
    pub(crate) fn new() -> Dispatcher {
        Dispatcher {
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            stopping: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
        }
    }

    fn push_job(&self, job: Job) {
        let mut jobs = self.jobs.lock().expect("job queue");
        jobs.push_back(job);
        metrics().queue_depth.set(jobs.len() as i64);
        drop(jobs);
        self.job_ready.notify_one();
    }

    fn queue_len(&self) -> usize {
        self.jobs.lock().expect("job queue").len()
    }

    fn take_completions(&self, into: &mut Vec<Completion>) {
        let mut completions = self.completions.lock().expect("completions");
        into.append(&mut completions);
    }

    /// Wake every worker and let them exit once the queue is empty.
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.job_ready.notify_all();
    }
}

/// Worker thread body: pop a job, run the handler, serialize the
/// response, hand it back to the loop, wake the loop.
pub(crate) fn worker_main(
    portal: Arc<Portal>,
    dispatcher: Arc<Dispatcher>,
    poller: Arc<Poller>,
    config: ServerConfig,
) {
    loop {
        let job = {
            let mut jobs = dispatcher.jobs.lock().expect("job queue");
            loop {
                if let Some(job) = jobs.pop_front() {
                    metrics().queue_depth.set(jobs.len() as i64);
                    break job;
                }
                if dispatcher.stopping.load(Ordering::SeqCst) {
                    return;
                }
                jobs = dispatcher.job_ready.wait(jobs).expect("job queue");
            }
        };
        metrics()
            .queue_wait
            .observe_duration(job.enqueued.elapsed());
        if !config.handler_delay.is_zero() {
            // Load-test knob: simulate a slow backend so overload and
            // drain behaviour can be exercised deterministically.
            std::thread::sleep(config.handler_delay);
        }
        let response = portal.handle(&job.request);
        let handler_close = response.headers.iter().any(|(k, v)| {
            k.eq_ignore_ascii_case("connection") && v.to_ascii_lowercase().contains("close")
        });
        let keep_alive = job.client_keep_alive && config.keep_alive && !handler_close;
        // Close-reason attribution: the client asked (Connection: close
        // / HTTP 1.0) vs the server forced it (keep-alive disabled or
        // handler-requested close). The old blocking server lumped both
        // into `client_close`.
        let close = if keep_alive {
            None
        } else if !job.client_keep_alive {
            Some(CloseReason::ClientClose)
        } else {
            Some(CloseReason::ServerClose)
        };
        let mut bytes = Vec::with_capacity(response.body.len() + 256);
        response.write_into(&mut bytes, keep_alive);
        dispatcher
            .completions
            .lock()
            .expect("completions")
            .push(Completion {
                token: job.token,
                generation: job.generation,
                bytes,
                close,
            });
        poller.wake();
    }
}

// ---------------------------------------------------------------------------
// Timer wheel.
// ---------------------------------------------------------------------------

const WHEEL_SLOTS: usize = 512;
const WHEEL_TICK: Duration = Duration::from_millis(20);

/// Hashed timing wheel with lazy cancellation: entries are (token,
/// expected-deadline) pairs; a connection whose authoritative deadline
/// moved later is simply reinserted when its slot comes up, and one
/// whose deadline was cleared is dropped. ~10s horizon (512 × 20 ms);
/// later deadlines park at the horizon and hop until they fit.
struct TimerWheel {
    slots: Vec<Vec<usize>>,
    cursor: usize,
    /// Time at which the cursor slot began.
    cursor_time: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_time: now,
        }
    }

    fn insert(&mut self, token: usize, deadline: Instant) {
        let delta = deadline.saturating_duration_since(self.cursor_time);
        let ticks = (delta.as_millis() as u64 / WHEEL_TICK.as_millis() as u64 + 1)
            .min(WHEEL_SLOTS as u64 - 1) as usize;
        let slot = (self.cursor + ticks) % WHEEL_SLOTS;
        self.slots[slot].push(token);
    }

    /// Advance to `now`, draining every passed slot into `out` as
    /// expiry *candidates* (the caller revalidates against the
    /// connection's authoritative deadline).
    fn advance(&mut self, now: Instant, out: &mut Vec<usize>) {
        while now.duration_since(self.cursor_time) >= WHEEL_TICK {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            self.cursor_time += WHEEL_TICK;
            out.append(&mut self.slots[self.cursor]);
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request; read interest on.
    Reading,
    /// A request is on the worker pool; all interest off (backpressure:
    /// the socket may buffer, we won't read it).
    Dispatched,
    /// A serialized response is being flushed; write interest as
    /// needed.
    Writing,
    /// Response flushed, write half shut down; discarding client bytes
    /// until EOF (or a short deadline) so the close can't RST the
    /// response away. Carries the close reason to account on exit.
    Draining(CloseReason),
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    want_read: bool,
    want_write: bool,
    /// Set while a response that must end the connection is queued or
    /// being written.
    close_after_write: Option<CloseReason>,
    /// When the first byte of the current request arrived — the anchor
    /// for the total per-request read deadline. `None` between
    /// requests (idle timeout applies instead).
    request_started: Option<Instant>,
    last_activity: Instant,
    /// Authoritative deadline; wheel entries are hints.
    deadline: Option<Instant>,
    generation: u64,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, generation: u64) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Reading,
            want_read: false,
            want_write: false,
            close_after_write: None,
            request_started: None,
            last_activity: now,
            deadline: None,
            generation,
        }
    }
}

// ---------------------------------------------------------------------------
// Slab of connections (token = index, generation detects reuse).
// ---------------------------------------------------------------------------

struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

struct Slab {
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, make: impl FnOnce(u64) -> Conn) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                let generation = self.slots[i].generation;
                self.slots[i].conn = Some(make(generation));
                i
            }
            None => {
                self.slots.push(Slot {
                    generation: 1,
                    conn: Some(make(1)),
                });
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, token: usize) -> Option<&mut Conn> {
        self.slots.get_mut(token)?.conn.as_mut()
    }

    fn remove(&mut self, token: usize) -> Option<Conn> {
        let slot = self.slots.get_mut(token)?;
        let conn = slot.conn.take()?;
        // Bump so stale completions for this token are dropped.
        slot.generation += 1;
        self.free.push(token);
        self.live -= 1;
        Some(conn)
    }

    fn tokens(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.conn.is_some())
            .map(|(i, _)| i)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = u64::MAX - 1;

pub(crate) struct EventLoop {
    listener: TcpListener,
    poller: Arc<Poller>,
    dispatcher: Arc<Dispatcher>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    slab: Slab,
    wheel: TimerWheel,
    scratch: Vec<u8>,
    accepting: bool,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    pub(crate) fn new(
        listener: TcpListener,
        poller: Arc<Poller>,
        dispatcher: Arc<Dispatcher>,
        config: ServerConfig,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let now = Instant::now();
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        Ok(EventLoop {
            listener,
            poller,
            dispatcher,
            config,
            shutdown,
            slab: Slab::new(),
            wheel: TimerWheel::new(now),
            scratch: vec![0u8; SCRATCH_BYTES],
            accepting: true,
            draining: false,
            drain_deadline: None,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(1024);
        let mut completions: Vec<Completion> = Vec::new();
        let mut expired: Vec<usize> = Vec::new();
        loop {
            // Block only when nothing is timed: with live connections
            // (or a drain in progress) the wheel needs its tick.
            let timeout = if self.slab.live > 0 || self.draining {
                Some(WHEEL_TICK)
            } else {
                None
            };
            self.poller.wait(&mut events, timeout);
            let now = Instant::now();

            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain(now);
            }

            self.dispatcher.take_completions(&mut completions);
            for c in completions.drain(..) {
                self.on_completion(c, now);
            }

            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready(now);
                } else {
                    self.on_io(ev, now);
                }
            }

            self.wheel.advance(now, &mut expired);
            for token in expired.drain(..) {
                self.on_timer(token, now);
            }

            if self.draining {
                if self.slab.live == 0 {
                    break;
                }
                if self.drain_deadline.is_some_and(|d| now >= d) {
                    for token in self.slab.tokens() {
                        self.close(token, CloseReason::Shutdown);
                    }
                    break;
                }
            }
            self.update_accept_interest();
        }
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + DRAIN_GRACE);
        // Connections that owe nothing (no request in flight, no
        // response pending) close immediately; the rest drain.
        for token in self.slab.tokens() {
            if self
                .slab
                .get_mut(token)
                .is_some_and(|c| c.state == ConnState::Reading)
            {
                self.close(token, CloseReason::Shutdown);
            }
        }
    }

    /// Accept every pending connection (level-triggered: whatever we
    /// leave in the backlog re-notifies).
    fn accept_ready(&mut self, now: Instant) {
        loop {
            if self.draining
                || self.slab.live >= self.config.max_connections
                || self.dispatcher.queue_len() >= self.config.queue_depth
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self
                        .slab
                        .insert(|generation| Conn::new(stream, now, generation));
                    if self.poller.add(fd, token as u64, true, false).is_err() {
                        self.slab.remove(token);
                        continue;
                    }
                    let conn = self.slab.get_mut(token).expect("just inserted");
                    conn.want_read = true;
                    let deadline = now + self.config.idle_timeout;
                    conn.deadline = Some(deadline);
                    self.wheel.insert(token, deadline);
                    metrics().open_connections.set(self.slab.live as i64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failure (EMFILE, aborted handshake):
                // level-triggered readiness retries on the next pass.
                Err(_) => break,
            }
        }
        self.update_accept_interest();
    }

    /// Pause/resume accepting: the connection table and the dispatch
    /// queue are both bounded, and a full bound parks new clients in
    /// the kernel backlog instead of growing server state.
    fn update_accept_interest(&mut self) {
        let want = !self.draining
            && self.slab.live < self.config.max_connections
            && self.dispatcher.queue_len() < self.config.queue_depth;
        if want != self.accepting {
            self.accepting = want;
            self.poller
                .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, want, false);
        }
    }

    fn on_io(&mut self, ev: PollEvent, now: Instant) {
        let token = ev.token as usize;
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if ev.hangup && !ev.readable {
            // RST / peer vanished with nothing readable. During
            // Reading this is just an unread EOF; mid-request it is an
            // error close.
            let reason = match conn.state {
                ConnState::Reading => CloseReason::Eof,
                ConnState::Draining(reason) => reason,
                _ => CloseReason::Error,
            };
            self.close(token, reason);
            return;
        }
        if ev.readable {
            self.conn_readable(token, now);
        }
        if ev.writable {
            self.conn_writable(token, now);
        }
    }

    fn conn_readable(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        match conn.state {
            ConnState::Draining(reason) => {
                loop {
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => {
                            self.close(token, reason);
                            return;
                        }
                        Ok(_) => continue, // discard
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.close(token, reason);
                            return;
                        }
                    }
                }
            }
            ConnState::Reading => {}
            // Read interest is off in Dispatched/Writing; a stray
            // readiness event is ignored (bytes stay kernel-buffered).
            _ => return,
        }
        let mut read_any = false;
        for _ in 0..READS_PER_WAKEUP {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.close(token, CloseReason::Eof);
                    return;
                }
                Ok(n) => {
                    conn.parser.extend(&self.scratch[..n]);
                    read_any = true;
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, CloseReason::Error);
                    return;
                }
            }
        }
        if read_any {
            conn.last_activity = now;
            if conn.request_started.is_none() && conn.parser.buffered() > 0 {
                conn.request_started = Some(now);
            }
        }
        self.process_parsed(token, now);
    }

    /// Drive the parser: dispatch at most one request (single in-flight
    /// per connection keeps responses ordered and is the backpressure),
    /// re-arm deadlines, or reject malformed/oversized input.
    fn process_parsed(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        // Oversize checks: bytes actually buffered, and the declared
        // total of the in-flight request (no point buffering a body we
        // already know we will refuse).
        let declared = conn.parser.pending_request_bytes().unwrap_or(0);
        if conn.parser.buffered() > self.config.max_request_bytes
            || declared > self.config.max_request_bytes
        {
            self.respond_and_close(token, Response::payload_too_large(), CloseReason::TooLarge);
            return;
        }
        match conn.parser.next_request() {
            Ok(Some((request, client_keep_alive))) => {
                // The read deadline anchors per request: leftover
                // pipelined bytes start the next request's clock now.
                conn.request_started = (conn.parser.buffered() > 0).then_some(now);
                conn.state = ConnState::Dispatched;
                conn.deadline = None;
                let generation = conn.generation;
                self.set_interest(token, false, false);
                self.dispatcher.push_job(Job {
                    token,
                    generation,
                    request,
                    client_keep_alive,
                    enqueued: now,
                });
            }
            Ok(None) => {
                // The head may have just been parsed: a declared total
                // over the limit is rejected now, without buffering the
                // body first.
                if conn.parser.pending_request_bytes().unwrap_or(0) > self.config.max_request_bytes
                {
                    self.respond_and_close(
                        token,
                        Response::payload_too_large(),
                        CloseReason::TooLarge,
                    );
                    return;
                }
                let deadline = match conn.request_started {
                    // Mid-request: total budget from the first byte —
                    // trickling one byte per interval cannot extend it.
                    Some(t0) => t0 + self.config.read_deadline,
                    None => conn.last_activity + self.config.idle_timeout,
                };
                conn.deadline = Some(deadline);
                self.wheel.insert(token, deadline);
                self.set_interest(token, true, false);
            }
            Err(_) => {
                // Any parse failure (including malformed or duplicate
                // Content-Length) poisons the framing: answer 400 and
                // close rather than guess where the next request starts.
                self.respond_and_close(
                    token,
                    Response::bad_request("malformed request"),
                    CloseReason::BadRequest,
                );
            }
        }
    }

    /// Queue a loop-generated error response and close (with reason)
    /// once it is flushed.
    fn respond_and_close(&mut self, token: usize, response: Response, reason: CloseReason) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        conn.out.clear();
        conn.out_pos = 0;
        response.write_into(&mut conn.out, false);
        conn.state = ConnState::Writing;
        conn.close_after_write = Some(reason);
        conn.deadline = None;
        self.conn_writable(token, Instant::now());
    }

    fn on_completion(&mut self, c: Completion, now: Instant) {
        let Some(conn) = self.slab.get_mut(c.token) else {
            return; // connection died while the handler ran
        };
        if conn.generation != c.generation || conn.state != ConnState::Dispatched {
            return; // token was reused; response belongs to a ghost
        }
        conn.out = c.bytes;
        conn.out_pos = 0;
        conn.state = ConnState::Writing;
        conn.close_after_write = c.close;
        self.conn_writable(c.token, now);
    }

    fn conn_writable(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.state != ConnState::Writing {
            return;
        }
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(token, CloseReason::Error);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.set_interest(token, false, true);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, CloseReason::Error);
                    return;
                }
            }
        }
        // Response fully flushed.
        conn.out = Vec::new();
        conn.out_pos = 0;
        conn.last_activity = now;
        let close_reason = conn.close_after_write.take();
        match close_reason {
            Some(reason) => self.linger_close(token, reason, now),
            None if self.draining => self.linger_close(token, CloseReason::Shutdown, now),
            None => {
                conn.state = ConnState::Reading;
                self.set_interest(token, true, false);
                // A pipelined request may already be buffered — serve
                // it without waiting for socket readiness.
                self.process_parsed(token, now);
            }
        }
    }

    /// Send FIN (half-close) and discard client bytes until EOF or a
    /// short deadline. Closing with unread input pending would RST the
    /// connection and destroy the just-written response in the peer's
    /// receive path — this is what makes a 413/400 reliably readable.
    fn linger_close(&mut self, token: usize, reason: CloseReason, now: Instant) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.state = ConnState::Draining(reason);
        let deadline = now + LINGER_DRAIN;
        conn.deadline = Some(deadline);
        self.wheel.insert(token, deadline);
        self.set_interest(token, true, false);
    }

    fn on_timer(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        match conn.deadline {
            None => {} // canceled (request in flight)
            Some(d) if d <= now => match conn.state {
                ConnState::Reading => {
                    let reason = if conn.request_started.is_some() {
                        CloseReason::ReadDeadline
                    } else {
                        CloseReason::IdleTimeout
                    };
                    self.close(token, reason);
                }
                ConnState::Draining(reason) => self.close(token, reason),
                _ => {}
            },
            // Deadline moved later (lazy cancellation): reinsert.
            Some(d) => self.wheel.insert(token, d),
        }
    }

    fn set_interest(&mut self, token: usize, readable: bool, writable: bool) {
        let poller = self.poller.clone();
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.want_read != readable || conn.want_write != writable {
            conn.want_read = readable;
            conn.want_write = writable;
            poller.modify(conn.stream.as_raw_fd(), token as u64, readable, writable);
        }
    }

    fn close(&mut self, token: usize, reason: CloseReason) {
        if let Some(conn) = self.slab.remove(token) {
            // Account BEFORE the fd drops: closing the socket is
            // observable by the peer (EOF/RST), and a test or scraper
            // reacting to that must already see the close counted.
            metrics().closed(reason).inc();
            metrics().open_connections.set(self.slab.live as i64);
            self.poller.delete(conn.stream.as_raw_fd());
            drop(conn); // closes the fd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_after_deadline_and_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(7, t0 + Duration::from_millis(100));
        let mut out = Vec::new();
        wheel.advance(t0 + Duration::from_millis(60), &mut out);
        assert!(out.is_empty(), "fired {out:?} before the deadline slot");
        wheel.advance(t0 + Duration::from_millis(200), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn timer_wheel_clamps_far_deadlines_to_horizon() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // Far past the ~10s horizon: must surface as a candidate within
        // one wheel revolution (lazy reinsertion handles the rest).
        wheel.insert(3, t0 + Duration::from_secs(120));
        let mut out = Vec::new();
        wheel.advance(t0 + WHEEL_TICK * (WHEEL_SLOTS as u32), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn slab_generation_invalidates_reused_tokens() {
        let mut slab = Slab::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let make = || TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let now = Instant::now();
        let t1 = slab.insert(|g| Conn::new(make(), now, g));
        let g1 = slab.get_mut(t1).unwrap().generation;
        slab.remove(t1);
        let t2 = slab.insert(|g| Conn::new(make(), now, g));
        assert_eq!(t1, t2, "slot is reused");
        let g2 = slab.get_mut(t2).unwrap().generation;
        assert_ne!(g1, g2, "generation must differ so stale completions drop");
        assert_eq!(slab.live, 1);
    }

    /// The poll(2) backend (the non-Linux fallback) delivers readable /
    /// writable readiness and cross-thread wakes — exercised on Linux
    /// too so the fallback cannot rot.
    #[test]
    fn poll_backend_reports_readiness_and_wakes() {
        let poller = Poller::new_poll_backend().unwrap();
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 42, true, false).unwrap();

        // Nothing readable yet: a short wait returns no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10)));
        assert!(events.is_empty());

        (&b).write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(500)));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Cross-thread wake unblocks an idle wait without reporting an
        // event for it.
        let mut drain = [0u8; 8];
        (&a).read_exact(&mut drain[..1]).unwrap();
        poller.delete(a.as_raw_fd());
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                poller.wake();
            });
            let t = Instant::now();
            poller.wait(&mut events, Some(Duration::from_secs(5)));
            assert!(events.is_empty());
            assert!(t.elapsed() < Duration::from_secs(4), "wake did not unblock");
        });
    }
}
