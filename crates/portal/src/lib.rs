//! # amp-portal — the AMP web gateway
//!
//! The public face of the AMP reproduction (Woitaszek et al., GCE 2009):
//! a database-driven web application with *no grid connectivity and no
//! credentials* (Figure 2 / §3). It talks only to the central database,
//! with the `web` role's grants; the GridAMP daemon picks submissions up
//! asynchronously from there.
//!
//! * [`http`] / [`server`] — hand-rolled HTTP/1.1 (no web framework on the
//!   offline crate list);
//! * [`templates`] — a small Django-flavoured template engine;
//! * [`router`] — URL patterns → view functions;
//! * [`auth`] — from-scratch SHA-256, salted iterated password hashing,
//!   session store;
//! * [`captcha`] — the §4.2 accessibility CAPTCHA ("What is the HD number
//!   for Alpha Centauri?");
//! * [`simbad`] — the synthetic external catalog for search fall-through;
//! * [`apps`] — the Django-style applications: accounts, catalog, results,
//!   submission, admin (non-public deploys only), RSS feeds.

pub mod apps;
pub mod auth;
pub mod cache;
pub mod captcha;
pub(crate) mod event_loop;
pub mod http;
pub mod portal;
pub mod router;
pub mod server;
pub mod simbad;
pub mod templates;

pub use auth::{hash_password, sha256, verify_password, SessionStore};
pub use cache::ResponseCache;
pub use captcha::Captcha;
pub use http::{Method, Request, RequestParser, Response};
pub use portal::{Portal, PortalConfig};
pub use router::{Params, Router};
pub use server::{Server, ServerConfig};
pub use simbad::{Simbad, SimbadError};
pub use templates::{render, Template, TemplateRegistry};

#[cfg(test)]
mod portal_tests {
    use super::*;
    use amp_core::models::{Allocation, AmpUser, Simulation, Star, SystemAuthorization};
    use amp_core::SimStatus;
    use amp_simdb::orm::Manager;
    use amp_simdb::{Db, Query};

    /// Bootstrap a DB + portal (admin-enabled unless stated otherwise).
    fn setup(admin_enabled: bool) -> (Db, Portal) {
        let db = Db::in_memory();
        amp_core::setup::initialize(&db).unwrap();
        let portal = Portal::new(
            &db,
            PortalConfig {
                admin_enabled,
                simbad_stars: 30,
                simbad_seed: 7,
                ..PortalConfig::default()
            },
        )
        .unwrap();
        portal.set_now(1_000);
        (db, portal)
    }

    /// Register + approve + log in; returns the session cookie value.
    fn make_user(db: &Db, portal: &Portal, username: &str, admin: bool) -> (i64, String) {
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let users = Manager::<AmpUser>::new(conn);
        let mut u = AmpUser::new(
            username,
            &format!("{username}@example.edu"),
            &hash_password("orbitals88", "s"),
            0,
        );
        u.approved = true;
        u.is_admin = admin;
        let id = users.create(&mut u).unwrap();
        let resp = portal.handle(&Request::post(
            "/accounts/login",
            &[("username", username), ("password", "orbitals88")],
        ));
        assert_eq!(resp.status, 302, "{}", resp.body_str());
        let cookie = resp
            .headers
            .iter()
            .find(|(k, _)| k == "Set-Cookie")
            .map(|(_, v)| {
                v.split(';')
                    .next()
                    .unwrap()
                    .split('=')
                    .nth(1)
                    .unwrap()
                    .to_string()
            })
            .expect("session cookie");
        (id, cookie)
    }

    fn seed_star(db: &Db) -> (i64, String) {
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(conn);
        let famous = amp_stellar::famous_stars();
        let mut s = Star::from_catalog(&famous[3], "local"); // Tau Ceti
        stars.create(&mut s).unwrap();
        (s.id.unwrap(), s.identifier)
    }

    fn seed_allocation(db: &Db, user_id: i64) -> i64 {
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let allocs = Manager::<Allocation>::new(conn.clone());
        let mut a = Allocation::new("kraken", "TG-AST090030", 100_000.0);
        allocs.create(&mut a).unwrap();
        let auths = Manager::<SystemAuthorization>::new(conn);
        auths
            .create(&mut SystemAuthorization::new(user_id, a.id.unwrap(), 0))
            .unwrap();
        a.id.unwrap()
    }

    #[test]
    fn home_page_hides_grid_jargon() {
        let (_db, portal) = setup(false);
        let resp = portal.handle(&Request::get("/"));
        assert_eq!(resp.status, 200);
        let body = resp.body_str().to_lowercase();
        // §5: "the word 'certificate' is not even mentioned anywhere"
        assert!(!body.contains("certificate"));
        assert!(!body.contains("globus"));
        assert!(!body.contains("gram"));
        // but HPC-familiar vocabulary stays
        assert!(body.contains("simulations"));
    }

    #[test]
    fn registration_requires_correct_captcha() {
        let (db, portal) = setup(false);
        // fetch the form to learn the challenge id
        let form = portal.handle(&Request::get("/accounts/register"));
        let body = form.body_str();
        let id_pos = body.find("name=\"captcha_id\" value=\"").unwrap();
        let id: usize = body[id_pos + 25..]
            .split('"')
            .next()
            .unwrap()
            .parse()
            .unwrap();

        // wrong answer blocked
        let resp = portal.handle(&Request::post(
            "/accounts/register",
            &[
                ("username", "supermodel"),
                ("email", "fab@example.com"),
                ("password", "longenough"),
                ("captcha_id", &id.to_string()),
                ("captcha_answer", "i love stars"),
            ],
        ));
        assert_eq!(resp.status, 403);

        // correct answer accepted (look the answer up like an astronomer)
        let q_pos = body.find("Are you an astronomer?").unwrap();
        let question = &body[q_pos..(q_pos + 400).min(body.len())];
        let star = amp_stellar::famous_stars()
            .into_iter()
            .find(|s| question.contains(s.name.as_deref().unwrap_or("")))
            .expect("question names a famous star");
        let resp = portal.handle(&Request::post(
            "/accounts/register",
            &[
                ("username", "astro2"),
                ("email", "astro2@example.edu"),
                ("password", "longenough"),
                ("captcha_id", &id.to_string()),
                ("captcha_answer", &star.hd_number.unwrap().to_string()),
            ],
        ));
        assert_eq!(resp.status, 302, "{}", resp.body_str());

        // account exists but is unapproved; login is refused
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let users = Manager::<AmpUser>::new(conn);
        let u = users
            .first(&Query::new().eq("username", "astro2"))
            .unwrap()
            .unwrap();
        assert!(!u.approved);
        assert!(u.provenance.contains("captcha"));
        let resp = portal.handle(&Request::post(
            "/accounts/login",
            &[("username", "astro2"), ("password", "longenough")],
        ));
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn registration_validation() {
        let (_db, portal) = setup(false);
        for (u, e, pw) in [
            ("ab", "a@b.c", "longenough"),      // username too short
            ("user!", "a@b.c", "longenough"),   // bad chars
            ("gooduser", "nope", "longenough"), // bad email
            ("gooduser", "a@b.c", "short"),     // short password
        ] {
            let resp = portal.handle(&Request::post(
                "/accounts/register",
                &[
                    ("username", u),
                    ("email", e),
                    ("password", pw),
                    ("captcha_id", "0"),
                    ("captcha_answer", "128620"),
                ],
            ));
            assert_eq!(resp.status, 400, "{u}/{e}/{pw}");
        }
    }

    #[test]
    fn login_logout_session_lifecycle() {
        let (db, portal) = setup(false);
        let (_uid, cookie) = make_user(&db, &portal, "astro1", false);
        let resp =
            portal.handle(&Request::get("/accounts/profile").with_cookie("amp_session", &cookie));
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("astro1"));

        // wrong password
        let resp = portal.handle(&Request::post(
            "/accounts/login",
            &[("username", "astro1"), ("password", "wrong")],
        ));
        assert_eq!(resp.status, 403);

        // logout invalidates
        portal.handle(&Request::get("/accounts/logout").with_cookie("amp_session", &cookie));
        let resp =
            portal.handle(&Request::get("/accounts/profile").with_cookie("amp_session", &cookie));
        assert_eq!(resp.status, 302);
    }

    #[test]
    fn search_falls_through_to_simbad_and_imports() {
        let (db, portal) = setup(false);
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(conn);
        assert_eq!(stars.count(&Query::new()).unwrap(), 0);

        let resp = portal.handle(&Request::get("/stars/search?q=HD+128620"));
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("added to the AMP catalog"));
        assert_eq!(stars.count(&Query::new()).unwrap(), 1);
        assert_eq!(portal.simbad.query_count(), 1);

        // second search hits the local catalog, not SIMBAD
        let resp = portal.handle(&Request::get("/stars/search?q=HD+128620"));
        assert!(resp.body_str().contains("HD 128620"));
        assert_eq!(portal.simbad.query_count(), 1, "no second external query");

        // unknown target: graceful miss
        let resp = portal.handle(&Request::get("/stars/search?q=HD+424242424"));
        assert!(resp.body_str().contains("No matching targets"));
    }

    #[test]
    fn suggest_ranks_results_and_kepler_first() {
        let (db, portal) = setup(false);
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(conn);
        for (ident, has_results, kepler) in [
            ("HD 300001", false, false),
            ("HD 300002", true, false),
            ("HD 300003", false, true),
        ] {
            let mut s = Star {
                id: None,
                identifier: ident.into(),
                name: None,
                hd_number: None,
                kic_number: None,
                ra: 0.0,
                dec: 0.0,
                vmag: 8.0,
                in_kepler_field: kepler,
                source: "local".into(),
                has_results,
            };
            stars.create(&mut s).unwrap();
        }
        let resp = portal.handle(&Request::get("/api/suggest?q=HD+3000"));
        let items: Vec<serde_json::Value> = serde_json::from_str(&resp.body_str()).unwrap();
        assert_eq!(items.len(), 3);
        // interesting stars first
        assert_eq!(items[0]["identifier"], "HD 300002");
        assert_eq!(items[1]["identifier"], "HD 300003");
        assert_eq!(items[2]["identifier"], "HD 300001");
        // too-short query returns empty
        let resp = portal.handle(&Request::get("/api/suggest?q=H"));
        assert_eq!(resp.body_str(), "[]");
    }

    #[test]
    fn observation_upload_validates_strictly() {
        let (db, portal) = setup(false);
        let (_uid, cookie) = make_user(&db, &portal, "astro1", false);
        let (star_id, ident) = seed_star(&db);
        let path = format!("/star/{}/observations", crate::http::urlencode_path(&ident));

        // anonymous -> login redirect
        let resp = portal.handle(&Request::post(&path, &[("modes", "0 20 2000.0 0.1")]));
        assert_eq!(resp.status, 302);

        // garbage lines rejected with the line number
        let resp = portal.handle(
            &Request::post(&path, &[("modes", "0 20 2000.0 0.1\nnot a mode line")])
                .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 400);
        assert!(resp.body_str().contains("line 2"));

        // too few modes rejected
        let resp = portal.handle(
            &Request::post(&path, &[("modes", "0 20 2000.0 0.1")])
                .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 400);

        // valid upload lands as a typed observation row
        let modes = "0 20 2000.0 0.1\n0 21 2134.0 0.1\n1 20 2067.0 0.12";
        let resp = portal.handle(
            &Request::post(
                &path,
                &[("modes", modes), ("teff", "5800"), ("teff_sigma", "70")],
            )
            .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 302, "{}", resp.body_str());
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let obs = Manager::<amp_core::models::Observation>::new(conn)
            .filter(&Query::new().eq("star_id", star_id))
            .unwrap();
        assert_eq!(obs.len(), 1);
        let decoded = obs[0].observed().unwrap();
        assert_eq!(decoded.modes.len(), 3);
        assert_eq!(decoded.teff.unwrap().value, 5800.0);
    }

    #[test]
    fn direct_submission_flow() {
        let (db, portal) = setup(false);
        let (uid, cookie) = make_user(&db, &portal, "astro1", false);
        let (star_id, _) = seed_star(&db);
        let alloc = seed_allocation(&db, uid);

        let path = format!("/submit/direct/{star_id}");
        let good = [
            ("mass", "1.1"),
            ("metallicity", "0.02"),
            ("helium", "0.27"),
            ("alpha", "1.9"),
            ("age", "4.0"),
            ("allocation", &alloc.to_string()),
        ];
        // anonymous redirected
        assert_eq!(portal.handle(&Request::post(&path, &good)).status, 302);
        let resp = portal.handle(&Request::post(&path, &good).with_cookie("amp_session", &cookie));
        assert_eq!(resp.status, 302, "{}", resp.body_str());

        // out-of-domain rejected
        let mut bad = good;
        bad[0] = ("mass", "9.0");
        let resp = portal.handle(&Request::post(&path, &bad).with_cookie("amp_session", &cookie));
        assert_eq!(resp.status, 400);

        // non-numeric rejected
        let mut nan = good;
        nan[4] = ("age", "four");
        let resp = portal.handle(&Request::post(&path, &nan).with_cookie("amp_session", &cookie));
        assert_eq!(resp.status, 400);

        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sims = Manager::<Simulation>::new(conn);
        let all = sims.all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].status, SimStatus::Queued);
        assert_eq!(all[0].system, "kraken");
    }

    #[test]
    fn submission_requires_machine_authorization() {
        let (db, portal) = setup(false);
        let (_uid, cookie) = make_user(&db, &portal, "astro1", false);
        let (star_id, _) = seed_star(&db);
        // allocation exists but astro1 is NOT authorized for it
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let allocs = Manager::<Allocation>::new(conn);
        let mut a = Allocation::new("kraken", "TG-X", 1000.0);
        allocs.create(&mut a).unwrap();

        let resp = portal.handle(
            &Request::post(
                &format!("/submit/direct/{star_id}"),
                &[
                    ("mass", "1.0"),
                    ("metallicity", "0.02"),
                    ("helium", "0.27"),
                    ("alpha", "1.9"),
                    ("age", "4.0"),
                    ("allocation", &a.id.unwrap().to_string()),
                ],
            )
            .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn admin_interface_gated_three_ways() {
        // 1. public deploy: routes do not exist
        let (_db, public) = setup(false);
        assert_eq!(public.handle(&Request::get("/admin")).status, 404);
        assert!(public.admin_conn().is_none());

        // 2. internal deploy, anonymous: redirected to login
        let (db, internal) = setup(true);
        assert_eq!(internal.handle(&Request::get("/admin")).status, 302);

        // 3. internal deploy, non-admin user: forbidden
        let (_uid, cookie) = make_user(&db, &internal, "pleb", false);
        assert_eq!(
            internal
                .handle(&Request::get("/admin").with_cookie("amp_session", &cookie))
                .status,
            403
        );

        // admin user sees the dashboard
        let (_aid, admin_cookie) = make_user(&db, &internal, "boss", true);
        let resp =
            internal.handle(&Request::get("/admin").with_cookie("amp_session", &admin_cookie));
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("amp_user"));
    }

    #[test]
    fn admin_approves_users_and_authorizes_machines() {
        let (db, portal) = setup(true);
        let (_aid, admin_cookie) = make_user(&db, &portal, "boss", true);

        // a pending registrant
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let users = Manager::<AmpUser>::new(conn.clone());
        let mut pending = AmpUser::new("newbie", "n@x.edu", &hash_password("pw", "s"), 0);
        let pid = users.create(&mut pending).unwrap();

        let resp = portal.handle(
            &Request::post(&format!("/admin/users/{pid}/approve"), &[])
                .with_cookie("amp_session", &admin_cookie),
        );
        assert_eq!(resp.status, 302);
        assert!(users.get(pid).unwrap().approved);

        // grant machine authorization via the admin form
        let allocs = Manager::<Allocation>::new(conn.clone());
        let mut a = Allocation::new("kraken", "TG-Y", 1000.0);
        allocs.create(&mut a).unwrap();
        let resp = portal.handle(
            &Request::post(
                "/admin/authorize",
                &[
                    ("user_id", &pid.to_string()),
                    ("allocation_id", &a.id.unwrap().to_string()),
                ],
            )
            .with_cookie("amp_session", &admin_cookie),
        );
        assert_eq!(resp.status, 302);
        let auths = Manager::<SystemAuthorization>::new(conn);
        assert!(SystemAuthorization::is_authorized(&auths, pid, a.id.unwrap()).unwrap());
    }

    #[test]
    fn admin_generic_table_editor() {
        let (db, portal) = setup(true);
        let (_aid, cookie) = make_user(&db, &portal, "boss", true);
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let allocs = Manager::<Allocation>::new(conn.clone());
        let mut a = Allocation::new("kraken", "TG-Z", 1000.0);
        allocs.create(&mut a).unwrap();

        // browse
        let resp = portal
            .handle(&Request::get("/admin/table/allocation").with_cookie("amp_session", &cookie));
        assert!(resp.body_str().contains("TG-Z"));

        // edit a field (adjusting back-end parameters, §4.1)
        let resp = portal.handle(
            &Request::post(
                &format!("/admin/table/allocation/{}/set", a.id.unwrap()),
                &[("column", "su_granted"), ("value", "55000")],
            )
            .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 302, "{}", resp.body_str());
        assert_eq!(allocs.get(a.id.unwrap()).unwrap().su_granted, 55_000.0);

        // type-violating edit rejected
        let resp = portal.handle(
            &Request::post(
                &format!("/admin/table/allocation/{}/set", a.id.unwrap()),
                &[("column", "su_granted"), ("value", "lots")],
            )
            .with_cookie("amp_session", &cookie),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn rss_feed_renders() {
        let (db, portal) = setup(false);
        let (uid, _cookie) = make_user(&db, &portal, "astro1", false);
        let (star_id, _) = seed_star(&db);
        let alloc = seed_allocation(&db, uid);
        let conn = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sims = Manager::<Simulation>::new(conn);
        let mut sim = Simulation::new_direct(
            star_id,
            uid,
            amp_stellar::StellarParams::benchmark(),
            "kraken",
            alloc,
            500,
        );
        sims.create(&mut sim).unwrap();

        let resp = portal.handle(&Request::get(&format!("/feeds/star/{star_id}.rss")));
        assert_eq!(resp.status, 200);
        let xml = resp.body_str();
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<rss version=\"2.0\">"));
        assert!(xml.contains("direct simulation"));
        assert!(xml.contains("QUEUED"));
    }

    #[test]
    fn unknown_routes_404() {
        let (_db, portal) = setup(false);
        assert_eq!(portal.handle(&Request::get("/nope")).status, 404);
        assert_eq!(portal.handle(&Request::get("/star/999999")).status, 404);
        assert_eq!(
            portal.handle(&Request::get("/simulation/12345")).status,
            404
        );
    }

    #[test]
    fn tcp_server_round_trip() {
        let (db, portal) = setup(false);
        seed_star(&db);
        let portal = std::sync::Arc::new(portal);
        let server = Server::spawn(portal, 0).unwrap();
        let raw = "GET /stars HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n".to_string();
        let response = server::fetch(server.addr(), &raw).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Star catalog"));
        server.stop();
    }
}
