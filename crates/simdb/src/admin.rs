//! Introspection utilities for the administrative interface.
//!
//! Django's built-in admin "can manipulate ORM objects ... without custom
//! development" (§4.1). The AMP portal's admin app builds its generic
//! table/row screens on these functions. All of them go through a
//! role-scoped [`Connection`], so the admin surface is still subject to the
//! permission system (AMP ran it only on non-public servers).

use crate::error::DbError;
use crate::query::Query;
use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::{Value, ValueType};
use crate::Connection;

/// Names of all tables, sorted.
pub fn table_names(conn: &Connection) -> Vec<String> {
    conn.db_handle().table_names()
}

/// The stored schema of a table.
pub fn table_schema(conn: &Connection, table: &str) -> Result<TableSchema, DbError> {
    conn.db_handle().table_schema(table)
}

/// Row count without requiring SELECT (admin dashboards show counts even
/// for tables the viewing role cannot read in full).
pub fn table_len(conn: &Connection, table: &str) -> Result<usize, DbError> {
    conn.db_handle().table_len(table)
}

/// A page of rows for the generic change-list screen.
pub fn browse(
    conn: &Connection,
    table: &str,
    offset: usize,
    limit: usize,
) -> Result<Vec<(i64, Row)>, DbError> {
    conn.select(table, &Query::new().offset(offset).limit(limit))
}

/// Parse a user-supplied string into a `Value` for a given column type —
/// the admin form's input path. Strictness here is part of the security
/// story: free text only ever enters the DB as a validated, typed value.
pub fn parse_value(ty: ValueType, raw: &str) -> Result<Value, DbError> {
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    let err = |detail: &str| DbError::Schema(format!("cannot parse {raw:?} as {ty}: {detail}"));
    match ty {
        ValueType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(&e.to_string())),
        ValueType::Float => {
            let v: f64 = raw
                .parse()
                .map_err(|e: std::num::ParseFloatError| err(&e.to_string()))?;
            if v.is_nan() {
                return Err(err("NaN is not storable"));
            }
            Ok(Value::Float(v))
        }
        ValueType::Bool => match raw.to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" | "on" => Ok(Value::Bool(true)),
            "false" | "0" | "no" | "off" => Ok(Value::Bool(false)),
            _ => Err(err("expected true/false")),
        },
        ValueType::Text => Ok(Value::Text(raw.to_string())),
        ValueType::Timestamp => raw
            .trim_start_matches('@')
            .parse::<i64>()
            .map(Value::Timestamp)
            .map_err(|e| err(&e.to_string())),
    }
}

/// Generic single-field edit used by the admin change form.
pub fn set_field(
    conn: &Connection,
    table: &str,
    id: i64,
    column: &str,
    raw: &str,
) -> Result<(), DbError> {
    let schema = table_schema(conn, table)?;
    let col = schema.column(column).ok_or_else(|| DbError::NoSuchColumn {
        table: table.to_string(),
        column: column.to_string(),
    })?;
    let value = parse_value(col.ty, raw)?;
    conn.update(table, id, &[(column, value)])
}

/// Dump a whole table as display strings (debugging / fixtures).
pub fn dump_table(conn: &Connection, table: &str) -> Result<String, DbError> {
    let schema = table_schema(conn, table)?;
    let rows = conn.select(table, &Query::new())?;
    let mut out = String::new();
    out.push_str("id");
    for c in &schema.columns {
        out.push('\t');
        out.push_str(&c.name);
    }
    out.push('\n');
    for (id, row) in rows {
        out.push_str(&id.to_string());
        for v in &row {
            out.push('\t');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    Ok(out)
}

// Admin introspection reads schema metadata (catalog-level, no row locks),
// not row data; it never returns row contents without a SELECT check
// (browse/dump go through conn.select above).

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::{PermSet, Role};
    use crate::schema::Column;
    use crate::{Db, TableSchema};

    fn setup() -> Db {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(Role::new("web").grant("star", PermSet::READ_ONLY));
        let admin = db.connect("admin").unwrap();
        admin
            .create_table(TableSchema::new(
                "star",
                vec![
                    Column::new("name", ValueType::Text).not_null(),
                    Column::new("mass", ValueType::Float),
                    Column::new("seen", ValueType::Bool).default(false),
                ],
            ))
            .unwrap();
        admin
            .insert(
                "star",
                &[("name", "HD1".into()), ("mass", Value::Float(1.1))],
            )
            .unwrap();
        db
    }

    #[test]
    fn introspection() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        assert_eq!(table_names(&admin), vec!["star".to_string()]);
        assert_eq!(table_len(&admin, "star").unwrap(), 1);
        let schema = table_schema(&admin, "star").unwrap();
        assert_eq!(schema.columns.len(), 3);
    }

    #[test]
    fn parse_value_strictness() {
        assert_eq!(parse_value(ValueType::Int, "42").unwrap(), Value::Int(42));
        assert!(parse_value(ValueType::Int, "4.2").is_err());
        assert!(parse_value(ValueType::Int, "42; DROP TABLE star").is_err());
        assert_eq!(
            parse_value(ValueType::Bool, "Yes").unwrap(),
            Value::Bool(true)
        );
        assert!(parse_value(ValueType::Float, "NaN").is_err());
        assert_eq!(parse_value(ValueType::Text, "  hi ").unwrap(), "hi".into());
        assert_eq!(
            parse_value(ValueType::Timestamp, "@99").unwrap(),
            Value::Timestamp(99)
        );
        assert!(parse_value(ValueType::Int, "").unwrap().is_null());
    }

    #[test]
    fn set_field_roundtrip() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        set_field(&admin, "star", 1, "mass", "2.5").unwrap();
        assert_eq!(admin.get("star", 1).unwrap()[1], Value::Float(2.5));
        assert!(set_field(&admin, "star", 1, "mass", "heavy").is_err());
        assert!(set_field(&admin, "star", 1, "nope", "1").is_err());
    }

    #[test]
    fn set_field_respects_role() {
        let db = setup();
        let web = db.connect("web").unwrap();
        assert!(set_field(&web, "star", 1, "mass", "2.5").is_err());
    }

    #[test]
    fn dump_table_format() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let dump = dump_table(&admin, "star").unwrap();
        assert!(dump.starts_with("id\tname\tmass\tseen\n"));
        assert!(dump.contains("HD1"));
    }

    #[test]
    fn browse_pagination() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        for i in 0..10 {
            admin
                .insert("star", &[("name", format!("S{i}").into())])
                .unwrap();
        }
        let page = browse(&admin, "star", 5, 3).unwrap();
        assert_eq!(page.len(), 3);
    }

    #[test]
    fn action_export_is_reexported() {
        // keep Action in the public surface for downstream permission UIs
        let _ = crate::Action::Select.name();
    }
}
