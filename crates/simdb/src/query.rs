//! Query descriptions: filters, ordering, pagination.
//!
//! The equivalent of Django's queryset surface that AMP's views and the
//! GridAMP daemon used (`filter`, `exclude`-style negation via `Ne`,
//! `order_by`, slicing).

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::table::{Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::ops::Bound;

/// Comparison operators available in filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Case-sensitive substring match (Text columns).
    Contains,
    /// Case-insensitive substring match.
    IContains,
    /// Prefix match (Text columns).
    StartsWith,
    /// Membership in a value list.
    In(Vec<Value>),
    IsNull,
    NotNull,
}

/// A single column predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    pub column: String,
    pub op: Op,
    pub value: Value,
}

impl Filter {
    pub fn new(column: &str, op: Op, value: impl Into<Value>) -> Self {
        Filter {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Self::new(column, Op::Eq, value)
    }

    fn matches(&self, cell: &Value) -> bool {
        match &self.op {
            Op::IsNull => cell.is_null(),
            Op::NotNull => !cell.is_null(),
            Op::In(vals) => vals.iter().any(|v| v.key_eq(cell)),
            op => {
                if cell.is_null() {
                    // SQL semantics: NULL matches no ordinary comparison.
                    return false;
                }
                match op {
                    Op::Eq => cell.key_eq(&self.value),
                    Op::Ne => !cell.key_eq(&self.value),
                    Op::Lt => cell.total_cmp(&self.value).is_lt(),
                    Op::Le => cell.total_cmp(&self.value).is_le(),
                    Op::Gt => cell.total_cmp(&self.value).is_gt(),
                    Op::Ge => cell.total_cmp(&self.value).is_ge(),
                    Op::Contains => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => c.contains(n.as_str()),
                        _ => false,
                    },
                    Op::IContains => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => {
                            c.to_lowercase().contains(&n.to_lowercase())
                        }
                        _ => false,
                    },
                    Op::StartsWith => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => c.starts_with(n.as_str()),
                        _ => false,
                    },
                    Op::In(_) | Op::IsNull | Op::NotNull => unreachable!(),
                }
            }
        }
    }
}

/// Sort key: column name + direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    pub column: String,
    pub descending: bool,
}

/// A complete query over one table. Filters are conjunctive (AND).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub filters: Vec<Filter>,
    pub order_by: Vec<OrderBy>,
    pub limit: Option<usize>,
    pub offset: usize,
}

impl Query {
    pub fn new() -> Self {
        Query::default()
    }

    pub fn filter(mut self, column: &str, op: Op, value: impl Into<Value>) -> Self {
        self.filters.push(Filter::new(column, op, value));
        self
    }

    pub fn eq(self, column: &str, value: impl Into<Value>) -> Self {
        self.filter(column, Op::Eq, value)
    }

    pub fn order_by(mut self, column: &str) -> Self {
        self.order_by.push(OrderBy {
            column: column.to_string(),
            descending: false,
        });
        self
    }

    pub fn order_by_desc(mut self, column: &str) -> Self {
        self.order_by.push(OrderBy {
            column: column.to_string(),
            descending: true,
        });
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    pub fn offset(mut self, n: usize) -> Self {
        self.offset = n;
        self
    }

    /// Check every referenced column exists; returns resolved column indexes
    /// for filters (parallel to `self.filters`).
    fn resolve(&self, schema: &TableSchema) -> Result<Vec<usize>, DbError> {
        let mut idx = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            idx.push(
                schema
                    .column_index(&f.column)
                    .ok_or_else(|| DbError::NoSuchColumn {
                        table: schema.name.clone(),
                        column: f.column.clone(),
                    })?,
            );
        }
        for o in &self.order_by {
            if o.column != "id" && schema.column_index(&o.column).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: schema.name.clone(),
                    column: o.column.clone(),
                });
            }
        }
        Ok(idx)
    }

    /// Execute against a table, returning (id, row) pairs.
    ///
    /// Access path selection is cost-based (see [`Self::explain`]): unique
    /// probes beat secondary probes beat range scans beat full scans, and
    /// every index-drivable filter's candidate set is intersected before
    /// any row is touched. Rows are filtered *borrowed*; only the final
    /// page is cloned. Results without `order_by` come back in primary-key
    /// order.
    pub fn execute(&self, table: &Table) -> Result<Vec<(i64, Row)>, DbError> {
        Ok(self
            .run(table)?
            .into_iter()
            .map(|(id, row)| (id, row.clone()))
            .collect())
    }

    /// Execute against a table, returning only `(id, <column cell>)` pairs
    /// (`"id"` projects the primary key itself). Planning, filter, ordering
    /// and pagination semantics are identical to [`Self::execute`], but no
    /// row is cloned — only the single projected cell — so hot worklist
    /// queries (e.g. the GridAMP daemon's per-tick scans) skip the full
    /// fetch/decode for rows whose bodies they don't need yet.
    pub fn project(&self, table: &Table, column: &str) -> Result<Vec<(i64, Value)>, DbError> {
        let pci = if column == "id" {
            None
        } else {
            Some(
                table
                    .schema
                    .column_index(column)
                    .ok_or_else(|| DbError::NoSuchColumn {
                        table: table.schema.name.clone(),
                        column: column.to_string(),
                    })?,
            )
        };
        Ok(self
            .run(table)?
            .into_iter()
            .map(|(id, row)| {
                (
                    id,
                    match pci {
                        Some(ci) => row[ci].clone(),
                        None => Value::Int(id),
                    },
                )
            })
            .collect())
    }

    /// Number of rows the query matches (honouring `offset`/`limit`
    /// arithmetic) without materializing, ordering, or cloning anything.
    pub fn count(&self, table: &Table) -> Result<usize, DbError> {
        let idx = self.resolve(&table.schema)?;
        let planned = self.plan_access(table, &idx);
        record_plan(&planned.plan);
        let matches = |row: &Row| {
            self.filters
                .iter()
                .zip(idx.iter())
                .all(|(f, &ci)| f.matches(&row[ci]))
        };
        let matched = match &planned.candidates {
            Some(ids) => ids
                .iter()
                .filter_map(|&id| table.get(id))
                .filter(|r| matches(r))
                .count(),
            None => table.iter().filter(|(_, r)| matches(r)).count(),
        };
        let after_offset = matched.saturating_sub(self.offset);
        Ok(match self.limit {
            Some(l) => after_offset.min(l),
            None => after_offset,
        })
    }

    /// The access path the planner would choose for this query — an
    /// `EXPLAIN`. Consults the table's live index cardinalities, so the
    /// answer can change as data changes.
    pub fn explain(&self, table: &Table) -> Result<Plan, DbError> {
        let idx = self.resolve(&table.schema)?;
        Ok(self.plan_access(table, &idx).plan)
    }

    /// Sort keys resolved against a schema; `None` column index = primary key.
    fn order_keys(&self, schema: &TableSchema) -> Vec<(Option<usize>, bool)> {
        self.order_by
            .iter()
            .map(|o| (schema.column_index(&o.column), o.descending))
            .collect()
    }

    /// Plan + filter + order + paginate, returning borrowed rows.
    fn run<'t>(&self, table: &'t Table) -> Result<Vec<(i64, &'t Row)>, DbError> {
        let idx = self.resolve(&table.schema)?;
        let planned = self.plan_access(table, &idx);
        record_plan(&planned.plan);
        let matches = |row: &Row| {
            self.filters
                .iter()
                .zip(idx.iter())
                .all(|(f, &ci)| f.matches(&row[ci]))
        };

        // Rows the caller can actually receive; `Some(0)` short-circuits.
        let wanted = self.limit.map(|l| self.offset + l);
        if wanted == Some(0) {
            return Ok(Vec::new());
        }

        if !self.order_by.is_empty() {
            // Index-ordered scan: stream groups in key order, stopping as
            // soon as the page is full instead of sorting the world.
            if let (None, Some(ci)) = (&planned.candidates, planned.index_order) {
                return Ok(self.index_ordered_scan(table, ci, wanted, &matches));
            }

            let keys = self.order_keys(&table.schema);
            let cmp = |a: &(i64, &Row), b: &(i64, &Row)| cmp_rows(&keys, a, b);
            let mut out = match &planned.candidates {
                Some(ids) => collect_filtered(
                    ids.iter().filter_map(|&id| table.get(id).map(|r| (id, r))),
                    &matches,
                ),
                None => collect_filtered(table.iter(), &matches),
            };
            if let Some(k) = wanted {
                top_k(&mut out, k, cmp);
            } else {
                out.sort_by(cmp);
            }
            return Ok(paginate(out, self.offset, self.limit));
        }

        // No ordering requested: candidates are sorted ascending and table
        // iteration is pk-ordered, so output is deterministically pk-ordered
        // and collection can stop at offset+limit rows.
        let mut out = Vec::new();
        match &planned.candidates {
            Some(ids) => {
                for &id in ids {
                    if let Some(r) = table.get(id) {
                        if matches(r) {
                            out.push((id, r));
                            if Some(out.len()) == wanted {
                                break;
                            }
                        }
                    }
                }
            }
            None => {
                for (id, r) in table.iter() {
                    if matches(r) {
                        out.push((id, r));
                        if Some(out.len()) == wanted {
                            break;
                        }
                    }
                }
            }
        }
        Ok(paginate(out, self.offset, self.limit))
    }

    /// Walk the ordered index over `ci` group by group (reversed for
    /// descending), filtering each group and breaking ties with the
    /// remaining sort keys. Only legal when `ci` is `NOT NULL` (null cells
    /// are unindexed) — the planner enforces that.
    fn index_ordered_scan<'t>(
        &self,
        table: &'t Table,
        ci: usize,
        wanted: Option<usize>,
        matches: &dyn Fn(&Row) -> bool,
    ) -> Vec<(i64, &'t Row)> {
        let index = table.ordered_index(ci).expect("planner checked index");
        let keys = self.order_keys(&table.schema);
        let descending = self.order_by[0].descending;
        let mut out: Vec<(i64, &Row)> = Vec::new();
        let groups: Box<dyn Iterator<Item = &Vec<i64>>> = if descending {
            Box::new(index.values().rev())
        } else {
            Box::new(index.values())
        };
        for ids in groups {
            let start = out.len();
            for &id in ids {
                if let Some(r) = table.get(id) {
                    if matches(r) {
                        out.push((id, r));
                    }
                }
            }
            // Within a group the leading key ties, so the full comparator
            // reduces to the remaining keys + id; group ids are already
            // ascending, which is the single-key tie-break order.
            if self.order_by.len() > 1 {
                out[start..].sort_by(|a, b| cmp_rows(&keys, a, b));
            }
            if let Some(k) = wanted {
                if out.len() >= k {
                    break;
                }
            }
        }
        paginate(out, self.offset, self.limit)
    }

    /// The cost-based access-path planner.
    ///
    /// Cost lattice (cheapest first): a unique `Eq` probe is O(1) and
    /// yields ≤ 1 row, so it always wins. Otherwise every probe-drivable
    /// filter (`Eq`/`In` over unique or secondary indexes, cost = posting
    /// size) contributes a sorted candidate set; range-drivable filters
    /// (`Lt`/`Le`/`Gt`/`Ge` over ordered indexes, cost = matching-key
    /// volume) are materialized only when no probe set is already tiny.
    /// All collected sets are intersected, so each extra indexed filter
    /// only shrinks the rows that get touched. A filter proven empty at
    /// the index (unique miss, all-`In`-probes miss, inverted range)
    /// short-circuits to [`Plan::Empty`] without touching a row.
    fn plan_access(&self, table: &Table, idx: &[usize]) -> Planned {
        // 1. Unique Eq probe: unbeatable when available.
        for (f, &ci) in self.filters.iter().zip(idx.iter()) {
            if f.op == Op::Eq && table.schema.columns[ci].unique {
                return match table.find_unique(ci, &f.value) {
                    Some(id) => Planned {
                        plan: Plan::UniqueProbe {
                            column: f.column.clone(),
                        },
                        candidates: Some(vec![id]),
                        index_order: None,
                    },
                    None => Planned::empty(),
                };
            }
        }

        // 2. Probe sets: Eq / In over indexed columns.
        let mut sets: Vec<(String, Vec<i64>)> = Vec::new();
        for (f, &ci) in self.filters.iter().zip(idx.iter()) {
            match &f.op {
                Op::Eq => {
                    if let Some(hits) = table.find_indexed(ci, &f.value) {
                        let mut ids = hits.to_vec();
                        ids.sort_unstable();
                        sets.push((f.column.clone(), ids));
                    }
                }
                // An `In` list containing NULL matches null cells, which no
                // index covers — such filters are not index-drivable.
                Op::In(vals) if !vals.iter().any(|v| v.is_null()) => {
                    if table.schema.columns[ci].unique {
                        // Satellite of the unique-miss shortcut: each member
                        // is an O(1) probe; all missing ⇒ provably empty.
                        let mut ids: Vec<i64> = vals
                            .iter()
                            .filter_map(|v| table.find_unique(ci, v))
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        sets.push((f.column.clone(), ids));
                    } else if table.has_ordered_index(ci) {
                        let mut ids: Vec<i64> = Vec::new();
                        for v in vals {
                            if let Some(hits) = table.find_indexed(ci, v) {
                                ids.extend_from_slice(hits);
                            }
                        }
                        ids.sort_unstable();
                        ids.dedup();
                        sets.push((f.column.clone(), ids));
                    }
                }
                _ => {}
            }
        }
        if sets.iter().any(|(_, s)| s.is_empty()) {
            return Planned::empty();
        }

        // 3. Range sets, unless a probe set is already selective enough
        // that walking a range would cost more than it saves.
        let min_probe = sets.iter().map(|(_, s)| s.len()).min();
        let mut range_cols: Vec<String> = Vec::new();
        if min_probe.is_none_or(|m| m > 256) {
            for (col, ci, lower, upper) in self.range_bounds(table, idx) {
                match bounds_feasible(&lower, &upper) {
                    Feasibility::Empty => return Planned::empty(),
                    Feasibility::Scan => {
                        if let Some(ids) =
                            table.range_indexed(ci, borrow_bound(&lower), borrow_bound(&upper))
                        {
                            let mut ids = ids;
                            ids.sort_unstable();
                            range_cols.push(col.clone());
                            sets.push((col, ids));
                        }
                    }
                }
            }
        }
        if sets.iter().any(|(_, s)| s.is_empty()) {
            return Planned::empty();
        }

        if !sets.is_empty() {
            // Intersect smallest-first so the working set only shrinks.
            sets.sort_by_key(|(_, s)| s.len());
            let columns: Vec<String> = sets.iter().map(|(c, _)| c.clone()).collect();
            let mut iter = sets.into_iter();
            let mut acc = iter.next().expect("nonempty").1;
            for (_, s) in iter {
                acc = intersect_sorted(&acc, &s);
                if acc.is_empty() {
                    break;
                }
            }
            let only_ranges = columns.len() == range_cols.len();
            return Planned {
                plan: if only_ranges {
                    Plan::RangeScan { columns }
                } else {
                    Plan::IndexProbe { columns }
                },
                candidates: Some(acc),
                index_order: None,
            };
        }

        // 4. Full scan; in index order if that serves the leading sort key.
        let index_order = self.order_by.first().and_then(|o| {
            let ci = table.schema.column_index(&o.column)?;
            (table.has_ordered_index(ci) && table.schema.columns[ci].not_null).then_some(ci)
        });
        Planned {
            plan: match index_order {
                Some(_) => Plan::IndexOrderedScan {
                    column: self.order_by[0].column.clone(),
                },
                None => Plan::FullScan,
            },
            candidates: None,
            index_order,
        }
    }

    /// Fold `Lt/Le/Gt/Ge` filters over ordered-indexed columns into one
    /// (lower, upper) bound pair per column, tightest bounds winning.
    fn range_bounds(
        &self,
        table: &Table,
        idx: &[usize],
    ) -> Vec<(String, usize, Bound<Value>, Bound<Value>)> {
        let mut out: Vec<(String, usize, Bound<Value>, Bound<Value>)> = Vec::new();
        for (f, &ci) in self.filters.iter().zip(idx.iter()) {
            let is_range = matches!(f.op, Op::Lt | Op::Le | Op::Gt | Op::Ge);
            if !is_range || !table.has_ordered_index(ci) {
                continue;
            }
            let entry = match out.iter_mut().find(|(_, c, _, _)| *c == ci) {
                Some(e) => e,
                None => {
                    out.push((f.column.clone(), ci, Bound::Unbounded, Bound::Unbounded));
                    out.last_mut().expect("just pushed")
                }
            };
            match f.op {
                Op::Lt => {
                    entry.3 = tighten_upper(entry.3.clone(), Bound::Excluded(f.value.clone()))
                }
                Op::Le => {
                    entry.3 = tighten_upper(entry.3.clone(), Bound::Included(f.value.clone()))
                }
                Op::Gt => {
                    entry.2 = tighten_lower(entry.2.clone(), Bound::Excluded(f.value.clone()))
                }
                Op::Ge => {
                    entry.2 = tighten_lower(entry.2.clone(), Bound::Included(f.value.clone()))
                }
                _ => unreachable!(),
            }
        }
        out
    }
}

/// A planner decision: the human-readable plan plus the machinery to run it.
struct Planned {
    plan: Plan,
    /// Sorted ascending candidate ids; `None` = scan every row.
    candidates: Option<Vec<i64>>,
    /// Drive a full scan through this column's ordered index.
    index_order: Option<usize>,
}

impl Planned {
    fn empty() -> Self {
        Planned {
            plan: Plan::Empty,
            candidates: Some(Vec::new()),
            index_order: None,
        }
    }
}

/// Count executed plans by kind in the global metrics registry (handles
/// resolved once; each execution is a single relaxed atomic increment).
fn record_plan(plan: &Plan) {
    static COUNTERS: std::sync::OnceLock<[amp_obs::Counter; 6]> = std::sync::OnceLock::new();
    let counters = COUNTERS.get_or_init(|| {
        let c =
            |kind: &str| amp_obs::counter(&amp_obs::labeled("simdb_plan_total", &[("kind", kind)]));
        [
            c("empty"),
            c("unique_probe"),
            c("index_probe"),
            c("range_scan"),
            c("index_ordered_scan"),
            c("full_scan"),
        ]
    });
    let idx = match plan {
        Plan::Empty => 0,
        Plan::UniqueProbe { .. } => 1,
        Plan::IndexProbe { .. } => 2,
        Plan::RangeScan { .. } => 3,
        Plan::IndexOrderedScan { .. } => 4,
        Plan::FullScan => 5,
    };
    counters[idx].inc();
}

/// The access path chosen by the query planner (`EXPLAIN` output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    /// Proven empty from the indexes alone; no row is touched.
    Empty,
    /// Single unique-index probe (≤ 1 candidate).
    UniqueProbe { column: String },
    /// Index probe sets (Eq/In over unique or secondary indexes, possibly
    /// combined with range sets), intersected.
    IndexProbe { columns: Vec<String> },
    /// Ordered-index range scan(s) only.
    RangeScan { columns: Vec<String> },
    /// Full scan streamed in ordered-index order to serve `ORDER BY`.
    IndexOrderedScan { column: String },
    /// Filter every row in primary-key order.
    FullScan,
}

fn cmp_rows(keys: &[(Option<usize>, bool)], a: &(i64, &Row), b: &(i64, &Row)) -> Ordering {
    let (aid, arow) = a;
    let (bid, brow) = b;
    for (ci, desc) in keys {
        let ord = match ci {
            Some(ci) => arow[*ci].total_cmp(&brow[*ci]),
            None => aid.cmp(bid),
        };
        let ord = if *desc { ord.reverse() } else { ord };
        if !ord.is_eq() {
            return ord;
        }
    }
    aid.cmp(bid)
}

fn collect_filtered<'t>(
    iter: impl Iterator<Item = (i64, &'t Row)>,
    matches: &dyn Fn(&Row) -> bool,
) -> Vec<(i64, &'t Row)> {
    iter.filter(|(_, r)| matches(r)).collect()
}

/// Keep the `k` smallest elements under `cmp` using a bounded buffer:
/// amortized O(n log k) time, O(k) extra space — the `ORDER BY … LIMIT`
/// top-k path.
fn top_k<T>(items: &mut Vec<T>, k: usize, mut cmp: impl FnMut(&T, &T) -> Ordering) {
    if items.len() <= k {
        items.sort_by(&mut cmp);
        return;
    }
    let cap = (2 * k).max(64);
    let mut buf: Vec<T> = Vec::with_capacity(cap.min(items.len()));
    for item in items.drain(..) {
        buf.push(item);
        if buf.len() >= cap {
            buf.sort_by(&mut cmp);
            buf.truncate(k);
        }
    }
    buf.sort_by(&mut cmp);
    buf.truncate(k);
    *items = buf;
}

fn paginate<T>(mut items: Vec<T>, offset: usize, limit: Option<usize>) -> Vec<T> {
    let start = offset.min(items.len());
    let end = match limit {
        Some(l) => (start + l).min(items.len()),
        None => items.len(),
    };
    items.truncate(end);
    items.drain(..start);
    items
}

fn intersect_sorted(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn tighten_lower(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.total_cmp(y) {
                Ordering::Less => b,
                Ordering::Greater => a,
                // Equal values: Excluded is the tighter lower bound.
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighten_upper(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.total_cmp(y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

enum Feasibility {
    Empty,
    Scan,
}

/// Detect contradictory bounds (`> 5 AND < 3`) before handing them to
/// `BTreeMap::range`, which panics on inverted ranges.
fn bounds_feasible(lower: &Bound<Value>, upper: &Bound<Value>) -> Feasibility {
    let (lv, l_excl) = match lower {
        Bound::Unbounded => return Feasibility::Scan,
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
    };
    let (uv, u_excl) = match upper {
        Bound::Unbounded => return Feasibility::Scan,
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
    };
    match lv.total_cmp(uv) {
        Ordering::Greater => Feasibility::Empty,
        Ordering::Equal if l_excl || u_excl => Feasibility::Empty,
        _ => Feasibility::Scan,
    }
}

fn borrow_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Column aggregates over a query's result set (Django's `aggregate()`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    pub count: usize,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl Aggregate {
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

impl Query {
    /// Aggregate a numeric column (Int/Float/Timestamp) over the matching
    /// rows. NULL cells are skipped (SQL semantics); non-numeric columns
    /// produce a column error.
    pub fn aggregate(&self, table: &Table, column: &str) -> Result<Aggregate, DbError> {
        let ci = table
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.schema.name.clone(),
                column: column.to_string(),
            })?;
        let rows = self.run(table)?;
        let mut agg = Aggregate::default();
        for (_, row) in &rows {
            let v = match &row[ci] {
                Value::Null => continue,
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                Value::Timestamp(t) => *t as f64,
                other => {
                    return Err(DbError::TypeMismatch {
                        table: table.schema.name.clone(),
                        column: column.to_string(),
                        expected: crate::value::ValueType::Float,
                        got: other.clone(),
                    })
                }
            };
            agg.count += 1;
            agg.sum += v;
            agg.min = Some(agg.min.map_or(v, |m| m.min(v)));
            agg.max = Some(agg.max.map_or(v, |m| m.max(v)));
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::ValueType;

    fn table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "star",
            vec![
                Column::new("name", ValueType::Text).not_null().unique(),
                Column::new("mass", ValueType::Float),
                Column::new("kind", ValueType::Text).indexed(),
            ],
        ))
        .unwrap();
        for (n, m, k) in [
            ("HD1", 1.0, "dwarf"),
            ("HD2", 1.5, "giant"),
            ("HD3", 0.8, "dwarf"),
            ("HD4", 2.0, "giant"),
        ] {
            t.insert(vec![n.into(), Value::Float(m), k.into()]).unwrap();
        }
        t
    }

    #[test]
    fn eq_via_unique_index() {
        let t = table();
        let rows = Query::new().eq("name", "HD3").execute(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::Float(0.8));
    }

    #[test]
    fn eq_via_unique_index_no_match() {
        let t = table();
        assert!(Query::new()
            .eq("name", "HD99")
            .execute(&t)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn eq_via_secondary_index_with_extra_filter() {
        let t = table();
        let rows = Query::new()
            .eq("kind", "dwarf")
            .filter("mass", Op::Gt, Value::Float(0.9))
            .execute(&t)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], "HD1".into());
    }

    #[test]
    fn range_scan_and_order_desc() {
        let t = table();
        let rows = Query::new()
            .filter("mass", Op::Ge, Value::Float(1.0))
            .order_by_desc("mass")
            .execute(&t)
            .unwrap();
        let names: Vec<Value> = rows.into_iter().map(|(_, r)| r[0].clone()).collect();
        assert_eq!(names, vec!["HD4".into(), "HD2".into(), "HD1".into()]);
    }

    #[test]
    fn pagination() {
        let t = table();
        let rows = Query::new()
            .order_by("mass")
            .offset(1)
            .limit(2)
            .execute(&t)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], "HD1".into());
    }

    #[test]
    fn contains_and_startswith() {
        let t = table();
        assert_eq!(
            Query::new()
                .filter("name", Op::StartsWith, "HD")
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            Query::new()
                .filter("kind", Op::Contains, "warf")
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Query::new()
                .filter("kind", Op::IContains, "DWARF")
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn in_and_null_ops() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        assert_eq!(
            Query::new()
                .filter(
                    "name",
                    Op::In(vec!["HD1".into(), "HD5".into()]),
                    Value::Null
                )
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::IsNull, Value::Null)
                .execute(&t)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::NotNull, Value::Null)
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn null_never_matches_comparisons() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        assert_eq!(
            Query::new()
                .filter("mass", Op::Lt, Value::Float(100.0))
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::Ne, Value::Float(1.0))
                .execute(&t)
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn unknown_column_is_error() {
        let t = table();
        assert!(matches!(
            Query::new().eq("nope", 1).execute(&t),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            Query::new().order_by("nope").execute(&t),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn order_by_id_explicit() {
        let t = table();
        let rows = Query::new().order_by_desc("id").execute(&t).unwrap();
        assert_eq!(rows[0].0, 4);
    }

    fn indexed_table(n: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "obs",
            vec![
                Column::new("tag", ValueType::Text).not_null().unique(),
                Column::new("site", ValueType::Text).indexed().not_null(),
                Column::new("v", ValueType::Int).indexed(),
                Column::new("plain", ValueType::Int),
            ],
        ))
        .unwrap();
        for i in 0..n {
            t.insert(vec![
                format!("t{i}").into(),
                format!("s{}", i % 4).into(),
                Value::Int(i),
                Value::Int(i % 10),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn explain_picks_unique_probe() {
        let t = indexed_table(20);
        let plan = Query::new()
            .eq("site", "s1")
            .eq("tag", "t5")
            .explain(&t)
            .unwrap();
        assert_eq!(
            plan,
            Plan::UniqueProbe {
                column: "tag".into()
            }
        );
        // unique miss is proven empty without touching rows
        let plan = Query::new().eq("tag", "zzz").explain(&t).unwrap();
        assert_eq!(plan, Plan::Empty);
    }

    #[test]
    fn explain_intersects_secondary_probes() {
        let t = indexed_table(40);
        let q = Query::new().eq("site", "s1").eq("v", 5);
        match q.explain(&t).unwrap() {
            Plan::IndexProbe { columns } => {
                assert!(columns.contains(&"site".to_string()));
                assert!(columns.contains(&"v".to_string()));
            }
            p => panic!("expected IndexProbe, got {p:?}"),
        }
        let rows = q.execute(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[2], Value::Int(5));
    }

    #[test]
    fn explain_range_scan_and_combined_bounds() {
        let t = indexed_table(100);
        let q =
            Query::new()
                .filter("v", Op::Ge, Value::Int(10))
                .filter("v", Op::Lt, Value::Int(20));
        assert_eq!(
            q.explain(&t).unwrap(),
            Plan::RangeScan {
                columns: vec!["v".into()]
            }
        );
        let rows = q.execute(&t).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|(_, r)| {
            let v = r[2].as_int().unwrap();
            (10..20).contains(&v)
        }));
        // ids come back in pk order without an explicit order_by
        let ids: Vec<i64> = rows.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn inverted_range_is_proven_empty() {
        let t = indexed_table(30);
        let q =
            Query::new()
                .filter("v", Op::Gt, Value::Int(20))
                .filter("v", Op::Lt, Value::Int(10));
        assert_eq!(q.explain(&t).unwrap(), Plan::Empty);
        assert!(q.execute(&t).unwrap().is_empty());
        assert_eq!(q.count(&t).unwrap(), 0);
    }

    #[test]
    fn in_over_unique_probes_and_miss_shortcut() {
        let t = indexed_table(20);
        let q = Query::new().filter(
            "tag",
            Op::In(vec!["t3".into(), "t7".into(), "zzz".into()]),
            Value::Null,
        );
        match q.explain(&t).unwrap() {
            Plan::IndexProbe { columns } => assert_eq!(columns, vec!["tag".to_string()]),
            p => panic!("expected IndexProbe, got {p:?}"),
        }
        assert_eq!(q.execute(&t).unwrap().len(), 2);
        // all members miss the unique index ⇒ provably empty
        let q = Query::new().filter("tag", Op::In(vec!["x".into(), "y".into()]), Value::Null);
        assert_eq!(q.explain(&t).unwrap(), Plan::Empty);
        assert!(q.execute(&t).unwrap().is_empty());
    }

    #[test]
    fn in_with_null_member_falls_back_to_scan() {
        let t = indexed_table(10);
        // NULL in the list would match unindexed null cells; the planner
        // must not drive this from the index.
        let q = Query::new().filter("v", Op::In(vec![Value::Int(3), Value::Null]), Value::Null);
        assert_eq!(q.explain(&t).unwrap(), Plan::FullScan);
        assert_eq!(q.execute(&t).unwrap().len(), 1);
    }

    #[test]
    fn in_over_secondary_unions_postings() {
        let t = indexed_table(40);
        let q = Query::new().filter("site", Op::In(vec!["s0".into(), "s2".into()]), Value::Null);
        match q.explain(&t).unwrap() {
            Plan::IndexProbe { columns } => assert_eq!(columns, vec!["site".to_string()]),
            p => panic!("expected IndexProbe, got {p:?}"),
        }
        assert_eq!(q.execute(&t).unwrap().len(), 20);
    }

    #[test]
    fn index_ordered_scan_serves_order_by_limit() {
        let t = indexed_table(50);
        let q = Query::new().order_by("site").limit(5);
        assert_eq!(
            q.explain(&t).unwrap(),
            Plan::IndexOrderedScan {
                column: "site".into()
            }
        );
        let rows = q.execute(&t).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, r)| r[1] == "s0".into()));
        // descending + tie-break by id ascending within equal keys
        let rows = Query::new()
            .order_by_desc("site")
            .limit(3)
            .execute(&t)
            .unwrap();
        assert!(rows.iter().all(|(_, r)| r[1] == "s3".into()));
        let ids: Vec<i64> = rows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![4, 8, 12]);
        // nullable indexed column must NOT be index-order-driven
        let plan = Query::new().order_by("v").explain(&t).unwrap();
        assert_eq!(plan, Plan::FullScan);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let t = indexed_table(200);
        let full = Query::new()
            .order_by_desc("plain")
            .order_by("v")
            .execute(&t)
            .unwrap();
        for (offset, limit) in [(0, 7), (5, 10), (190, 50), (0, 0)] {
            let paged = Query::new()
                .order_by_desc("plain")
                .order_by("v")
                .offset(offset)
                .limit(limit)
                .execute(&t)
                .unwrap();
            let end = (offset + limit).min(full.len());
            let start = offset.min(full.len());
            assert_eq!(
                paged,
                full[start..end].to_vec(),
                "offset={offset} limit={limit}"
            );
        }
    }

    #[test]
    fn count_matches_execute_len() {
        let t = indexed_table(60);
        let queries = [
            Query::new(),
            Query::new().eq("site", "s2"),
            Query::new().filter("v", Op::Ge, Value::Int(30)),
            Query::new().eq("site", "s1").offset(3).limit(4),
            Query::new().eq("tag", "t9"),
            Query::new().offset(100),
        ];
        for q in queries {
            assert_eq!(
                q.count(&t).unwrap(),
                q.execute(&t).unwrap().len(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn aggregates() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        let a = Query::new().aggregate(&t, "mass").unwrap();
        assert_eq!(a.count, 4, "NULL skipped");
        assert!((a.sum - 5.3).abs() < 1e-9);
        assert_eq!(a.min, Some(0.8));
        assert_eq!(a.max, Some(2.0));
        assert!((a.mean().unwrap() - 1.325).abs() < 1e-9);
        // filtered aggregate
        let a = Query::new()
            .eq("kind", "giant")
            .aggregate(&t, "mass")
            .unwrap();
        assert_eq!(a.count, 2);
        assert!((a.sum - 3.5).abs() < 1e-9);
        // empty set
        let a = Query::new()
            .eq("kind", "nova")
            .aggregate(&t, "mass")
            .unwrap();
        assert_eq!(a.count, 0);
        assert_eq!(a.mean(), None);
        assert_eq!(a.min, None);
        // text column rejected
        assert!(Query::new().aggregate(&t, "name").is_err());
        assert!(Query::new().aggregate(&t, "nope").is_err());
    }
}
