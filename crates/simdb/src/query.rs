//! Query descriptions: filters, ordering, pagination.
//!
//! The equivalent of Django's queryset surface that AMP's views and the
//! GridAMP daemon used (`filter`, `exclude`-style negation via `Ne`,
//! `order_by`, slicing).

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::table::{Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Comparison operators available in filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Case-sensitive substring match (Text columns).
    Contains,
    /// Case-insensitive substring match.
    IContains,
    /// Prefix match (Text columns).
    StartsWith,
    /// Membership in a value list.
    In(Vec<Value>),
    IsNull,
    NotNull,
}

/// A single column predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    pub column: String,
    pub op: Op,
    pub value: Value,
}

impl Filter {
    pub fn new(column: &str, op: Op, value: impl Into<Value>) -> Self {
        Filter {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Self::new(column, Op::Eq, value)
    }

    fn matches(&self, cell: &Value) -> bool {
        match &self.op {
            Op::IsNull => cell.is_null(),
            Op::NotNull => !cell.is_null(),
            Op::In(vals) => vals.iter().any(|v| v.key_eq(cell)),
            op => {
                if cell.is_null() {
                    // SQL semantics: NULL matches no ordinary comparison.
                    return false;
                }
                match op {
                    Op::Eq => cell.key_eq(&self.value),
                    Op::Ne => !cell.key_eq(&self.value),
                    Op::Lt => cell.total_cmp(&self.value).is_lt(),
                    Op::Le => cell.total_cmp(&self.value).is_le(),
                    Op::Gt => cell.total_cmp(&self.value).is_gt(),
                    Op::Ge => cell.total_cmp(&self.value).is_ge(),
                    Op::Contains => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => c.contains(n.as_str()),
                        _ => false,
                    },
                    Op::IContains => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => {
                            c.to_lowercase().contains(&n.to_lowercase())
                        }
                        _ => false,
                    },
                    Op::StartsWith => match (cell, &self.value) {
                        (Value::Text(c), Value::Text(n)) => c.starts_with(n.as_str()),
                        _ => false,
                    },
                    Op::In(_) | Op::IsNull | Op::NotNull => unreachable!(),
                }
            }
        }
    }
}

/// Sort key: column name + direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    pub column: String,
    pub descending: bool,
}

/// A complete query over one table. Filters are conjunctive (AND).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub filters: Vec<Filter>,
    pub order_by: Vec<OrderBy>,
    pub limit: Option<usize>,
    pub offset: usize,
}

impl Query {
    pub fn new() -> Self {
        Query::default()
    }

    pub fn filter(mut self, column: &str, op: Op, value: impl Into<Value>) -> Self {
        self.filters.push(Filter::new(column, op, value));
        self
    }

    pub fn eq(self, column: &str, value: impl Into<Value>) -> Self {
        self.filter(column, Op::Eq, value)
    }

    pub fn order_by(mut self, column: &str) -> Self {
        self.order_by.push(OrderBy {
            column: column.to_string(),
            descending: false,
        });
        self
    }

    pub fn order_by_desc(mut self, column: &str) -> Self {
        self.order_by.push(OrderBy {
            column: column.to_string(),
            descending: true,
        });
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    pub fn offset(mut self, n: usize) -> Self {
        self.offset = n;
        self
    }

    /// Check every referenced column exists; returns resolved column indexes
    /// for filters (parallel to `self.filters`).
    fn resolve(&self, schema: &TableSchema) -> Result<Vec<usize>, DbError> {
        let mut idx = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            idx.push(schema.column_index(&f.column).ok_or_else(|| {
                DbError::NoSuchColumn {
                    table: schema.name.clone(),
                    column: f.column.clone(),
                }
            })?);
        }
        for o in &self.order_by {
            if o.column != "id" && schema.column_index(&o.column).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: schema.name.clone(),
                    column: o.column.clone(),
                });
            }
        }
        Ok(idx)
    }

    /// Execute against a table, returning (id, row) pairs.
    ///
    /// Uses a unique or secondary index when the first resolvable `Eq`
    /// filter is over an indexed column; otherwise scans in pk order.
    pub fn execute(&self, table: &Table) -> Result<Vec<(i64, Row)>, DbError> {
        let idx = self.resolve(&table.schema)?;

        // Candidate selection: try to drive from an index.
        let mut candidates: Option<Vec<i64>> = None;
        for (f, &ci) in self.filters.iter().zip(idx.iter()) {
            if let Op::Eq = f.op {
                if let Some(id) = table.find_unique(ci, &f.value) {
                    candidates = Some(vec![id]);
                    break;
                }
                if table.schema.columns[ci].unique {
                    // Unique index exists but has no entry: no matches.
                    candidates = Some(Vec::new());
                    break;
                }
                if let Some(hits) = table.find_indexed(ci, &f.value) {
                    candidates = Some(hits);
                    break;
                }
            }
        }

        let mut out: Vec<(i64, Row)> = match candidates {
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| table.get(id).map(|r| (id, r.clone())))
                .collect(),
            None => table.iter().map(|(id, r)| (id, r.clone())).collect(),
        };

        // Apply all filters (index pre-selection is a superset).
        out.retain(|(_, row)| {
            self.filters
                .iter()
                .zip(idx.iter())
                .all(|(f, &ci)| f.matches(&row[ci]))
        });

        // Ordering. "id" orders by primary key.
        if !self.order_by.is_empty() {
            let schema = &table.schema;
            let keys: Vec<(Option<usize>, bool)> = self
                .order_by
                .iter()
                .map(|o| (schema.column_index(&o.column), o.descending))
                .collect();
            out.sort_by(|(aid, arow), (bid, brow)| {
                for (ci, desc) in &keys {
                    let ord = match ci {
                        Some(ci) => arow[*ci].total_cmp(&brow[*ci]),
                        None => aid.cmp(bid),
                    };
                    let ord = if *desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                aid.cmp(bid)
            });
        }

        // Pagination.
        let start = self.offset.min(out.len());
        let end = match self.limit {
            Some(l) => (start + l).min(out.len()),
            None => out.len(),
        };
        Ok(out[start..end].to_vec())
    }

    /// Execute against a table, returning only `(id, <column cell>)` pairs
    /// (`"id"` projects the primary key itself). Index selection, filter,
    /// ordering and pagination semantics are identical to [`Self::execute`],
    /// but no row is cloned — only the single projected cell — so hot
    /// worklist queries (e.g. the GridAMP daemon's per-tick scans) skip
    /// the full fetch/decode for rows whose bodies they don't need yet.
    pub fn project(&self, table: &Table, column: &str) -> Result<Vec<(i64, Value)>, DbError> {
        let idx = self.resolve(&table.schema)?;
        let pci = if column == "id" {
            None
        } else {
            Some(table.schema.column_index(column).ok_or_else(|| {
                DbError::NoSuchColumn {
                    table: table.schema.name.clone(),
                    column: column.to_string(),
                }
            })?)
        };

        // Candidate selection, as in `execute`.
        let mut candidates: Option<Vec<i64>> = None;
        for (f, &ci) in self.filters.iter().zip(idx.iter()) {
            if let Op::Eq = f.op {
                if let Some(id) = table.find_unique(ci, &f.value) {
                    candidates = Some(vec![id]);
                    break;
                }
                if table.schema.columns[ci].unique {
                    candidates = Some(Vec::new());
                    break;
                }
                if let Some(hits) = table.find_indexed(ci, &f.value) {
                    candidates = Some(hits);
                    break;
                }
            }
        }

        let mut out: Vec<(i64, &Row)> = match candidates {
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| table.get(id).map(|r| (id, r)))
                .collect(),
            None => table.iter().collect(),
        };

        out.retain(|(_, row)| {
            self.filters
                .iter()
                .zip(idx.iter())
                .all(|(f, &ci)| f.matches(&row[ci]))
        });

        if !self.order_by.is_empty() {
            let schema = &table.schema;
            let keys: Vec<(Option<usize>, bool)> = self
                .order_by
                .iter()
                .map(|o| (schema.column_index(&o.column), o.descending))
                .collect();
            out.sort_by(|(aid, arow), (bid, brow)| {
                for (ci, desc) in &keys {
                    let ord = match ci {
                        Some(ci) => arow[*ci].total_cmp(&brow[*ci]),
                        None => aid.cmp(bid),
                    };
                    let ord = if *desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                aid.cmp(bid)
            });
        }

        let start = self.offset.min(out.len());
        let end = match self.limit {
            Some(l) => (start + l).min(out.len()),
            None => out.len(),
        };
        Ok(out[start..end]
            .iter()
            .map(|(id, row)| {
                (
                    *id,
                    match pci {
                        Some(ci) => row[ci].clone(),
                        None => Value::Int(*id),
                    },
                )
            })
            .collect())
    }
}

/// Column aggregates over a query's result set (Django's `aggregate()`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    pub count: usize,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl Aggregate {
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

impl Query {
    /// Aggregate a numeric column (Int/Float/Timestamp) over the matching
    /// rows. NULL cells are skipped (SQL semantics); non-numeric columns
    /// produce a column error.
    pub fn aggregate(&self, table: &Table, column: &str) -> Result<Aggregate, DbError> {
        let ci = table
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.schema.name.clone(),
                column: column.to_string(),
            })?;
        let rows = self.execute(table)?;
        let mut agg = Aggregate::default();
        for (_, row) in &rows {
            let v = match &row[ci] {
                Value::Null => continue,
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                Value::Timestamp(t) => *t as f64,
                other => {
                    return Err(DbError::TypeMismatch {
                        table: table.schema.name.clone(),
                        column: column.to_string(),
                        expected: crate::value::ValueType::Float,
                        got: other.clone(),
                    })
                }
            };
            agg.count += 1;
            agg.sum += v;
            agg.min = Some(agg.min.map_or(v, |m| m.min(v)));
            agg.max = Some(agg.max.map_or(v, |m| m.max(v)));
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::ValueType;

    fn table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "star",
            vec![
                Column::new("name", ValueType::Text).not_null().unique(),
                Column::new("mass", ValueType::Float),
                Column::new("kind", ValueType::Text).indexed(),
            ],
        ))
        .unwrap();
        for (n, m, k) in [
            ("HD1", 1.0, "dwarf"),
            ("HD2", 1.5, "giant"),
            ("HD3", 0.8, "dwarf"),
            ("HD4", 2.0, "giant"),
        ] {
            t.insert(vec![n.into(), Value::Float(m), k.into()]).unwrap();
        }
        t
    }

    #[test]
    fn eq_via_unique_index() {
        let t = table();
        let rows = Query::new().eq("name", "HD3").execute(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::Float(0.8));
    }

    #[test]
    fn eq_via_unique_index_no_match() {
        let t = table();
        assert!(Query::new().eq("name", "HD99").execute(&t).unwrap().is_empty());
    }

    #[test]
    fn eq_via_secondary_index_with_extra_filter() {
        let t = table();
        let rows = Query::new()
            .eq("kind", "dwarf")
            .filter("mass", Op::Gt, Value::Float(0.9))
            .execute(&t)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], "HD1".into());
    }

    #[test]
    fn range_scan_and_order_desc() {
        let t = table();
        let rows = Query::new()
            .filter("mass", Op::Ge, Value::Float(1.0))
            .order_by_desc("mass")
            .execute(&t)
            .unwrap();
        let names: Vec<Value> = rows.into_iter().map(|(_, r)| r[0].clone()).collect();
        assert_eq!(names, vec!["HD4".into(), "HD2".into(), "HD1".into()]);
    }

    #[test]
    fn pagination() {
        let t = table();
        let rows = Query::new()
            .order_by("mass")
            .offset(1)
            .limit(2)
            .execute(&t)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], "HD1".into());
    }

    #[test]
    fn contains_and_startswith() {
        let t = table();
        assert_eq!(
            Query::new()
                .filter("name", Op::StartsWith, "HD")
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            Query::new()
                .filter("kind", Op::Contains, "warf")
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Query::new()
                .filter("kind", Op::IContains, "DWARF")
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn in_and_null_ops() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        assert_eq!(
            Query::new()
                .filter("name", Op::In(vec!["HD1".into(), "HD5".into()]), Value::Null)
                .execute(&t)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::IsNull, Value::Null)
                .execute(&t)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::NotNull, Value::Null)
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn null_never_matches_comparisons() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        assert_eq!(
            Query::new()
                .filter("mass", Op::Lt, Value::Float(100.0))
                .execute(&t)
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            Query::new()
                .filter("mass", Op::Ne, Value::Float(1.0))
                .execute(&t)
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn unknown_column_is_error() {
        let t = table();
        assert!(matches!(
            Query::new().eq("nope", 1).execute(&t),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            Query::new().order_by("nope").execute(&t),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn order_by_id_explicit() {
        let t = table();
        let rows = Query::new().order_by_desc("id").execute(&t).unwrap();
        assert_eq!(rows[0].0, 4);
    }

    #[test]
    fn aggregates() {
        let mut t = table();
        t.insert(vec!["HD5".into(), Value::Null, "dwarf".into()])
            .unwrap();
        let a = Query::new().aggregate(&t, "mass").unwrap();
        assert_eq!(a.count, 4, "NULL skipped");
        assert!((a.sum - 5.3).abs() < 1e-9);
        assert_eq!(a.min, Some(0.8));
        assert_eq!(a.max, Some(2.0));
        assert!((a.mean().unwrap() - 1.325).abs() < 1e-9);
        // filtered aggregate
        let a = Query::new()
            .eq("kind", "giant")
            .aggregate(&t, "mass")
            .unwrap();
        assert_eq!(a.count, 2);
        assert!((a.sum - 3.5).abs() < 1e-9);
        // empty set
        let a = Query::new().eq("kind", "nova").aggregate(&t, "mass").unwrap();
        assert_eq!(a.count, 0);
        assert_eq!(a.mean(), None);
        assert_eq!(a.min, None);
        // text column rejected
        assert!(Query::new().aggregate(&t, "name").is_err());
        assert!(Query::new().aggregate(&t, "nope").is_err());
    }
}
