//! Database error taxonomy.

use crate::value::{Value, ValueType};
use std::fmt;

/// Everything that can go wrong inside the database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Schema definition problem (duplicate column, reserved name, ...).
    Schema(String),
    /// No such table.
    NoSuchTable(String),
    /// No such column in the table.
    NoSuchColumn { table: String, column: String },
    /// No row with the given primary key.
    NoSuchRow { table: String, id: i64 },
    /// Value type does not match the declared column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: ValueType,
        got: Value,
    },
    /// NULL stored into a NOT NULL column.
    NotNullViolation { table: String, column: String },
    /// Text exceeds the column's max_length.
    LengthViolation {
        table: String,
        column: String,
        max: usize,
        got: usize,
    },
    /// Duplicate value in a UNIQUE column.
    UniqueViolation {
        table: String,
        column: String,
        value: Value,
    },
    /// FK references a missing row, or delete is restricted by references.
    ForeignKeyViolation { table: String, detail: String },
    /// The connection's role lacks the required table permission.
    PermissionDenied {
        role: String,
        table: String,
        action: &'static str,
    },
    /// Persistence (WAL/snapshot) failure.
    Io(String),
    /// WAL/snapshot contents could not be decoded.
    Corrupt(String),
    /// Transaction was rolled back by the caller or by a failed operation.
    TxnAborted(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            DbError::NoSuchRow { table, id } => write!(f, "no row {table}[{id}]"),
            DbError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on {table}.{column}: expected {expected}, got {got:?}"
            ),
            DbError::NotNullViolation { table, column } => {
                write!(f, "NOT NULL violation on {table}.{column}")
            }
            DbError::LengthViolation {
                table,
                column,
                max,
                got,
            } => write!(f, "length violation on {table}.{column}: {got} > max {max}"),
            DbError::UniqueViolation {
                table,
                column,
                value,
            } => write!(f, "unique violation on {table}.{column} = {value}"),
            DbError::ForeignKeyViolation { table, detail } => {
                write!(f, "foreign key violation on {table}: {detail}")
            }
            DbError::PermissionDenied {
                role,
                table,
                action,
            } => write!(
                f,
                "permission denied: role {role} may not {action} on {table}"
            ),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Corrupt(m) => write!(f, "corrupt persistence data: {m}"),
            DbError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}
