//! # amp-simdb — the AMP gateway's central database
//!
//! An embedded, typed, relational database with a Django-style ORM, built as
//! the substrate for the AMP science gateway reproduction (Woitaszek et al.,
//! GCE 2009). In the paper, *all* communication between the public web
//! portal and the GridAMP workflow daemon happens asynchronously through a
//! central SQL database with strict type constraints and per-role table
//! permissions — that database is this crate.
//!
//! Layering:
//!
//! * [`value`] / [`schema`] — typed cells, columns, constraints, FKs;
//! * [`table`] — row storage with unique and secondary indexes;
//! * [`query`] — Django-queryset-flavoured filters/ordering/slicing;
//! * [`db`] — the engine: referential integrity, mutation log;
//! * [`perm`] — role-based table grants (`web`, `daemon`, `admin`);
//! * [`wal`] — durability: JSON-lines WAL + snapshots + recovery;
//! * [`orm`] — model trait, managers, migrations (the Django ORM analogue);
//! * [`admin`] — schema/row introspection for the admin interface.
//!
//! Entry point: build a [`Db`], define roles, [`Db::connect`] per component.
//!
//! ```
//! use amp_simdb::prelude::*;
//!
//! let db = Db::in_memory();
//! db.define_role(Role::superuser("admin"));
//! db.define_role(Role::new("web").grant("star", PermSet::READ_ONLY));
//!
//! let admin = db.connect("admin").unwrap();
//! admin.create_table(TableSchema::new(
//!     "star",
//!     vec![Column::new("name", ValueType::Text).not_null().unique()],
//! )).unwrap();
//! admin.insert("star", &[("name", "HD 52265".into())]).unwrap();
//!
//! let web = db.connect("web").unwrap();
//! assert_eq!(web.count("star", &Query::new()).unwrap(), 1);
//! assert!(web.delete("star", 1).is_err()); // read-only role
//! ```

pub mod admin;
pub mod db;
pub mod error;
pub(crate) mod obs;
pub mod orm;
pub mod perm;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;
pub mod wal;

pub use crate::db::{Database, LogOp};
pub use crate::error::DbError;
pub use crate::perm::{Action, PermSet, Role};
pub use crate::query::{Filter, Op, OrderBy, Plan, Query};
pub use crate::schema::{Column, ForeignKey, OnDelete, TableSchema};
pub use crate::table::Row;
pub use crate::value::{Value, ValueType};

/// Everything a typical consumer needs.
pub mod prelude {
    pub use crate::db::LogOp;
    pub use crate::error::DbError;
    pub use crate::orm::{Manager, Model, Registry};
    pub use crate::perm::{Action, PermSet, Role};
    pub use crate::query::{Filter, Op, Query};
    pub use crate::schema::{Column, OnDelete, TableSchema};
    pub use crate::table::Row;
    pub use crate::value::{Value, ValueType};
    pub use crate::{Connection, Db};
}

use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Shared state behind a [`Db`] handle.
struct DbShared {
    database: RwLock<Database>,
    roles: RwLock<HashMap<String, Role>>,
    wal: Option<wal::Wal>,
    snapshot_path: Option<PathBuf>,
}

/// A thread-safe database handle. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Db {
    shared: Arc<DbShared>,
}

impl Db {
    /// A purely in-memory database (no WAL, no snapshots).
    pub fn in_memory() -> Self {
        Db {
            shared: Arc::new(DbShared {
                database: RwLock::new(Database::new()),
                roles: RwLock::new(HashMap::new()),
                wal: None,
                snapshot_path: None,
            }),
        }
    }

    /// Open a durable database: recover from `snapshot` + `wal` if they
    /// exist, and append future mutations to `wal`.
    pub fn open(
        snapshot: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
    ) -> Result<Self, DbError> {
        let snapshot = snapshot.into();
        let wal_path = wal_path.into();
        let database = wal::recover(Some(&snapshot), Some(&wal_path))?;
        let wal = wal::Wal::open(&wal_path)?;
        Ok(Db {
            shared: Arc::new(DbShared {
                database: RwLock::new(database),
                roles: RwLock::new(HashMap::new()),
                wal: Some(wal),
                snapshot_path: Some(snapshot),
            }),
        })
    }

    /// Register (or replace) a role.
    pub fn define_role(&self, role: Role) {
        self.shared.roles.write().insert(role.name.clone(), role);
    }

    /// Open a connection acting as `role`.
    pub fn connect(&self, role: &str) -> Result<Connection, DbError> {
        let roles = self.shared.roles.read();
        let role = roles
            .get(role)
            .cloned()
            .ok_or_else(|| DbError::Schema(format!("role {role} is not defined")))?;
        Ok(Connection {
            db: self.clone(),
            role,
        })
    }

    /// Compact durability state: write a snapshot covering the entire WAL,
    /// then truncate the WAL. Recovery afterwards reads the snapshot plus
    /// whatever has been appended since — keeping restart time bounded on
    /// long-lived gateways.
    pub fn compact(&self) -> Result<(), DbError> {
        let path = self
            .shared
            .snapshot_path
            .clone()
            .ok_or_else(|| DbError::Io("no snapshot path configured".into()))?;
        let wal = self
            .shared
            .wal
            .as_ref()
            .ok_or_else(|| DbError::Io("no WAL configured".into()))?;
        // Exclusive lock: no writer can append between snapshot and truncate.
        let guard = self.shared.database.write();
        // The WAL tracks its own tail, so checkpointing never re-reads the
        // log. Sequence numbers assigned but not yet flushed belong to ops
        // already applied to the engine, so the snapshot covers them too.
        let covered = wal.last_seq();
        wal::Snapshot::save(&guard, covered, &path)?;
        wal.truncate()
    }

    /// Write a snapshot covering the current WAL position.
    pub fn snapshot(&self) -> Result<(), DbError> {
        let path = self
            .shared
            .snapshot_path
            .clone()
            .ok_or_else(|| DbError::Io("no snapshot path configured".into()))?;
        let guard = self.shared.database.read();
        // The covered seq is "everything so far"; since we hold the read
        // lock no writer can interleave, and appended ops always follow.
        // `last_seq` is tracked in memory — no WAL re-read.
        let covered = self.shared.wal.as_ref().and_then(|w| w.last_seq());
        wal::Snapshot::save(&guard, covered, &path)
    }

    /// Run a closure with shared read access to the raw engine
    /// (introspection; bypasses permissions — used by the admin interface
    /// and tests).
    pub fn with_database<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.shared.database.read())
    }

    /// Current modification counter for `table` (see
    /// [`Database::table_version`]). Monotone; bumped atomically with every
    /// committed mutation of the table.
    pub fn table_version(&self, table: &str) -> u64 {
        self.shared.database.read().table_version(table)
    }

    /// Read several tables' modification counters under a single lock
    /// acquisition (one consistent point in time for the whole stamp).
    pub fn table_versions(&self, tables: &[&str]) -> Vec<u64> {
        let guard = self.shared.database.read();
        tables.iter().map(|t| guard.table_version(t)).collect()
    }

    fn append_wal(&self, ops: &[LogOp]) -> Result<(), DbError> {
        if let Some(w) = &self.shared.wal {
            w.append(ops)?;
        }
        Ok(())
    }
}

/// A role-scoped connection. All operations are permission-checked against
/// the connection's role and (when the [`Db`] is durable) WAL-logged.
#[derive(Clone)]
pub struct Connection {
    db: Db,
    role: Role,
}

impl Connection {
    pub fn role_name(&self) -> &str {
        &self.role.name
    }

    pub(crate) fn db_handle(&self) -> &Db {
        &self.db
    }

    /// DDL: create a table (superuser only, mirroring AMP where only the
    /// migration/admin path may alter schema).
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        if !self.role.superuser {
            return Err(DbError::PermissionDenied {
                role: self.role.name.clone(),
                table: schema.name.clone(),
                action: "CREATE TABLE",
            });
        }
        let op = self.db.shared.database.write().create_table(schema)?;
        self.db.append_wal(&[op])
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.db.shared.database.read().has_table(name)
    }

    pub fn insert(&self, table: &str, values: &[(&str, Value)]) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = {
            let mut guard = self.db.shared.database.write();
            let _hold = obs::HoldTimer::start();
            guard.insert(table, values)?
        };
        self.db.append_wal(&[op])?;
        Ok(id)
    }

    pub fn insert_row(&self, table: &str, row: Row) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = {
            let mut guard = self.db.shared.database.write();
            let _hold = obs::HoldTimer::start();
            guard.insert_row(table, row)?
        };
        self.db.append_wal(&[op])?;
        Ok(id)
    }

    pub fn update(&self, table: &str, id: i64, values: &[(&str, Value)]) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = {
            let mut guard = self.db.shared.database.write();
            let _hold = obs::HoldTimer::start();
            guard.update(table, id, values)?
        };
        self.db.append_wal(&[op])
    }

    pub fn update_row(&self, table: &str, id: i64, row: Row) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = {
            let mut guard = self.db.shared.database.write();
            let _hold = obs::HoldTimer::start();
            guard.update_row(table, id, row)?
        };
        self.db.append_wal(&[op])
    }

    /// Delete a row. Referential actions (cascades, SET NULL) execute with
    /// definer rights, as in SQL — only the named table needs the grant.
    pub fn delete(&self, table: &str, id: i64) -> Result<(), DbError> {
        self.role.check(table, Action::Delete)?;
        let ops = {
            let mut guard = self.db.shared.database.write();
            let _hold = obs::HoldTimer::start();
            guard.delete(table, id)?
        };
        self.db.append_wal(&ops)
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        self.role.check(table, Action::Select)?;
        self.db.shared.database.read().select(table, query)
    }

    /// Single-column projection of a query (see [`Query::project`]).
    pub fn select_project(
        &self,
        table: &str,
        query: &Query,
        column: &str,
    ) -> Result<Vec<(i64, Value)>, DbError> {
        self.role.check(table, Action::Select)?;
        self.db
            .shared
            .database
            .read()
            .select_project(table, query, column)
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.role.check(table, Action::Select)?;
        self.db.shared.database.read().get(table, id)
    }

    pub fn count(&self, table: &str, query: &Query) -> Result<usize, DbError> {
        self.role.check(table, Action::Select)?;
        self.db.shared.database.read().count(table, query)
    }

    /// Modification counter for `table` — cache-invalidation metadata, not
    /// row data, so no table grant is required.
    pub fn table_version(&self, table: &str) -> u64 {
        self.db.table_version(table)
    }

    /// Several tables' counters read under one lock acquisition.
    pub fn table_versions(&self, tables: &[&str]) -> Vec<u64> {
        self.db.table_versions(tables)
    }

    /// Run several mutations atomically: either every operation commits (and
    /// is WAL-logged as one batch) or none do. The write lock is held for
    /// the whole transaction, so readers see no intermediate state.
    pub fn transaction<T>(
        &self,
        f: impl FnOnce(&mut Txn<'_>) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let mut guard = self.db.shared.database.write();
        let _hold = obs::HoldTimer::start();
        let backup = guard.clone();
        let mut txn = Txn {
            db: &mut guard,
            role: &self.role,
            ops: Vec::new(),
        };
        match f(&mut txn) {
            Ok(v) => {
                let ops = txn.ops;
                match self.db.append_wal(&ops) {
                    Ok(()) => Ok(v),
                    Err(e) => {
                        *guard = backup;
                        Err(e)
                    }
                }
            }
            Err(e) => {
                *guard = backup;
                Err(e)
            }
        }
    }
}

/// In-flight transaction handle. Mutations apply immediately to the engine
/// (under the exclusive lock) and are rolled back wholesale on error.
pub struct Txn<'a> {
    db: &'a mut Database,
    role: &'a Role,
    ops: Vec<LogOp>,
}

impl Txn<'_> {
    pub fn insert(&mut self, table: &str, values: &[(&str, Value)]) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = self.db.insert(table, values)?;
        self.ops.push(op);
        Ok(id)
    }

    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = self.db.insert_row(table, row)?;
        self.ops.push(op);
        Ok(id)
    }

    pub fn update(
        &mut self,
        table: &str,
        id: i64,
        values: &[(&str, Value)],
    ) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = self.db.update(table, id, values)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn update_row(&mut self, table: &str, id: i64, row: Row) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = self.db.update_row(table, id, row)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn delete(&mut self, table: &str, id: i64) -> Result<(), DbError> {
        self.role.check(table, Action::Delete)?;
        let ops = self.db.delete(table, id)?;
        self.ops.extend(ops);
        Ok(())
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        self.role.check(table, Action::Select)?;
        self.db.select(table, query)
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.role.check(table, Action::Select)?;
        self.db.get(table, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Db {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(
            Role::new("web")
                .grant("star", PermSet::READ_ONLY)
                .grant("request", PermSet::ALL),
        );
        let admin = db.connect("admin").unwrap();
        admin
            .create_table(TableSchema::new(
                "star",
                vec![Column::new("name", ValueType::Text).not_null().unique()],
            ))
            .unwrap();
        admin
            .create_table(TableSchema::new(
                "request",
                vec![Column::new("body", ValueType::Text)],
            ))
            .unwrap();
        db
    }

    #[test]
    fn role_enforcement_end_to_end() {
        let db = setup();
        let web = db.connect("web").unwrap();
        assert!(web.insert("star", &[("name", "HD1".into())]).is_err());
        assert!(web.insert("request", &[("body", "hi".into())]).is_ok());
        assert!(web.select("star", &Query::new()).is_ok());
        let admin = db.connect("admin").unwrap();
        admin.insert("star", &[("name", "HD1".into())]).unwrap();
        assert!(web.delete("star", 1).is_err());
    }

    #[test]
    fn unknown_role_rejected() {
        let db = setup();
        assert!(db.connect("nobody").is_err());
    }

    #[test]
    fn ddl_requires_superuser() {
        let db = setup();
        let web = db.connect("web").unwrap();
        assert!(web.create_table(TableSchema::new("x", vec![])).is_err());
    }

    #[test]
    fn transaction_commits_atomically() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let out = admin
            .transaction(|tx| {
                tx.insert("star", &[("name", "A".into())])?;
                tx.insert("star", &[("name", "B".into())])?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(admin.count("star", &Query::new()).unwrap(), 2);
    }

    #[test]
    fn transaction_rolls_back_on_error() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        admin.insert("star", &[("name", "A".into())]).unwrap();
        let res: Result<(), DbError> = admin.transaction(|tx| {
            tx.insert("star", &[("name", "B".into())])?;
            tx.insert("star", &[("name", "A".into())])?; // unique violation
            Ok(())
        });
        assert!(res.is_err());
        assert_eq!(admin.count("star", &Query::new()).unwrap(), 1);
    }

    #[test]
    fn transaction_respects_permissions() {
        let db = setup();
        let web = db.connect("web").unwrap();
        let res: Result<(), DbError> = web.transaction(|tx| {
            tx.insert("request", &[("body", "x".into())])?;
            tx.insert("star", &[("name", "HD".into())])?; // denied
            Ok(())
        });
        assert!(matches!(res, Err(DbError::PermissionDenied { .. })));
        assert_eq!(web.count("request", &Query::new()).unwrap(), 0);
    }

    #[test]
    fn durable_db_recovers() {
        let dir = std::env::temp_dir().join(format!("simdb_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.snap");
        let walp = dir.join("db.wal");
        {
            let db = Db::open(&snap, &walp).unwrap();
            db.define_role(Role::superuser("admin"));
            let c = db.connect("admin").unwrap();
            c.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap();
            c.insert("t", &[("v", Value::Int(1))]).unwrap();
            db.snapshot().unwrap();
            c.insert("t", &[("v", Value::Int(2))]).unwrap();
        }
        let db = Db::open(&snap, &walp).unwrap();
        db.define_role(Role::superuser("admin"));
        let c = db.connect("admin").unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 2);
        // continue writing after recovery
        c.insert("t", &[("v", Value::Int(3))]).unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 3);
    }

    #[test]
    fn compaction_preserves_state_and_bounds_wal() {
        let dir = std::env::temp_dir().join(format!("simdb_compact_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.snap");
        let walp = dir.join("db.wal");
        {
            let db = Db::open(&snap, &walp).unwrap();
            db.define_role(Role::superuser("admin"));
            let c = db.connect("admin").unwrap();
            c.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap();
            for i in 0..50 {
                c.insert("t", &[("v", Value::Int(i))]).unwrap();
            }
            let before = std::fs::metadata(&walp).unwrap().len();
            db.compact().unwrap();
            let after = std::fs::metadata(&walp).unwrap().len();
            assert!(before > 1000);
            assert_eq!(after, 0, "WAL truncated");
            // writes continue after compaction
            c.insert("t", &[("v", Value::Int(999))]).unwrap();
        }
        let db = Db::open(&snap, &walp).unwrap();
        db.define_role(Role::superuser("admin"));
        let c = db.connect("admin").unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 51);
        // post-compaction record replayed on top of the snapshot
        assert_eq!(
            c.count("t", &Query::new().eq("v", Value::Int(999)))
                .unwrap(),
            1
        );
        // compaction without persistence configured is an error
        assert!(Db::in_memory().compact().is_err());
    }

    #[test]
    fn table_versions_track_mutations_precisely() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let web = db.connect("web").unwrap();
        // table creation counts as version 1
        assert_eq!(db.table_version("star"), 1);
        assert_eq!(db.table_version("nope"), 0);

        let v0 = web.table_version("star");
        let id = admin.insert("star", &[("name", "HD1".into())]).unwrap();
        assert_eq!(web.table_version("star"), v0 + 1);
        admin.update("star", id, &[("name", "HD2".into())]).unwrap();
        assert_eq!(web.table_version("star"), v0 + 2);
        // an unrelated table is untouched
        assert_eq!(web.table_version("request"), 1);
        admin.delete("star", id).unwrap();
        assert_eq!(web.table_version("star"), v0 + 3);

        // failed mutations don't bump
        let v = db.table_version("star");
        assert!(admin.insert("star", &[("nope", Value::Int(1))]).is_err());
        assert_eq!(db.table_version("star"), v);

        // rolled-back transactions don't bump either
        let v = db.table_version("star");
        let _ = admin.transaction(|tx| {
            tx.insert("star", &[("name", "HD3".into())])?;
            Err::<(), _>(DbError::Io("abort".into()))
        });
        assert_eq!(db.table_version("star"), v);
        admin
            .transaction(|tx| tx.insert("star", &[("name", "HD3".into())]))
            .unwrap();
        assert_eq!(db.table_version("star"), v + 1);

        // multi-table stamp under one lock
        let stamp = web.table_versions(&["star", "request"]);
        assert_eq!(stamp, vec![db.table_version("star"), 1]);
    }

    #[test]
    fn concurrent_writers_do_not_lose_rows() {
        let db = setup();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let c = db.connect("web").unwrap();
                for i in 0..50 {
                    c.insert("request", &[("body", format!("{t}:{i}").into())])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = db.connect("web").unwrap();
        assert_eq!(c.count("request", &Query::new()).unwrap(), 400);
    }
}
