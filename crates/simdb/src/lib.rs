//! # amp-simdb — the AMP gateway's central database
//!
//! An embedded, typed, relational database with a Django-style ORM, built as
//! the substrate for the AMP science gateway reproduction (Woitaszek et al.,
//! GCE 2009). In the paper, *all* communication between the public web
//! portal and the GridAMP workflow daemon happens asynchronously through a
//! central SQL database with strict type constraints and per-role table
//! permissions — that database is this crate.
//!
//! Layering:
//!
//! * [`value`] / [`schema`] — typed cells, columns, constraints, FKs;
//! * [`table`] — row storage with unique and secondary indexes;
//! * [`db`] — the single-threaded engine + the shared mutation logic;
//! * [`shard`] — per-table locks, lock-set planning, the live engine;
//! * [`query`] — Django-queryset-flavoured filters/ordering/slicing;
//! * [`perm`] — role-based table grants (`web`, `daemon`, `admin`);
//! * [`wal`] — durability: JSON-lines WAL + snapshots + recovery;
//! * [`orm`] — model trait, managers, migrations (the Django ORM analogue);
//! * [`admin`] — schema/row introspection for the admin interface.
//!
//! # Concurrency model
//!
//! The engine is sharded per table with an MVCC read path. Writers take
//! one writer-preferring lock per table they touch, computed as a lock
//! *plan* (the target plus FK targets for existence checks, or the
//! reverse-FK closure for deletes) and acquired in canonical sorted
//! order, which makes deadlock structurally impossible (see [`shard`]
//! for the proof sketch). Readers take **no locks at all**: every shard
//! publishes an immutable version of its table that reads pin with a
//! couple of atomic operations, so the portal's worker threads reading
//! `star` never wait on anyone — not even the daemon writing `star`.
//! Writers mutate a private copy-on-write working state and atomically
//! install it as the new published version at commit; a rolled-back
//! transaction simply never publishes.
//!
//! Multi-table consistency is explicit:
//!
//! * [`Connection::read_view`] pins a coherent snapshot of several tables
//!   — one atomic version pin per table, validated against the engine's
//!   commit clock so a multi-table transaction is seen entirely or not at
//!   all. Page renders, daemon worklists, and cache version stamps read
//!   multi-table state without tearing, and without blocking any writer;
//! * [`Connection::transaction`] declares its table set up front, takes
//!   the write locks in one ordered pass, and publishes-or-rolls-back, so
//!   transactions on disjoint tables commit fully in parallel.
//!
//! Entry point: build a [`Db`], define roles, [`Db::connect`] per component.
//!
//! ```
//! use amp_simdb::prelude::*;
//!
//! let db = Db::in_memory();
//! db.define_role(Role::superuser("admin"));
//! db.define_role(Role::new("web").grant("star", PermSet::READ_ONLY));
//!
//! let admin = db.connect("admin").unwrap();
//! admin.create_table(TableSchema::new(
//!     "star",
//!     vec![Column::new("name", ValueType::Text).not_null().unique()],
//! )).unwrap();
//! admin.insert("star", &[("name", "HD 52265".into())]).unwrap();
//!
//! let web = db.connect("web").unwrap();
//! assert_eq!(web.count("star", &Query::new()).unwrap(), 1);
//! assert!(web.delete("star", 1).is_err()); // read-only role
//! ```

pub mod admin;
pub mod db;
pub mod error;
pub(crate) mod obs;
pub mod orm;
pub mod perm;
pub mod query;
pub mod schema;
pub(crate) mod shard;
pub mod table;
pub mod value;
pub mod wal;

pub use crate::db::{Database, LogOp};
pub use crate::error::DbError;
pub use crate::perm::{Action, PermSet, Role};
pub use crate::query::{Filter, Op, OrderBy, Plan, Query};
pub use crate::schema::{Column, ForeignKey, OnDelete, TableSchema};
pub use crate::table::Row;
pub use crate::value::{Value, ValueType};

/// Everything a typical consumer needs.
pub mod prelude {
    pub use crate::db::LogOp;
    pub use crate::error::DbError;
    pub use crate::orm::{Manager, Model, Registry};
    pub use crate::perm::{Action, PermSet, Role};
    pub use crate::query::{Filter, Op, Query};
    pub use crate::schema::{Column, OnDelete, TableSchema};
    pub use crate::table::Row;
    pub use crate::value::{Value, ValueType};
    pub use crate::{Connection, Db, ReadView};
}

use crate::db::TableSet;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

/// Per-table snapshot-encode cache entry: the published version last
/// serialized, and its encoded JSON.
type SnapCache = HashMap<String, (u64, Arc<Vec<u8>>)>;

/// Shared state behind a [`Db`] handle.
struct DbShared {
    /// The table directory. Its `RwLock` is the *catalog lock* — the top
    /// of the locking hierarchy: read to resolve table names and plan lock
    /// sets, write only for DDL. Row data lives behind each table's own
    /// shard lock, so holding the catalog read lock blocks nobody's DML.
    catalog: RwLock<shard::Catalog>,
    /// Roles are resolved once per [`Db::connect`] and shared by `Arc` —
    /// connections never re-enter this lock on the per-operation path.
    roles: RwLock<HashMap<String, Arc<Role>>>,
    wal: Option<wal::Wal>,
    snapshot_path: Option<PathBuf>,
    /// Clean-table snapshot-encode cache: per table, the published version
    /// last serialized and its encoded JSON. Compaction re-encodes only
    /// tables whose version moved since the previous snapshot; on an
    /// archive-dominated database that turns the dominant cost of a
    /// checkpoint — re-serializing tens of thousands of static rows — into
    /// a buffer copy. Bounded by the snapshot's own size; entries for
    /// vanished tables are pruned at each use.
    snap_cache: Mutex<SnapCache>,
}

/// A thread-safe database handle. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Db {
    shared: Arc<DbShared>,
}

impl Db {
    /// A purely in-memory database (no WAL, no snapshots).
    pub fn in_memory() -> Self {
        Db {
            shared: Arc::new(DbShared {
                catalog: RwLock::new(shard::Catalog::new()),
                roles: RwLock::new(HashMap::new()),
                wal: None,
                snapshot_path: None,
                snap_cache: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Open a durable database: recover from `snapshot` + `wal` if they
    /// exist, and append future mutations to `wal`.
    pub fn open(
        snapshot: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
    ) -> Result<Self, DbError> {
        let snapshot = snapshot.into();
        let wal_path = wal_path.into();
        // Recovery replays into the single-threaded engine, then the table
        // storage is moved (not copied) into the sharded runtime catalog.
        let database = wal::recover(Some(&snapshot), Some(&wal_path))?;
        let (tables, versions, applied) = database.into_parts();
        let catalog = shard::Catalog::from_parts(tables, &versions, &applied);
        let wal = wal::Wal::open(&wal_path)?;
        Ok(Db {
            shared: Arc::new(DbShared {
                catalog: RwLock::new(catalog),
                roles: RwLock::new(HashMap::new()),
                wal: Some(wal),
                snapshot_path: Some(snapshot),
                snap_cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Register (or replace) a role.
    pub fn define_role(&self, role: Role) {
        self.shared
            .roles
            .write()
            .insert(role.name.clone(), Arc::new(role));
    }

    /// Open a connection acting as `role`. The role is resolved once, here;
    /// the connection (and its clones) share it via `Arc` instead of
    /// re-reading the roles table per operation.
    pub fn connect(&self, role: &str) -> Result<Connection, DbError> {
        let roles = self.shared.roles.read();
        let role = roles
            .get(role)
            .cloned()
            .ok_or_else(|| DbError::Schema(format!("role {role} is not defined")))?;
        Ok(Connection {
            db: self.clone(),
            role,
        })
    }

    /// Pin every table as one consistent cut and clone out the storage
    /// (cheap: copy-on-write structural shares) plus each table's WAL
    /// coverage. Lock-free except for the catalog read lock that resolves
    /// the shard list (which blocks only DDL).
    fn pin_all(&self) -> (BTreeMap<String, (u64, table::Table)>, BTreeMap<String, u64>) {
        let cut = {
            let catalog = self.shared.catalog.read();
            let shards: BTreeMap<String, Arc<shard::Shard>> = catalog
                .all_shards()
                .map(|(n, s)| (n.to_string(), Arc::clone(s)))
                .collect();
            catalog.pin_cut(&shards)
        };
        let mut tables = BTreeMap::new();
        let mut applied = BTreeMap::new();
        for (name, version) in cut {
            tables.insert(name.clone(), (version.version, version.table.clone()));
            if let Some(seq) = version.applied_seq {
                applied.insert(name, seq);
            }
        }
        (tables, applied)
    }

    /// Resolve a pinned cut to per-table encoded snapshot JSON through the
    /// clean-table cache: a table whose published version is unchanged
    /// since the last snapshot reuses its previous encoding; only dirty
    /// tables are re-serialized.
    fn encode_cut(
        &self,
        cut: &BTreeMap<String, (u64, table::Table)>,
    ) -> BTreeMap<String, Arc<Vec<u8>>> {
        let mut cache = self.shared.snap_cache.lock();
        cache.retain(|name, _| cut.contains_key(name));
        cut.iter()
            .map(|(name, (version, table))| {
                let bytes = match cache.get(name) {
                    Some((v, bytes)) if v == version => Arc::clone(bytes),
                    _ => {
                        let bytes = Arc::new(wal::Snapshot::encode_table(table));
                        cache.insert(name.clone(), (*version, Arc::clone(&bytes)));
                        bytes
                    }
                };
                (name.clone(), bytes)
            })
            .collect()
    }

    /// Compact durability state: write a snapshot of a pinned consistent
    /// cut, then drop every WAL record the snapshot's per-table coverage
    /// makes redundant. Recovery afterwards reads the snapshot plus the
    /// surviving suffix — keeping restart time bounded on long-lived
    /// gateways.
    ///
    /// Fully non-blocking for both readers *and* writers: the cut is a set
    /// of pinned immutable versions, so no table lock is held across the
    /// file I/O (the seed engine stalled the whole gateway behind an
    /// exclusive lock here; the PR 5 engine still queued every writer).
    /// Writers racing the compaction keep appending; their records have
    /// sequence numbers above the pinned coverage and survive the
    /// truncation untouched (see [`wal::Wal::truncate_keeping`]).
    pub fn compact(&self) -> Result<(), DbError> {
        let path = self
            .shared
            .snapshot_path
            .clone()
            .ok_or_else(|| DbError::Io("no snapshot path configured".into()))?;
        let wal = self
            .shared
            .wal
            .as_ref()
            .ok_or_else(|| DbError::Io("no WAL configured".into()))?;
        let (tables, applied) = self.pin_all();
        let covered = wal.last_seq();
        let encoded = self.encode_cut(&tables);
        wal::Snapshot::save_encoded(&encoded, covered, &applied, &path)?;
        wal.truncate_keeping(&applied)
    }

    /// Durability policy: when `on`, every committed write is `fdatasync`'d
    /// before the commit returns (group commit shares one fsync across the
    /// batch the leader drains), so commits survive power loss rather than
    /// just process death. Off by default — the historical behavior. No-op
    /// on an in-memory database.
    pub fn set_fsync(&self, on: bool) {
        if let Some(wal) = &self.shared.wal {
            wal.set_fsync(on);
        }
    }

    /// Write a snapshot covering a pinned consistent cut of every table.
    ///
    /// Entirely lock-free against DML: pinning the cut is an atomic load
    /// per table, and serialization plus file I/O run against the pinned
    /// immutable versions — neither readers nor writers ever wait on the
    /// disk.
    pub fn snapshot(&self) -> Result<(), DbError> {
        let path = self
            .shared
            .snapshot_path
            .clone()
            .ok_or_else(|| DbError::Io("no snapshot path configured".into()))?;
        let (tables, applied) = self.pin_all();
        let covered = self.shared.wal.as_ref().and_then(|w| w.last_seq());
        let encoded = self.encode_cut(&tables);
        wal::Snapshot::save_encoded(&encoded, covered, &applied, &path)
    }

    /// Current modification counter for `table`. Monotone; bumped
    /// atomically with every committed mutation of the table. Unknown
    /// tables report 0. Lock-free: one version pin.
    pub fn table_version(&self, table: &str) -> u64 {
        let shard = {
            let catalog = self.shared.catalog.read();
            match catalog.shard(table) {
                Ok(s) => Arc::clone(s),
                Err(_) => return 0,
            }
        };
        shard.pin().version
    }

    /// Read several tables' modification counters at one consistent point:
    /// a commit-clock-validated pin of each table's published version — no
    /// lock taken, no writer blocked. Unknown tables report 0, as in
    /// [`Self::table_version`].
    pub fn table_versions(&self, tables: &[&str]) -> Vec<u64> {
        let catalog = self.shared.catalog.read();
        let shards: BTreeMap<String, Arc<shard::Shard>> = tables
            .iter()
            .filter_map(|t| {
                catalog
                    .shard(t)
                    .ok()
                    .map(|s| (t.to_string(), Arc::clone(s)))
            })
            .collect();
        let cut = catalog.pin_cut(&shards);
        tables
            .iter()
            .map(|t| cut.get(*t).map(|v| v.version).unwrap_or(0))
            .collect()
    }

    /// Names of all tables, sorted (catalog metadata; no row locks).
    pub fn table_names(&self) -> Vec<String> {
        self.shared
            .catalog
            .read()
            .table_names()
            .map(str::to_string)
            .collect()
    }

    /// The stored schema of a table (catalog metadata; no row locks).
    pub fn table_schema(&self, table: &str) -> Result<TableSchema, DbError> {
        let schema = self.shared.catalog.read().schema(table)?;
        Ok((*schema).clone())
    }

    /// Row count of a table (lock-free: one version pin).
    pub fn table_len(&self, table: &str) -> Result<usize, DbError> {
        let shard = {
            let catalog = self.shared.catalog.read();
            Arc::clone(catalog.shard(table)?)
        };
        Ok(shard.pin().table.len())
    }

    /// Claim WAL sequence numbers for `ops` and buffer them. Must be
    /// called while the table (or catalog, for DDL) write guards covering
    /// the ops are still held, so WAL order matches apply order.
    fn enqueue_wal(&self, ops: &[LogOp]) -> Result<Option<u64>, DbError> {
        match &self.shared.wal {
            Some(w) => w.enqueue(ops),
            None => Ok(None),
        }
    }

    /// Make everything up to `last` durable (group commit). Called after
    /// guards are released for single ops — the flush batches with
    /// commits from *other* tables' writers.
    fn sync_wal(&self, last: Option<u64>) -> Result<(), DbError> {
        match (&self.shared.wal, last) {
            (Some(w), Some(last)) => w.sync_to(last),
            _ => Ok(()),
        }
    }
}

/// A role-scoped connection. All operations are permission-checked against
/// the connection's role and (when the [`Db`] is durable) WAL-logged.
#[derive(Clone)]
pub struct Connection {
    db: Db,
    role: Arc<Role>,
}

impl Connection {
    pub fn role_name(&self) -> &str {
        &self.role.name
    }

    pub(crate) fn db_handle(&self) -> &Db {
        &self.db
    }

    /// DDL: create a table (superuser only, mirroring AMP where only the
    /// migration/admin path may alter schema). Runs under the catalog
    /// *write* lock — the only operation that does — and claims its WAL
    /// sequence there, so the `CreateTable` record always precedes the
    /// first insert into the new table.
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        if !self.role.superuser {
            return Err(DbError::PermissionDenied {
                role: self.role.name.clone(),
                table: schema.name.clone(),
                action: "CREATE TABLE",
            });
        }
        let last = {
            let mut catalog = self.db.shared.catalog.write();
            let op = catalog.create_table(schema)?;
            let name = match &op {
                LogOp::CreateTable { schema } => schema.name.clone(),
                _ => unreachable!("create_table returns a CreateTable op"),
            };
            let last = self.db.enqueue_wal(&[op])?;
            if let Some(seq) = last {
                // Re-publish the freshly created (still empty) table with
                // its CreateTable record's sequence number, so compaction
                // can retire that record once a snapshot includes the
                // table. Still under the catalog write lock, so nothing
                // has touched the table yet.
                let shard = Arc::clone(catalog.shard(&name)?);
                let mut g = shard.write();
                g.applied_seq = Some(seq);
                g.publish();
            }
            last
        };
        self.db.sync_wal(last)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.db.shared.catalog.read().has_table(name)
    }

    /// Compute the shard set for a plan under the catalog read lock, then
    /// release it before blocking on any table lock.
    fn plan(
        &self,
        build: impl FnOnce(&shard::Catalog) -> Result<shard::LockPlan, DbError>,
    ) -> Result<shard::LockPlan, DbError> {
        let catalog = self.db.shared.catalog.read();
        build(&catalog)
    }

    /// One single-statement write: acquire the plan's locks in order,
    /// apply to the working state, claim WAL sequence numbers *under the
    /// guards* (so WAL order matches apply order), publish the new
    /// version(s), release, then group-commit the flush.
    fn run_write<T>(
        &self,
        plan: shard::LockPlan,
        apply: impl FnOnce(&mut shard::LockedTables) -> Result<(T, Vec<LogOp>), DbError>,
    ) -> Result<T, DbError> {
        let mut locked = plan.acquire();
        let (out, ops) = apply(&mut locked)?;
        let last = self.db.enqueue_wal(&ops)?;
        locked.commit(last);
        drop(locked);
        self.db.sync_wal(last)?;
        Ok(out)
    }

    /// One single-table read against the table's published version.
    /// Lock-free: pin, read, drop — no writer is blocked and no lock-wait
    /// metric is touched.
    fn run_read<T>(
        &self,
        table: &str,
        read: impl FnOnce(&table::Table) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let shard = {
            let catalog = self.db.shared.catalog.read();
            Arc::clone(catalog.shard(table)?)
        };
        let version = shard.pin();
        read(&version.table)
    }

    pub fn insert(&self, table: &str, values: &[(&str, Value)]) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let plan = self.plan(|c| c.write_plan(table))?;
        self.run_write(plan, |set| {
            let (id, op) = db::ops::insert(set, table, values)?;
            Ok((id, vec![op]))
        })
    }

    pub fn insert_row(&self, table: &str, row: Row) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let plan = self.plan(|c| c.write_plan(table))?;
        self.run_write(plan, |set| {
            let (id, op) = db::ops::insert_row(set, table, row)?;
            Ok((id, vec![op]))
        })
    }

    pub fn update(&self, table: &str, id: i64, values: &[(&str, Value)]) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let plan = self.plan(|c| c.write_plan(table))?;
        self.run_write(plan, |set| {
            let op = db::ops::update(set, table, id, values)?;
            Ok(((), vec![op]))
        })
    }

    pub fn update_row(&self, table: &str, id: i64, row: Row) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let plan = self.plan(|c| c.write_plan(table))?;
        self.run_write(plan, |set| {
            let op = db::ops::update_row(set, table, id, row)?;
            Ok(((), vec![op]))
        })
    }

    /// Delete a row. Referential actions (cascades, SET NULL) execute with
    /// definer rights, as in SQL — only the named table needs the grant.
    /// The lock plan covers the table's whole reverse-FK closure, since
    /// that is exactly the set of tables the cascade may mutate.
    pub fn delete(&self, table: &str, id: i64) -> Result<(), DbError> {
        self.role.check(table, Action::Delete)?;
        let plan = self.plan(|c| c.delete_plan(table))?;
        self.run_write(plan, |set| {
            let ops = db::ops::delete(set, table, id)?;
            Ok(((), ops))
        })
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        self.role.check(table, Action::Select)?;
        self.run_read(table, |s| shard::select(s, query))
    }

    /// Single-column projection of a query (see [`Query::project`]).
    pub fn select_project(
        &self,
        table: &str,
        query: &Query,
        column: &str,
    ) -> Result<Vec<(i64, Value)>, DbError> {
        self.role.check(table, Action::Select)?;
        self.run_read(table, |s| shard::select_project(s, query, column))
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.role.check(table, Action::Select)?;
        self.run_read(table, |s| shard::get(s, table, id))
    }

    pub fn count(&self, table: &str, query: &Query) -> Result<usize, DbError> {
        self.role.check(table, Action::Select)?;
        self.run_read(table, |s| shard::count(s, query))
    }

    /// Modification counter for `table` — cache-invalidation metadata, not
    /// row data, so no table grant is required.
    pub fn table_version(&self, table: &str) -> u64 {
        self.db.table_version(table)
    }

    /// Several tables' counters read at one consistent point.
    pub fn table_versions(&self, tables: &[&str]) -> Vec<u64> {
        self.db.table_versions(tables)
    }

    /// Pin a coherent snapshot of several tables: one atomic version pin
    /// per table, validated against the engine's commit clock so a
    /// multi-table transaction is observed entirely or not at all. Every
    /// read (and [`ReadView::versions`] stamp) through the view observes
    /// the same instant.
    ///
    /// The view takes **no locks**: it never blocks writers (or anything
    /// else), and holding one indefinitely costs only the memory of the
    /// superseded versions it keeps alive (observable as the
    /// `simdb_table_live_versions` gauge).
    pub fn read_view(&self, tables: &[&str]) -> Result<ReadView, DbError> {
        let catalog = self.db.shared.catalog.read();
        let view = shard::PinnedView::pin(&catalog, tables)?;
        drop(catalog);
        Ok(ReadView {
            view,
            role: Arc::clone(&self.role),
        })
    }

    /// Run several mutations atomically over a declared table set: either
    /// every operation commits (WAL-logged as one batch) or none do.
    ///
    /// `tables` declares what the transaction may touch; the engine
    /// expands it to the full write closure (FK cascades included) and
    /// acquires all locks in one canonical-order pass — transactions over
    /// disjoint tables run fully in parallel, and mutating an undeclared
    /// table inside `f` fails with a descriptive error instead of
    /// deadlocking. Readers of the involved tables see no intermediate
    /// state.
    ///
    /// Mutations accumulate in a per-transaction **delta write-buffer**
    /// ([`shard::BufferedTables`]) layered over the locked working state:
    /// reads inside `f` see buffer-or-base, commit installs the buffers
    /// and publishes in one pass, and rollback — on `f`'s error or a
    /// durability failure — just drops the buffers; the base working
    /// state was never touched, so there is no journal to restore.
    pub fn transaction<T>(
        &self,
        tables: &[&str],
        f: impl FnOnce(&mut Txn<'_>) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let plan = self.plan(|c| c.txn_plan(tables))?;
        let mut locked = plan.acquire();
        let mut txn = Txn {
            set: shard::BufferedTables::new(&mut locked),
            role: &self.role,
            ops: Vec::new(),
        };
        match f(&mut txn) {
            Ok(v) => {
                let Txn { set, ops, .. } = txn;
                // Enqueue *and* flush while the write guards are held: if
                // durability fails, the buffers are dropped unpublished —
                // no reader (and no later writer of these tables) ever
                // sees the aborted state. Publication happens only after
                // the batch is durable, as one commit-clock-protected unit.
                let res = self.db.enqueue_wal(&ops).and_then(|last| {
                    self.db.sync_wal(last)?;
                    Ok(last)
                });
                match res {
                    Ok(last) => {
                        set.commit(last);
                        Ok(v)
                    }
                    Err(e) => Err(e), // `set` drops here: rollback
                }
            }
            Err(e) => Err(e), // buffers drop with `txn`: rollback
        }
    }

    /// Compare-and-swap one row: atomically verify that row `id` of
    /// `table` still matches every `(column, value)` pair in `expect`,
    /// and only then apply `set`. Returns `Ok(true)` when the swap
    /// committed, `Ok(false)` when the row is gone or any expected value
    /// no longer matches (somebody else won the race).
    ///
    /// This is the linearization primitive for optimistic coordination
    /// rows — e.g. the daemon lease table, where concurrent claimers race
    /// on `(daemon_id, epoch)` and exactly one CAS per epoch can succeed.
    /// The check and the update run inside one declared-table-set
    /// [`Connection::transaction`], i.e. under the table's write lock, so
    /// no writer can interleave between them.
    pub fn compare_and_swap(
        &self,
        table: &str,
        id: i64,
        expect: &[(&str, Value)],
        set: &[(&str, Value)],
    ) -> Result<bool, DbError> {
        self.transaction(&[table], |tx| {
            let mut q = Query::new();
            for (column, value) in expect {
                q = q.filter(column, Op::Eq, value.clone());
            }
            let matched = tx.select(table, &q)?.iter().any(|(rid, _)| *rid == id);
            if !matched {
                return Ok(false);
            }
            tx.update(table, id, set)?;
            Ok(true)
        })
    }
}

/// A coherent multi-table snapshot (see [`Connection::read_view`]): pinned
/// immutable versions, one per table — it holds no lock and blocks nobody.
/// Reads are permission-checked per table against the connection's role;
/// version stamps are cache metadata and need no grant.
pub struct ReadView {
    view: shard::PinnedView,
    role: Arc<Role>,
}

impl ReadView {
    fn table(&self, name: &str) -> Result<&table::Table, DbError> {
        Ok(&self.view.version(name)?.table)
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        self.role.check(table, Action::Select)?;
        shard::select(self.table(table)?, query)
    }

    /// Single-column projection of a query (see [`Query::project`]).
    pub fn select_project(
        &self,
        table: &str,
        query: &Query,
        column: &str,
    ) -> Result<Vec<(i64, Value)>, DbError> {
        self.role.check(table, Action::Select)?;
        shard::select_project(self.table(table)?, query, column)
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.role.check(table, Action::Select)?;
        shard::get(self.table(table)?, table, id)
    }

    pub fn count(&self, table: &str, query: &Query) -> Result<usize, DbError> {
        self.role.check(table, Action::Select)?;
        shard::count(self.table(table)?, query)
    }

    /// Version stamps of the viewed tables, in the order they were passed
    /// to [`Connection::read_view`]. Taken from the pinned snapshot, so
    /// the stamp is exactly as old as every row read through the view —
    /// the invariant the portal's response cache relies on.
    pub fn versions(&self) -> Vec<u64> {
        self.view.versions()
    }

    /// The viewed table names, in requested order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.view.tables()
    }
}

/// In-flight transaction handle. Mutations accumulate in the transaction's
/// delta write-buffer ([`shard::BufferedTables`]); reads see buffer-or-base.
/// Rollback drops the buffers — the locked working state is never touched
/// until commit installs them.
pub struct Txn<'a> {
    set: shard::BufferedTables<'a>,
    role: &'a Role,
    ops: Vec<LogOp>,
}

impl Txn<'_> {
    pub fn insert(&mut self, table: &str, values: &[(&str, Value)]) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = db::ops::insert(&mut self.set, table, values)?;
        self.ops.push(op);
        Ok(id)
    }

    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<i64, DbError> {
        self.role.check(table, Action::Insert)?;
        let (id, op) = db::ops::insert_row(&mut self.set, table, row)?;
        self.ops.push(op);
        Ok(id)
    }

    pub fn update(
        &mut self,
        table: &str,
        id: i64,
        values: &[(&str, Value)],
    ) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = db::ops::update(&mut self.set, table, id, values)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn update_row(&mut self, table: &str, id: i64, row: Row) -> Result<(), DbError> {
        self.role.check(table, Action::Update)?;
        let op = db::ops::update_row(&mut self.set, table, id, row)?;
        self.ops.push(op);
        Ok(())
    }

    pub fn delete(&mut self, table: &str, id: i64) -> Result<(), DbError> {
        self.role.check(table, Action::Delete)?;
        let ops = db::ops::delete(&mut self.set, table, id)?;
        self.ops.extend(ops);
        Ok(())
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        self.role.check(table, Action::Select)?;
        query.execute(self.set.table_ref(table)?)
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.role.check(table, Action::Select)?;
        self.set
            .table_ref(table)?
            .get(id)
            .cloned()
            .ok_or_else(|| DbError::NoSuchRow {
                table: table.to_string(),
                id,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Db {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(
            Role::new("web")
                .grant("star", PermSet::READ_ONLY)
                .grant("request", PermSet::ALL),
        );
        let admin = db.connect("admin").unwrap();
        admin
            .create_table(TableSchema::new(
                "star",
                vec![Column::new("name", ValueType::Text).not_null().unique()],
            ))
            .unwrap();
        admin
            .create_table(TableSchema::new(
                "request",
                vec![Column::new("body", ValueType::Text)],
            ))
            .unwrap();
        db
    }

    #[test]
    fn role_enforcement_end_to_end() {
        let db = setup();
        let web = db.connect("web").unwrap();
        assert!(web.insert("star", &[("name", "HD1".into())]).is_err());
        assert!(web.insert("request", &[("body", "hi".into())]).is_ok());
        assert!(web.select("star", &Query::new()).is_ok());
        let admin = db.connect("admin").unwrap();
        admin.insert("star", &[("name", "HD1".into())]).unwrap();
        assert!(web.delete("star", 1).is_err());
    }

    #[test]
    fn unknown_role_rejected() {
        let db = setup();
        assert!(db.connect("nobody").is_err());
    }

    #[test]
    fn ddl_requires_superuser() {
        let db = setup();
        let web = db.connect("web").unwrap();
        assert!(web.create_table(TableSchema::new("x", vec![])).is_err());
    }

    #[test]
    fn transaction_commits_atomically() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let out = admin
            .transaction(&["star"], |tx| {
                tx.insert("star", &[("name", "A".into())])?;
                tx.insert("star", &[("name", "B".into())])?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(admin.count("star", &Query::new()).unwrap(), 2);
    }

    #[test]
    fn transaction_rolls_back_on_error() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        admin.insert("star", &[("name", "A".into())]).unwrap();
        let res: Result<(), DbError> = admin.transaction(&["star"], |tx| {
            tx.insert("star", &[("name", "B".into())])?;
            tx.insert("star", &[("name", "A".into())])?; // unique violation
            Ok(())
        });
        assert!(res.is_err());
        assert_eq!(admin.count("star", &Query::new()).unwrap(), 1);
    }

    #[test]
    fn transaction_respects_permissions() {
        let db = setup();
        let web = db.connect("web").unwrap();
        let res: Result<(), DbError> = web.transaction(&["request", "star"], |tx| {
            tx.insert("request", &[("body", "x".into())])?;
            tx.insert("star", &[("name", "HD".into())])?; // denied
            Ok(())
        });
        assert!(matches!(res, Err(DbError::PermissionDenied { .. })));
        assert_eq!(web.count("request", &Query::new()).unwrap(), 0);
    }

    #[test]
    fn transaction_rejects_undeclared_table() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        // Writing a table outside the declared set fails cleanly (instead
        // of deadlocking or silently escalating the lock set)...
        let res: Result<(), DbError> = admin.transaction(&["star"], |tx| {
            tx.insert("request", &[("body", "x".into())])?;
            Ok(())
        });
        assert!(res.is_err());
        // ...and the partial work is rolled back.
        assert_eq!(admin.count("request", &Query::new()).unwrap(), 0);
    }

    #[test]
    fn compare_and_swap_is_exclusive() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let id = admin.insert("star", &[("name", "HD1".into())]).unwrap();

        // matching expectation: swap commits
        assert!(admin
            .compare_and_swap(
                "star",
                id,
                &[("name", "HD1".into())],
                &[("name", "HD2".into())]
            )
            .unwrap());
        // stale expectation: swap refused, row untouched
        assert!(!admin
            .compare_and_swap(
                "star",
                id,
                &[("name", "HD1".into())],
                &[("name", "HD3".into())]
            )
            .unwrap());
        let row = admin.get("star", id).unwrap();
        assert_eq!(row[0], Value::Text("HD2".into()));
        // missing row: refused, not an error
        assert!(!admin
            .compare_and_swap("star", 999, &[], &[("name", "X".into())])
            .unwrap());

        // racing swappers on one row: exactly one per generation wins
        let db2 = db.clone();
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let db = db2.clone();
                    s.spawn(move || {
                        let c = db.connect("admin").unwrap();
                        c.compare_and_swap(
                            "star",
                            id,
                            &[("name", "HD2".into())],
                            &[("name", format!("HD2-{i}").into())],
                        )
                        .unwrap() as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        // permission checks still apply inside the CAS transaction
        let web = db.connect("web").unwrap();
        assert!(web
            .compare_and_swap("star", id, &[], &[("name", "W".into())])
            .is_err());
    }

    #[test]
    fn durable_db_recovers() {
        let dir = std::env::temp_dir().join(format!("simdb_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.snap");
        let walp = dir.join("db.wal");
        {
            let db = Db::open(&snap, &walp).unwrap();
            db.define_role(Role::superuser("admin"));
            let c = db.connect("admin").unwrap();
            c.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap();
            c.insert("t", &[("v", Value::Int(1))]).unwrap();
            db.snapshot().unwrap();
            c.insert("t", &[("v", Value::Int(2))]).unwrap();
        }
        let db = Db::open(&snap, &walp).unwrap();
        db.define_role(Role::superuser("admin"));
        let c = db.connect("admin").unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 2);
        // continue writing after recovery
        c.insert("t", &[("v", Value::Int(3))]).unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 3);
    }

    /// Repeated compactions hit the clean-table encode cache; this pins
    /// down that the cache keys on the published version, so a table
    /// mutated between compactions is re-encoded (no stale bytes served)
    /// while recovery stays correct across the mix of cached and fresh
    /// entries.
    #[test]
    fn snapshot_cache_never_serves_stale_tables() {
        let dir = std::env::temp_dir().join(format!("simdb_snapcache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.snap");
        let walp = dir.join("db.wal");
        {
            let db = Db::open(&snap, &walp).unwrap();
            db.define_role(Role::superuser("admin"));
            let c = db.connect("admin").unwrap();
            for t in ["hot", "cold"] {
                c.create_table(TableSchema::new(t, vec![Column::new("v", ValueType::Int)]))
                    .unwrap();
                c.insert(t, &[("v", Value::Int(1))]).unwrap();
            }
            // First compact encodes both tables and seeds the cache.
            db.compact().unwrap();
            // Mutate only `hot`; `cold`'s cached encoding stays valid.
            c.update("hot", 1, &[("v", Value::Int(42))]).unwrap();
            db.compact().unwrap();
            // Third compact: both tables clean, full cache reuse.
            db.compact().unwrap();
        }
        let db = Db::open(&snap, &walp).unwrap();
        db.define_role(Role::superuser("admin"));
        let c = db.connect("admin").unwrap();
        assert_eq!(c.get("hot", 1).unwrap()[0], Value::Int(42));
        assert_eq!(c.get("cold", 1).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn compaction_preserves_state_and_bounds_wal() {
        let dir = std::env::temp_dir().join(format!("simdb_compact_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.snap");
        let walp = dir.join("db.wal");
        {
            let db = Db::open(&snap, &walp).unwrap();
            db.define_role(Role::superuser("admin"));
            let c = db.connect("admin").unwrap();
            c.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap();
            for i in 0..50 {
                c.insert("t", &[("v", Value::Int(i))]).unwrap();
            }
            let before = std::fs::metadata(&walp).unwrap().len();
            db.compact().unwrap();
            let after = std::fs::metadata(&walp).unwrap().len();
            assert!(before > 1000);
            assert_eq!(after, 0, "WAL truncated");
            // writes continue after compaction
            c.insert("t", &[("v", Value::Int(999))]).unwrap();
        }
        let db = Db::open(&snap, &walp).unwrap();
        db.define_role(Role::superuser("admin"));
        let c = db.connect("admin").unwrap();
        assert_eq!(c.count("t", &Query::new()).unwrap(), 51);
        // post-compaction record replayed on top of the snapshot
        assert_eq!(
            c.count("t", &Query::new().eq("v", Value::Int(999)))
                .unwrap(),
            1
        );
        // compaction without persistence configured is an error
        assert!(Db::in_memory().compact().is_err());
    }

    #[test]
    fn table_versions_track_mutations_precisely() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        let web = db.connect("web").unwrap();
        // table creation counts as version 1
        assert_eq!(db.table_version("star"), 1);
        assert_eq!(db.table_version("nope"), 0);

        let v0 = web.table_version("star");
        let id = admin.insert("star", &[("name", "HD1".into())]).unwrap();
        assert_eq!(web.table_version("star"), v0 + 1);
        admin.update("star", id, &[("name", "HD2".into())]).unwrap();
        assert_eq!(web.table_version("star"), v0 + 2);
        // an unrelated table is untouched
        assert_eq!(web.table_version("request"), 1);
        admin.delete("star", id).unwrap();
        assert_eq!(web.table_version("star"), v0 + 3);

        // failed mutations don't bump
        let v = db.table_version("star");
        assert!(admin.insert("star", &[("nope", Value::Int(1))]).is_err());
        assert_eq!(db.table_version("star"), v);

        // rolled-back transactions don't bump either
        let v = db.table_version("star");
        let _ = admin.transaction(&["star"], |tx| {
            tx.insert("star", &[("name", "HD3".into())])?;
            Err::<(), _>(DbError::Io("abort".into()))
        });
        assert_eq!(db.table_version("star"), v);
        admin
            .transaction(&["star"], |tx| tx.insert("star", &[("name", "HD3".into())]))
            .unwrap();
        assert_eq!(db.table_version("star"), v + 1);

        // multi-table stamp at one consistent point
        let stamp = web.table_versions(&["star", "request"]);
        assert_eq!(stamp, vec![db.table_version("star"), 1]);
    }

    #[test]
    fn read_view_is_coherent_and_role_checked() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        admin.insert("star", &[("name", "HD1".into())]).unwrap();
        let web = db.connect("web").unwrap();
        let view = web.read_view(&["star", "request"]).unwrap();
        assert_eq!(view.count("star", &Query::new()).unwrap(), 1);
        assert_eq!(view.count("request", &Query::new()).unwrap(), 0);
        assert_eq!(
            view.versions(),
            vec![db.table_version("star"), db.table_version("request")]
        );
        assert_eq!(view.tables().collect::<Vec<_>>(), vec!["star", "request"]);
        // a table outside the view is an error, not a fresh lock
        assert!(view.count("nope", &Query::new()).is_err());
        drop(view);

        // roles apply through views too
        db.define_role(Role::new("blind"));
        let blind = db.connect("blind").unwrap();
        let view = blind.read_view(&["star"]).unwrap();
        assert!(view.select("star", &Query::new()).is_err());
        assert_eq!(view.versions().len(), 1); // stamps need no grant

        // duplicate table names are tolerated (single guard, both stamps)
        let view = web.read_view(&["star", "star"]).unwrap();
        assert_eq!(view.versions().len(), 2);
    }

    #[test]
    fn concurrent_writers_do_not_lose_rows() {
        let db = setup();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let c = db.connect("web").unwrap();
                for i in 0..50 {
                    c.insert("request", &[("body", format!("{t}:{i}").into())])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = db.connect("web").unwrap();
        assert_eq!(c.count("request", &Query::new()).unwrap(), 400);
    }
}
