//! Durability: JSON-lines write-ahead log and full snapshots.
//!
//! The central database is the only channel between AMP's portal and the
//! GridAMP daemon, so losing it loses all workflow state. The `Wal` appends
//! each committed mutation as one JSON line; `Snapshot` serializes the whole
//! database. Recovery = load latest snapshot, then replay the WAL suffix.

use crate::db::{Database, LogOp};
use crate::error::DbError;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

/// The table a logged op targets (per-table WAL coverage accounting).
pub(crate) fn op_table(op: &LogOp) -> &str {
    match op {
        LogOp::CreateTable { schema } => &schema.name,
        LogOp::Insert { table, .. } | LogOp::Update { table, .. } | LogOp::Delete { table, .. } => {
            table
        }
    }
}

/// Byte-exact fast encoder for the hot `LogOp` variants. The generic
/// serde path builds an intermediate content tree per record, which
/// dominates append cost; this writes the identical JSON straight into
/// the output buffer. `CreateTable` (cold: DDL only) falls back to serde.
/// `encoder_matches_serde` pins byte equality against `serde_json`.
fn encode_op(buf: &mut Vec<u8>, op: &LogOp) -> Result<(), DbError> {
    fn encode_str(buf: &mut Vec<u8>, s: &str) {
        buf.push(b'"');
        let bytes = s.as_bytes();
        let mut run = 0; // start of the current passthrough run
        for (i, &b) in bytes.iter().enumerate() {
            if b >= 0x20 && b != b'"' && b != b'\\' {
                continue; // plain byte (incl. UTF-8 continuation): copied in bulk
            }
            buf.extend_from_slice(&bytes[run..i]);
            run = i + 1;
            match b {
                b'"' => buf.extend_from_slice(b"\\\""),
                b'\\' => buf.extend_from_slice(b"\\\\"),
                b'\n' => buf.extend_from_slice(b"\\n"),
                b'\t' => buf.extend_from_slice(b"\\t"),
                b'\r' => buf.extend_from_slice(b"\\r"),
                0x8 => buf.extend_from_slice(b"\\b"),
                0xc => buf.extend_from_slice(b"\\f"),
                c => buf.extend_from_slice(format!("\\u{:04x}", c as u32).as_bytes()),
            }
        }
        buf.extend_from_slice(&bytes[run..]);
        buf.push(b'"');
    }
    fn encode_i64(buf: &mut Vec<u8>, v: i64) {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let neg = v < 0;
        let mut v = (v as i128).unsigned_abs();
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        if neg {
            buf.push(b'-');
        }
        buf.extend_from_slice(&digits[i..]);
    }
    fn encode_f64(buf: &mut Vec<u8>, v: f64) {
        if !v.is_finite() {
            buf.extend_from_slice(b"null");
            return;
        }
        let s = format!("{v}");
        buf.extend_from_slice(s.as_bytes());
        if !s.contains('.') && !s.contains('e') {
            buf.extend_from_slice(b".0");
        }
    }
    fn encode_value(buf: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Null => buf.extend_from_slice(b"\"Null\""),
            Value::Bool(true) => buf.extend_from_slice(b"{\"Bool\":true}"),
            Value::Bool(false) => buf.extend_from_slice(b"{\"Bool\":false}"),
            Value::Int(i) => {
                buf.extend_from_slice(b"{\"Int\":");
                encode_i64(buf, *i);
                buf.push(b'}');
            }
            Value::Float(f) => {
                buf.extend_from_slice(b"{\"Float\":");
                encode_f64(buf, *f);
                buf.push(b'}');
            }
            Value::Timestamp(t) => {
                buf.extend_from_slice(b"{\"Timestamp\":");
                encode_i64(buf, *t);
                buf.push(b'}');
            }
            Value::Text(s) => {
                buf.extend_from_slice(b"{\"Text\":");
                encode_str(buf, s);
                buf.push(b'}');
            }
        }
    }
    fn encode_header(buf: &mut Vec<u8>, variant: &str, table: &str, id: i64) {
        buf.push(b'{');
        encode_str(buf, variant);
        buf.extend_from_slice(b":{\"table\":");
        encode_str(buf, table);
        buf.extend_from_slice(b",\"id\":");
        encode_i64(buf, id);
    }
    fn encode_row_op(buf: &mut Vec<u8>, variant: &str, table: &str, id: i64, row: &[Value]) {
        encode_header(buf, variant, table, id);
        buf.extend_from_slice(b",\"row\":[");
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                buf.push(b',');
            }
            encode_value(buf, v);
        }
        buf.extend_from_slice(b"]}}");
    }
    match op {
        LogOp::Insert { table, id, row } => encode_row_op(buf, "Insert", table, *id, row),
        LogOp::Update { table, id, row } => encode_row_op(buf, "Update", table, *id, row),
        LogOp::Delete { table, id } => {
            encode_header(buf, "Delete", table, *id);
            buf.extend_from_slice(b"}}");
        }
        LogOp::CreateTable { .. } => {
            let body =
                serde_json::to_string(op).map_err(|e| DbError::Io(format!("wal encode: {e}")))?;
            buf.extend_from_slice(body.as_bytes());
        }
    }
    Ok(())
}

/// One WAL record: a monotonically increasing sequence number plus the op.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WalRecord {
    pub seq: u64,
    pub op: LogOp,
}

/// An append-only write-ahead log backed by a file, with **cross-writer
/// group commit**.
///
/// A commit has three phases: (1) serialize the ops to JSON — the expensive
/// part — entirely outside any lock; (2) take the cheap `queue` lock just
/// long enough to claim sequence numbers and splice the pre-encoded lines
/// into the shared in-memory buffer; (3) make the batch durable through the
/// leader/follower protocol in [`Self::sync_to`]. Phase 3 is the group
/// commit: at most one thread — the *leader* — is elected per flush window
/// under the `commit` mutex; it drains *everything* buffered so far
/// (including lines from writers that arrived while the previous flush was
/// in flight) with a single write + flush + optional `fdatasync`, while
/// every other committer parks on the condvar instead of convoying on a
/// file lock. When the leader publishes the new durable watermark, covered
/// followers return without ever touching the file; uncovered ones elect
/// the next leader. N concurrent daemon writer threads therefore share one
/// durability syscall per window instead of paying one each.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    queue: Mutex<WalQueue>,
    /// Group-commit control block: leader election, follower parking, and
    /// the durable watermark. Never held across file I/O.
    commit: Mutex<CommitState>,
    commit_cond: Condvar,
    /// The file writer. Only the elected leader (`CommitState::flushing`)
    /// and truncation — which first waits out any in-flight flush — touch
    /// it, so this lock is uncontended in steady state.
    file: Mutex<WalFile>,
    /// When set, every group-commit flush is followed by `fdatasync`, so
    /// a commit survives power loss, not just process death. Off by
    /// default (the historical behavior); the fsync is amortized across
    /// the whole batch the group-commit leader drains.
    fsync: std::sync::atomic::AtomicBool,
}

#[derive(Debug)]
struct WalQueue {
    next_seq: u64,
    /// Encoded-but-unflushed records, in sequence order.
    buf: Vec<u8>,
    /// Records currently in `buf` (group-commit batch-size metric).
    pending: usize,
}

#[derive(Debug)]
struct CommitState {
    /// A leader is mid-flush. Guards the file writer by protocol: only the
    /// thread that flipped this true may take the `file` lock for a flush.
    flushing: bool,
    /// Writer threads parked on the condvar waiting for a leader's flush
    /// to cover their records.
    waiters: usize,
    /// Highest sequence number known durable in the file.
    flushed_seq: Option<u64>,
    /// A failed flush may have lost buffered records; the log is unusable.
    failed: Option<String>,
}

#[derive(Debug)]
struct WalFile {
    writer: BufWriter<File>,
}

impl Wal {
    /// Open (or create) a WAL file, continuing after any existing records.
    /// Streams the file to find the tail record — only the last line is
    /// actually parsed, so reopening a long log costs one pass of IO, not
    /// a full JSON decode of every record.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let path = path.as_ref().to_path_buf();
        let next_seq = if path.exists() {
            let f = File::open(&path)?;
            let mut last_line: Option<(usize, String)> = None;
            for (lineno, line) in BufReader::new(f).lines().enumerate() {
                let line = line?;
                if !line.trim().is_empty() {
                    last_line = Some((lineno, line));
                }
            }
            match last_line {
                Some((lineno, line)) => {
                    let rec: WalRecord = serde_json::from_str(&line)
                        .map_err(|e| DbError::Corrupt(format!("wal line {}: {e}", lineno + 1)))?;
                    rec.seq + 1
                }
                None => 0,
            }
        } else {
            0
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            queue: Mutex::new(WalQueue {
                next_seq,
                buf: Vec::new(),
                pending: 0,
            }),
            commit: Mutex::new(CommitState {
                flushing: false,
                waiters: 0,
                flushed_seq: next_seq.checked_sub(1),
                failed: None,
            }),
            commit_cond: Condvar::new(),
            file: Mutex::new(WalFile {
                writer: BufWriter::new(file),
            }),
            fsync: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Enable or disable per-commit `fdatasync` (see the `fsync` field).
    pub fn set_fsync(&self, on: bool) {
        self.fsync.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Highest sequence number assigned so far, or `None` if no record was
    /// ever appended. Tracked in memory so snapshot/checkpoint never has to
    /// re-read the log to learn where it ends.
    pub fn last_seq(&self) -> Option<u64> {
        self.queue
            .lock()
            .expect("wal queue lock")
            .next_seq
            .checked_sub(1)
    }

    /// Append ops and make them durable (group commit). Returns the
    /// sequence number of the last record.
    pub fn append(&self, ops: &[LogOp]) -> Result<u64, DbError> {
        match self.enqueue(ops)? {
            Some(last) => {
                self.sync_to(last)?;
                Ok(last)
            }
            None => Ok(self.queue.lock().expect("wal queue lock").next_seq),
        }
    }

    /// Claim sequence numbers for `ops` and buffer the encoded records
    /// (phases 1–2 of a commit; no durability yet). Returns the last
    /// claimed sequence number, or `None` for an empty batch.
    ///
    /// The sharded engine calls this while still holding the table (or
    /// catalog) write guards covering the ops, so sequence order always
    /// matches apply order — replay cannot reorder ops on the same table.
    /// The flush ([`Self::sync_to`]) happens after the guards are
    /// released, where it group-commits with other tables' writers.
    pub fn enqueue(&self, ops: &[LogOp]) -> Result<Option<u64>, DbError> {
        // Phase 1: serialize before the queue lock (no serde tree).
        let mut encoded = Vec::with_capacity(ops.len());
        for op in ops {
            let mut body = Vec::with_capacity(160);
            encode_op(&mut body, op)?;
            encoded.push(body);
        }
        if encoded.is_empty() {
            return Ok(None);
        }

        // Phase 2: claim sequence numbers and buffer the finished lines.
        let mut q = self.queue.lock().expect("wal queue lock");
        for body in &encoded {
            // `WalRecord` serializes as {"seq":N,"op":{...}} in field
            // order; emit the identical bytes by splicing the
            // pre-encoded op body around the freshly claimed seq.
            let seq = q.next_seq;
            q.buf.extend_from_slice(b"{\"seq\":");
            q.buf.extend_from_slice(seq.to_string().as_bytes());
            q.buf.extend_from_slice(b",\"op\":");
            q.buf.extend_from_slice(body);
            q.buf.extend_from_slice(b"}\n");
            q.next_seq += 1;
            q.pending += 1;
        }
        Ok(Some(q.next_seq - 1))
    }

    /// Ensure every record with `seq <= target` is durable (phase 3: group
    /// commit, leader/follower).
    ///
    /// One thread per flush window is elected leader under the `commit`
    /// mutex; it drains the whole shared buffer and pays one write + flush
    /// (+ one `fdatasync` when durability is on) on behalf of every writer
    /// whose records it covers. Followers park on the condvar — holding no
    /// lock the leader needs — and return as soon as the published durable
    /// watermark reaches their target. Followers that enqueued *during* the
    /// in-flight flush elect the next window's leader on wake-up.
    ///
    /// Invariant: any thread counted in `waiters` when a leader is elected
    /// enqueued its records before parking, so the leader's drain always
    /// covers it (enqueue happens-before park happens-before drain). That
    /// count feeds the `simdb_group_commit_writers` histogram: 1 means the
    /// leader flushed alone; N means one fsync made N writers durable.
    pub fn sync_to(&self, target: u64) -> Result<(), DbError> {
        let mut st = self.commit.lock().expect("wal commit lock");
        loop {
            if let Some(e) = &st.failed {
                return Err(DbError::Io(format!("wal unusable after failed flush: {e}")));
            }
            if st.flushed_seq.is_some_and(|s| s >= target) {
                return Ok(()); // a leader's flush already covered us
            }
            if !st.flushing {
                break; // elected: this thread leads the next flush window
            }
            st.waiters += 1;
            st = self.commit_cond.wait(st).expect("wal commit lock");
            st.waiters -= 1;
        }
        st.flushing = true;
        // Everyone parked right now enqueued before parking, so the drain
        // below makes them durable too (see the invariant above).
        let covered_writers = 1 + st.waiters as u64;
        drop(st);

        let (chunk, upto, batch) = {
            let mut q = self.queue.lock().expect("wal queue lock");
            (
                std::mem::take(&mut q.buf),
                q.next_seq - 1,
                std::mem::take(&mut q.pending),
            )
        };
        let res = {
            let mut file = self.file.lock().expect("wal file lock");
            file.writer
                .write_all(&chunk)
                .and_then(|_| file.writer.flush())
                .and_then(|_| {
                    if self.fsync.load(std::sync::atomic::Ordering::Relaxed) {
                        file.writer.get_ref().sync_data()
                    } else {
                        Ok(())
                    }
                })
        };

        let mut st = self.commit.lock().expect("wal commit lock");
        st.flushing = false;
        let out = match res {
            Ok(()) => {
                st.flushed_seq = Some(upto);
                let m = crate::obs::metrics();
                m.wal_fsyncs.inc();
                if batch > 0 {
                    m.wal_batch.observe(batch as u64);
                }
                m.group_commit_writers.observe(covered_writers);
                Ok(())
            }
            Err(e) => {
                st.failed = Some(e.to_string());
                Err(e.into())
            }
        };
        drop(st);
        self.commit_cond.notify_all();
        out
    }

    /// Truncate the log file (after a covering snapshot). The sequence
    /// counter keeps increasing, so records appended later still sort
    /// strictly after the snapshot's covered sequence number. Any
    /// buffered-but-unflushed lines are discarded — the covering snapshot
    /// already contains their effects.
    pub fn truncate(&self) -> Result<(), DbError> {
        // Wait out any in-flight leader, then hold the commit lock across
        // the rewrite so no new leader can race the writer swap.
        let mut st = self.wait_no_flush();
        let mut file = self.file.lock().expect("wal file lock");
        {
            let mut q = self.queue.lock().expect("wal queue lock");
            q.buf.clear();
            q.pending = 0;
            st.flushed_seq = q.next_seq.checked_sub(1);
        }
        file.writer = BufWriter::new(File::create(&self.path)?);
        st.failed = None;
        Ok(())
    }

    /// Block until no flush is in flight, returning the commit-state guard.
    /// While the caller holds it, no leader can be elected.
    fn wait_no_flush(&self) -> std::sync::MutexGuard<'_, CommitState> {
        let mut st = self.commit.lock().expect("wal commit lock");
        while st.flushing {
            st = self.commit_cond.wait(st).expect("wal commit lock");
        }
        st
    }

    /// Compaction truncation: drop every record whose effects the covering
    /// snapshot already contains *per table* — a record survives unless
    /// `applied[table] >= seq`. Unlike [`Self::truncate`], this is safe
    /// while writers are running: an in-flight op that claimed a sequence
    /// number but was not yet published when the snapshot's versions were
    /// pinned has `seq > applied[table]` (claims and publications of one
    /// table are serialized by its write guard), so it is preserved.
    pub(crate) fn truncate_keeping(&self, applied: &BTreeMap<String, u64>) -> Result<(), DbError> {
        let mut st = self.wait_no_flush();
        if let Some(e) = &st.failed {
            return Err(DbError::Io(format!("wal unusable after failed flush: {e}")));
        }
        let mut file = self.file.lock().expect("wal file lock");
        // Flush whatever is buffered so the rewrite below sees every
        // claimed record. Lines enqueued after this point have sequence
        // numbers above anything the snapshot covers and simply flush to
        // the rewritten file later.
        let (chunk, upto) = {
            let mut q = self.queue.lock().expect("wal queue lock");
            q.pending = 0;
            (std::mem::take(&mut q.buf), q.next_seq.checked_sub(1))
        };
        if !chunk.is_empty() {
            if let Err(e) = file
                .writer
                .write_all(&chunk)
                .and_then(|_| file.writer.flush())
            {
                st.failed = Some(e.to_string());
                return Err(e.into());
            }
        } else {
            file.writer.flush()?;
        }
        // Every seq <= upto is now either durable in the file or about to
        // be dropped as snapshot-covered; either way it needs no re-flush.
        st.flushed_seq = upto;

        let mut out = Vec::new();
        for rec in Self::read_records(&self.path)? {
            let covered = applied
                .get(op_table(&rec.op))
                .is_some_and(|&s| s >= rec.seq);
            if !covered {
                let line = serde_json::to_string(&rec)
                    .map_err(|e| DbError::Io(format!("wal rewrite: {e}")))?;
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
            }
        }
        let tmp = self.path.with_extension("wal.tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.path)?;
        file.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        Ok(())
    }

    /// Read all records from a WAL file.
    pub fn read_records(path: impl AsRef<Path>) -> Result<Vec<WalRecord>, DbError> {
        let f = File::open(path.as_ref())?;
        let mut out = Vec::new();
        for (lineno, line) in BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: WalRecord = serde_json::from_str(&line)
                .map_err(|e| DbError::Corrupt(format!("wal line {}: {e}", lineno + 1)))?;
            out.push(rec);
        }
        // Sequence numbers must be strictly increasing.
        for w in out.windows(2) {
            if w[1].seq <= w[0].seq {
                return Err(DbError::Corrupt(format!(
                    "wal sequence regression: {} then {}",
                    w[0].seq, w[1].seq
                )));
            }
        }
        Ok(out)
    }

    /// Replay records into a database, skipping those already covered:
    /// globally (`seq <= after`) or per table (the database's recorded
    /// per-table WAL coverage — seeded by [`Snapshot::load`] — already
    /// includes the record). Refreshes the per-table coverage as it goes.
    pub fn replay_into(
        db: &mut Database,
        records: &[WalRecord],
        after: Option<u64>,
    ) -> Result<usize, DbError> {
        let mut applied = 0;
        for rec in records {
            if let Some(a) = after {
                if rec.seq <= a {
                    continue;
                }
            }
            let table = op_table(&rec.op).to_string();
            if db.applied_seq(&table).is_some_and(|s| s >= rec.seq) {
                continue;
            }
            db.apply_log_op(&rec.op)?;
            db.note_applied(&table, rec.seq);
            applied += 1;
        }
        Ok(applied)
    }
}

/// Full database snapshots.
pub struct Snapshot;

/// A snapshot file: database state, the WAL sequence number it covers
/// globally, and (since per-table compaction) the per-table coverage.
struct SnapshotFile {
    covered_seq: Option<u64>,
    /// Highest WAL seq whose effects each table's saved state includes.
    /// Empty for snapshots written before per-table accounting existed;
    /// [`Snapshot::load`] then falls back to `covered_seq` for every
    /// table (sound there: legacy snapshots were taken under a full lock
    /// cut, so no claimed-but-unpublished op could predate them).
    applied_seqs: BTreeMap<String, u64>,
    database: Database,
}

impl Serialize for SnapshotFile {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("covered_seq".to_string(), self.covered_seq.to_content()),
            ("applied_seqs".to_string(), self.applied_seqs.to_content()),
            ("database".to_string(), self.database.to_content()),
        ])
    }
}

impl Deserialize for SnapshotFile {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| serde::DeError::custom("snapshot: expected map"))?;
        let applied_seqs = if m.iter().any(|(k, _)| k == "applied_seqs") {
            serde::de_field(m, "applied_seqs")?
        } else {
            BTreeMap::new() // legacy snapshot; see the field docs
        };
        Ok(SnapshotFile {
            covered_seq: serde::de_field(m, "covered_seq")?,
            applied_seqs,
            database: serde::de_field(m, "database")?,
        })
    }
}

impl Snapshot {
    /// Write the database (and the WAL seq it includes) to a file.
    pub fn save(
        db: &Database,
        covered_seq: Option<u64>,
        path: impl AsRef<Path>,
    ) -> Result<(), DbError> {
        // Single-threaded engine: everything is applied, so the global
        // coverage is also every table's coverage.
        let applied = match covered_seq {
            Some(cov) => db.table_names().map(|t| (t.to_string(), cov)).collect(),
            None => BTreeMap::new(),
        };
        Self::save_owned(db.clone(), covered_seq, applied, path)
    }

    fn save_owned(
        database: Database,
        covered_seq: Option<u64>,
        applied_seqs: BTreeMap<String, u64>,
        path: impl AsRef<Path>,
    ) -> Result<(), DbError> {
        let file = SnapshotFile {
            covered_seq,
            applied_seqs,
            database,
        };
        let data =
            serde_json::to_vec(&file).map_err(|e| DbError::Io(format!("snapshot encode: {e}")))?;
        Self::write_atomic(path, data)
    }

    /// Encode one table exactly as it appears as a value inside the
    /// snapshot file's `database.tables` map — the unit the compactor's
    /// clean-table cache stores and reuses.
    pub(crate) fn encode_table(table: &crate::table::Table) -> Vec<u8> {
        serde_json::to_vec(table).expect("table JSON encode is infallible")
    }

    /// Assemble and write a snapshot from per-table pre-encoded JSON.
    /// Byte-identical to encoding a whole [`SnapshotFile`] over the same
    /// cut (asserted by test), but a table whose published version has not
    /// moved since the last snapshot costs one buffer copy instead of a
    /// full content-tree build and re-serialization — on archive-dominated
    /// databases that is almost the entire snapshot.
    pub(crate) fn save_encoded(
        tables: &BTreeMap<String, std::sync::Arc<Vec<u8>>>,
        covered_seq: Option<u64>,
        applied_seqs: &BTreeMap<String, u64>,
        path: impl AsRef<Path>,
    ) -> Result<(), DbError> {
        let enc = |e| DbError::Io(format!("snapshot encode: {e}"));
        let covered = serde_json::to_string(&covered_seq).map_err(enc)?;
        let applied = serde_json::to_string(applied_seqs).map_err(enc)?;
        let body: usize = tables.iter().map(|(n, b)| n.len() + b.len() + 4).sum();
        let mut data = Vec::with_capacity(64 + covered.len() + applied.len() + body);
        data.extend_from_slice(b"{\"covered_seq\":");
        data.extend_from_slice(covered.as_bytes());
        data.extend_from_slice(b",\"applied_seqs\":");
        data.extend_from_slice(applied.as_bytes());
        data.extend_from_slice(b",\"database\":{\"tables\":{");
        for (i, (name, bytes)) in tables.iter().enumerate() {
            if i > 0 {
                data.push(b',');
            }
            let key = serde_json::to_string(name).map_err(enc)?;
            data.extend_from_slice(key.as_bytes());
            data.push(b':');
            data.extend_from_slice(bytes);
        }
        data.extend_from_slice(b"}}}");
        Self::write_atomic(path, data)
    }

    /// Write-then-rename for atomicity.
    fn write_atomic(path: impl AsRef<Path>, data: Vec<u8>) -> Result<(), DbError> {
        let tmp = path.as_ref().with_extension("tmp");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, path.as_ref())?;
        Ok(())
    }

    /// Load a snapshot; returns the database (indexes rebuilt, per-table
    /// WAL coverage seeded — from the recorded map, or from `covered_seq`
    /// for legacy snapshots) and the WAL seq it covers globally.
    pub fn load(path: impl AsRef<Path>) -> Result<(Database, Option<u64>), DbError> {
        let data = std::fs::read(path.as_ref())?;
        let file: SnapshotFile = serde_json::from_slice(&data)
            .map_err(|e| DbError::Corrupt(format!("snapshot decode: {e}")))?;
        let mut db = file.database;
        db.rebuild_indexes()?;
        if file.applied_seqs.is_empty() {
            if let Some(cov) = file.covered_seq {
                let seeded = db.table_names().map(|t| (t.to_string(), cov)).collect();
                db.set_applied_seqs(seeded);
            }
        } else {
            db.set_applied_seqs(file.applied_seqs);
        }
        Ok((db, file.covered_seq))
    }
}

/// Recover a database from `snapshot` (if present) + `wal` (if present).
/// Replay filtering is per table: the snapshot's recorded coverage decides,
/// table by table, which records are already included (see
/// [`Wal::truncate_keeping`] for why a global threshold would be unsound
/// once compaction runs concurrently with writers).
pub fn recover(snapshot: Option<&Path>, wal: Option<&Path>) -> Result<Database, DbError> {
    let (mut db, _covered) = match snapshot {
        Some(p) if p.exists() => Snapshot::load(p)?,
        _ => (Database::new(), None),
    };
    if let Some(w) = wal {
        if w.exists() {
            let records = Wal::read_records(w)?;
            Wal::replay_into(&mut db, &records, None)?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::{Value, ValueType};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("simdb_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seed_ops(db: &mut Database) -> Vec<LogOp> {
        let mut ops = Vec::new();
        ops.push(
            db.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap(),
        );
        for i in 0..5 {
            let (_, op) = db.insert("t", &[("v", Value::Int(i))]).unwrap();
            ops.push(op);
        }
        ops
    }

    #[test]
    fn assembled_snapshot_matches_whole_file_encoding() {
        let mut db = Database::new();
        seed_ops(&mut db);
        db.create_table(TableSchema::new(
            "empty",
            vec![Column::new("s", ValueType::Text)],
        ))
        .unwrap();
        let covered = Some(9);
        let applied: BTreeMap<String, u64> = [("t".to_string(), 7u64)].into_iter().collect();
        let reference = serde_json::to_vec(&SnapshotFile {
            covered_seq: covered,
            applied_seqs: applied.clone(),
            database: db.clone(),
        })
        .unwrap();
        let parts: BTreeMap<String, std::sync::Arc<Vec<u8>>> = db
            .table_names()
            .map(|n| {
                let bytes = Snapshot::encode_table(db.table(n).unwrap());
                (n.to_string(), std::sync::Arc::new(bytes))
            })
            .collect();
        let dir = tmpdir("assembled");
        let path = dir.join("snap.json");
        Snapshot::save_encoded(&parts, covered, &applied, &path).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference,
            "stitched per-table snapshot must be byte-identical to a whole-file encode"
        );
        // And it must round-trip through the normal loader.
        let (loaded, cov) = Snapshot::load(&path).unwrap();
        assert_eq!(cov, covered);
        assert_eq!(loaded.count("t", &crate::query::Query::new()).unwrap(), 5);
        assert_eq!(
            loaded.count("empty", &crate::query::Query::new()).unwrap(),
            0
        );
    }

    #[test]
    fn encoder_matches_serde() {
        let ops = vec![
            LogOp::Insert {
                table: "obs".into(),
                id: i64::MAX,
                row: vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Bool(false),
                    Value::Int(0),
                    Value::Int(i64::MIN),
                    Value::Float(1.5),
                    Value::Float(-0.0),
                    Value::Float(3.0),
                    Value::Float(0.1),
                    Value::Float(1e300),
                    Value::Float(f64::NAN),
                    Value::Float(f64::INFINITY),
                    Value::Timestamp(-123456789),
                    Value::Text(String::new()),
                    Value::Text("plain".into()),
                    Value::Text("quo\"te back\\slash\nnew\tline\r\u{8}\u{c}\u{1}".into()),
                    Value::Text("unicode: ∑ßé日本語🌀".into()),
                ],
            },
            LogOp::Update {
                table: "a\"b".into(),
                id: -7,
                row: vec![],
            },
            LogOp::Delete {
                table: "t".into(),
                id: 42,
            },
            LogOp::CreateTable {
                schema: TableSchema::new(
                    "x",
                    vec![Column::new("a", ValueType::Int).not_null().indexed()],
                ),
            },
        ];
        for op in &ops {
            let mut fast = Vec::new();
            encode_op(&mut fast, op).unwrap();
            let via_serde = serde_json::to_string(op).unwrap();
            assert_eq!(
                String::from_utf8(fast).unwrap(),
                via_serde,
                "encoder diverged for {op:?}"
            );
        }
    }

    #[test]
    fn wal_roundtrip() {
        let dir = tmpdir("rt");
        let wal_path = dir.join("db.wal");
        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        let wal = Wal::open(&wal_path).unwrap();
        wal.append(&ops).unwrap();

        let recovered = recover(None, Some(&wal_path)).unwrap();
        assert_eq!(recovered.table("t").unwrap().len(), 5);
    }

    #[test]
    fn wal_reopen_continues_sequence() {
        let dir = tmpdir("seq");
        let wal_path = dir.join("db.wal");
        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        {
            let wal = Wal::open(&wal_path).unwrap();
            assert_eq!(wal.append(&ops).unwrap(), (ops.len() - 1) as u64);
        }
        let wal = Wal::open(&wal_path).unwrap();
        let (_, op) = db.insert("t", &[("v", Value::Int(9))]).unwrap();
        let seq = wal.append(std::slice::from_ref(&op)).unwrap();
        assert_eq!(seq, ops.len() as u64);
        let recs = Wal::read_records(&wal_path).unwrap();
        assert_eq!(recs.len(), ops.len() + 1);
    }

    #[test]
    fn snapshot_plus_wal_suffix() {
        let dir = tmpdir("snap");
        let wal_path = dir.join("db.wal");
        let snap_path = dir.join("db.snap");
        let wal = Wal::open(&wal_path).unwrap();

        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        let last = wal.append(&ops).unwrap();
        Snapshot::save(&db, Some(last), &snap_path).unwrap();

        // post-snapshot activity
        let (_, op1) = db.insert("t", &[("v", Value::Int(100))]).unwrap();
        let rows = db.select("t", &crate::query::Query::new()).unwrap();
        let dels = db.delete("t", rows[0].0).unwrap();
        let mut tail = vec![op1];
        tail.extend(dels);
        wal.append(&tail).unwrap();

        let recovered = recover(Some(&snap_path), Some(&wal_path)).unwrap();
        assert_eq!(recovered.table("t").unwrap().len(), 5);
        let vals: Vec<i64> = recovered
            .select("t", &crate::query::Query::new())
            .unwrap()
            .iter()
            .map(|(_, r)| r[0].as_int().unwrap())
            .collect();
        assert!(vals.contains(&100));
        assert!(!vals.contains(&0));
    }

    #[test]
    fn corrupt_wal_detected() {
        let dir = tmpdir("corrupt");
        let wal_path = dir.join("db.wal");
        std::fs::write(&wal_path, "not json\n").unwrap();
        assert!(matches!(
            Wal::read_records(&wal_path),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn sequence_regression_detected() {
        let dir = tmpdir("reg");
        let wal_path = dir.join("db.wal");
        let op = LogOp::Delete {
            table: "t".into(),
            id: 1,
        };
        let a = serde_json::to_string(&WalRecord {
            seq: 5,
            op: op.clone(),
        })
        .unwrap();
        let b = serde_json::to_string(&WalRecord { seq: 5, op }).unwrap();
        std::fs::write(&wal_path, format!("{a}\n{b}\n")).unwrap();
        assert!(matches!(
            Wal::read_records(&wal_path),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_restores_indexes() {
        let dir = tmpdir("idx");
        let snap_path = dir.join("db.snap");
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            vec![Column::new("name", ValueType::Text).unique()],
        ))
        .unwrap();
        db.insert("t", &[("name", "a".into())]).unwrap();
        Snapshot::save(&db, None, &snap_path).unwrap();
        let (mut loaded, _) = Snapshot::load(&snap_path).unwrap();
        // unique index must be live after load
        assert!(loaded.insert("t", &[("name", "a".into())]).is_err());
        assert!(loaded.insert("t", &[("name", "b".into())]).is_ok());
    }
}
