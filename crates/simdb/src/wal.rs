//! Durability: JSON-lines write-ahead log and full snapshots.
//!
//! The central database is the only channel between AMP's portal and the
//! GridAMP daemon, so losing it loses all workflow state. The `Wal` appends
//! each committed mutation as one JSON line; `Snapshot` serializes the whole
//! database. Recovery = load latest snapshot, then replay the WAL suffix.

use crate::db::{Database, LogOp};
use crate::error::DbError;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One WAL record: a monotonically increasing sequence number plus the op.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WalRecord {
    pub seq: u64,
    pub op: LogOp,
}

/// An append-only write-ahead log backed by a file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
}

#[derive(Debug)]
struct WalInner {
    writer: BufWriter<File>,
    next_seq: u64,
}

impl Wal {
    /// Open (or create) a WAL file, continuing after any existing records.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let path = path.as_ref().to_path_buf();
        let next_seq = if path.exists() {
            Self::read_records(&path)?
                .last()
                .map(|r| r.seq + 1)
                .unwrap_or(0)
        } else {
            0
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                next_seq,
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append ops and flush. Returns the sequence number of the last record.
    pub fn append(&self, ops: &[LogOp]) -> Result<u64, DbError> {
        let mut inner = self.inner.lock().expect("wal lock");
        let mut last = inner.next_seq;
        for op in ops {
            let rec = WalRecord {
                seq: inner.next_seq,
                op: op.clone(),
            };
            let line = serde_json::to_string(&rec)
                .map_err(|e| DbError::Io(format!("wal encode: {e}")))?;
            inner.writer.write_all(line.as_bytes())?;
            inner.writer.write_all(b"\n")?;
            last = inner.next_seq;
            inner.next_seq += 1;
        }
        inner.writer.flush()?;
        Ok(last)
    }

    /// Truncate the log file (after a covering snapshot). The sequence
    /// counter keeps increasing, so records appended later still sort
    /// strictly after the snapshot's covered sequence number.
    pub fn truncate(&self) -> Result<(), DbError> {
        let mut inner = self.inner.lock().expect("wal lock");
        inner.writer = BufWriter::new(File::create(&self.path)?);
        Ok(())
    }

    /// Read all records from a WAL file.
    pub fn read_records(path: impl AsRef<Path>) -> Result<Vec<WalRecord>, DbError> {
        let f = File::open(path.as_ref())?;
        let mut out = Vec::new();
        for (lineno, line) in BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: WalRecord = serde_json::from_str(&line).map_err(|e| {
                DbError::Corrupt(format!("wal line {}: {e}", lineno + 1))
            })?;
            out.push(rec);
        }
        // Sequence numbers must be strictly increasing.
        for w in out.windows(2) {
            if w[1].seq <= w[0].seq {
                return Err(DbError::Corrupt(format!(
                    "wal sequence regression: {} then {}",
                    w[0].seq, w[1].seq
                )));
            }
        }
        Ok(out)
    }

    /// Replay records with `seq > after` into a database.
    pub fn replay_into(
        db: &mut Database,
        records: &[WalRecord],
        after: Option<u64>,
    ) -> Result<usize, DbError> {
        let mut applied = 0;
        for rec in records {
            if let Some(a) = after {
                if rec.seq <= a {
                    continue;
                }
            }
            db.apply_log_op(&rec.op)?;
            applied += 1;
        }
        Ok(applied)
    }
}

/// Full database snapshots.
pub struct Snapshot;

/// A snapshot file: database state plus the WAL sequence number it covers.
#[derive(serde::Serialize, serde::Deserialize)]
struct SnapshotFile {
    covered_seq: Option<u64>,
    database: Database,
}

impl Snapshot {
    /// Write the database (and the WAL seq it includes) to a file.
    pub fn save(
        db: &Database,
        covered_seq: Option<u64>,
        path: impl AsRef<Path>,
    ) -> Result<(), DbError> {
        let file = SnapshotFile {
            covered_seq,
            database: db.clone(),
        };
        let data = serde_json::to_vec(&file)
            .map_err(|e| DbError::Io(format!("snapshot encode: {e}")))?;
        // Write-then-rename for atomicity.
        let tmp = path.as_ref().with_extension("tmp");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, path.as_ref())?;
        Ok(())
    }

    /// Load a snapshot; returns the database (indexes rebuilt) and the WAL
    /// sequence number it covers.
    pub fn load(path: impl AsRef<Path>) -> Result<(Database, Option<u64>), DbError> {
        let data = std::fs::read(path.as_ref())?;
        let file: SnapshotFile = serde_json::from_slice(&data)
            .map_err(|e| DbError::Corrupt(format!("snapshot decode: {e}")))?;
        let mut db = file.database;
        db.rebuild_indexes()?;
        Ok((db, file.covered_seq))
    }
}

/// Recover a database from `snapshot` (if present) + `wal` (if present).
pub fn recover(
    snapshot: Option<&Path>,
    wal: Option<&Path>,
) -> Result<Database, DbError> {
    let (mut db, covered) = match snapshot {
        Some(p) if p.exists() => Snapshot::load(p)?,
        _ => (Database::new(), None),
    };
    if let Some(w) = wal {
        if w.exists() {
            let records = Wal::read_records(w)?;
            Wal::replay_into(&mut db, &records, covered)?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::{Value, ValueType};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("simdb_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seed_ops(db: &mut Database) -> Vec<LogOp> {
        let mut ops = Vec::new();
        ops.push(
            db.create_table(TableSchema::new(
                "t",
                vec![Column::new("v", ValueType::Int)],
            ))
            .unwrap(),
        );
        for i in 0..5 {
            let (_, op) = db.insert("t", &[("v", Value::Int(i))]).unwrap();
            ops.push(op);
        }
        ops
    }

    #[test]
    fn wal_roundtrip() {
        let dir = tmpdir("rt");
        let wal_path = dir.join("db.wal");
        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        let wal = Wal::open(&wal_path).unwrap();
        wal.append(&ops).unwrap();

        let recovered = recover(None, Some(&wal_path)).unwrap();
        assert_eq!(recovered.table("t").unwrap().len(), 5);
    }

    #[test]
    fn wal_reopen_continues_sequence() {
        let dir = tmpdir("seq");
        let wal_path = dir.join("db.wal");
        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        {
            let wal = Wal::open(&wal_path).unwrap();
            assert_eq!(wal.append(&ops).unwrap(), (ops.len() - 1) as u64);
        }
        let wal = Wal::open(&wal_path).unwrap();
        let (_, op) = db.insert("t", &[("v", Value::Int(9))]).unwrap();
        let seq = wal.append(std::slice::from_ref(&op)).unwrap();
        assert_eq!(seq, ops.len() as u64);
        let recs = Wal::read_records(&wal_path).unwrap();
        assert_eq!(recs.len(), ops.len() + 1);
    }

    #[test]
    fn snapshot_plus_wal_suffix() {
        let dir = tmpdir("snap");
        let wal_path = dir.join("db.wal");
        let snap_path = dir.join("db.snap");
        let wal = Wal::open(&wal_path).unwrap();

        let mut db = Database::new();
        let ops = seed_ops(&mut db);
        let last = wal.append(&ops).unwrap();
        Snapshot::save(&db, Some(last), &snap_path).unwrap();

        // post-snapshot activity
        let (_, op1) = db.insert("t", &[("v", Value::Int(100))]).unwrap();
        let rows = db.select("t", &crate::query::Query::new()).unwrap();
        let dels = db.delete("t", rows[0].0).unwrap();
        let mut tail = vec![op1];
        tail.extend(dels);
        wal.append(&tail).unwrap();

        let recovered = recover(Some(&snap_path), Some(&wal_path)).unwrap();
        assert_eq!(recovered.table("t").unwrap().len(), 5);
        let vals: Vec<i64> = recovered
            .select("t", &crate::query::Query::new())
            .unwrap()
            .iter()
            .map(|(_, r)| r[0].as_int().unwrap())
            .collect();
        assert!(vals.contains(&100));
        assert!(!vals.contains(&0));
    }

    #[test]
    fn corrupt_wal_detected() {
        let dir = tmpdir("corrupt");
        let wal_path = dir.join("db.wal");
        std::fs::write(&wal_path, "not json\n").unwrap();
        assert!(matches!(
            Wal::read_records(&wal_path),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn sequence_regression_detected() {
        let dir = tmpdir("reg");
        let wal_path = dir.join("db.wal");
        let op = LogOp::Delete {
            table: "t".into(),
            id: 1,
        };
        let a = serde_json::to_string(&WalRecord { seq: 5, op: op.clone() }).unwrap();
        let b = serde_json::to_string(&WalRecord { seq: 5, op }).unwrap();
        std::fs::write(&wal_path, format!("{a}\n{b}\n")).unwrap();
        assert!(matches!(
            Wal::read_records(&wal_path),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_restores_indexes() {
        let dir = tmpdir("idx");
        let snap_path = dir.join("db.snap");
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            vec![Column::new("name", ValueType::Text).unique()],
        ))
        .unwrap();
        db.insert("t", &[("name", "a".into())]).unwrap();
        Snapshot::save(&db, None, &snap_path).unwrap();
        let (mut loaded, _) = Snapshot::load(&snap_path).unwrap();
        // unique index must be live after load
        assert!(loaded.insert("t", &[("name", "a".into())]).is_err());
        assert!(loaded.insert("t", &[("name", "b".into())]).is_ok());
    }
}
