//! Role-based table permissions.
//!
//! AMP "wanted to use database permissions to carefully control access to
//! database tables on a per-user basis" (§4). The portal connects with the
//! `web` role and the GridAMP daemon with the `daemon` role; each is granted
//! only the table operations it needs, so even a fully compromised web
//! server cannot touch grid-side state it has no business writing (paper
//! §3's isolation argument). `admin` bypasses all checks.

use crate::error::DbError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The four grantable operations on a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermSet {
    pub select: bool,
    pub insert: bool,
    pub update: bool,
    pub delete: bool,
}

impl PermSet {
    pub const ALL: PermSet = PermSet {
        select: true,
        insert: true,
        update: true,
        delete: true,
    };
    pub const READ_ONLY: PermSet = PermSet {
        select: true,
        insert: false,
        update: false,
        delete: false,
    };
    pub const NONE: PermSet = PermSet {
        select: false,
        insert: false,
        update: false,
        delete: false,
    };

    pub fn allows(&self, action: Action) -> bool {
        match action {
            Action::Select => self.select,
            Action::Insert => self.insert,
            Action::Update => self.update,
            Action::Delete => self.delete,
        }
    }
}

/// A database action subject to permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Select,
    Insert,
    Update,
    Delete,
}

impl Action {
    pub fn name(self) -> &'static str {
        match self {
            Action::Select => "SELECT",
            Action::Insert => "INSERT",
            Action::Update => "UPDATE",
            Action::Delete => "DELETE",
        }
    }
}

/// A named role with per-table grants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Role {
    pub name: String,
    /// True for the superuser role: all checks pass, including on tables
    /// created after the role.
    pub superuser: bool,
    grants: HashMap<String, PermSet>,
}

impl Role {
    pub fn new(name: &str) -> Self {
        Role {
            name: name.to_string(),
            superuser: false,
            grants: HashMap::new(),
        }
    }

    pub fn superuser(name: &str) -> Self {
        Role {
            name: name.to_string(),
            superuser: true,
            grants: HashMap::new(),
        }
    }

    pub fn grant(mut self, table: &str, perms: PermSet) -> Self {
        self.grants.insert(table.to_string(), perms);
        self
    }

    pub fn grant_mut(&mut self, table: &str, perms: PermSet) {
        self.grants.insert(table.to_string(), perms);
    }

    pub fn revoke(&mut self, table: &str) {
        self.grants.remove(table);
    }

    /// Check an action; tables without an explicit grant deny everything.
    pub fn check(&self, table: &str, action: Action) -> Result<(), DbError> {
        if self.superuser {
            return Ok(());
        }
        let allowed = self
            .grants
            .get(table)
            .map(|p| p.allows(action))
            .unwrap_or(false);
        if allowed {
            Ok(())
        } else {
            Err(DbError::PermissionDenied {
                role: self.name.clone(),
                table: table.to_string(),
                action: action.name(),
            })
        }
    }

    pub fn grants(&self) -> impl Iterator<Item = (&str, &PermSet)> {
        self.grants.iter().map(|(t, p)| (t.as_str(), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deny() {
        let r = Role::new("web");
        assert!(r.check("anything", Action::Select).is_err());
    }

    #[test]
    fn grants_are_per_action() {
        let r = Role::new("web").grant("star", PermSet::READ_ONLY);
        assert!(r.check("star", Action::Select).is_ok());
        assert!(r.check("star", Action::Insert).is_err());
        assert!(r.check("star", Action::Delete).is_err());
    }

    #[test]
    fn superuser_bypasses() {
        let r = Role::superuser("admin");
        assert!(r.check("whatever", Action::Delete).is_ok());
    }

    #[test]
    fn revoke_restores_default_deny() {
        let mut r = Role::new("d").grant("t", PermSet::ALL);
        assert!(r.check("t", Action::Delete).is_ok());
        r.revoke("t");
        assert!(r.check("t", Action::Select).is_err());
    }

    #[test]
    fn error_carries_context() {
        let r = Role::new("web");
        match r.check("grid_job", Action::Update) {
            Err(DbError::PermissionDenied {
                role,
                table,
                action,
            }) => {
                assert_eq!(role, "web");
                assert_eq!(table, "grid_job");
                assert_eq!(action, "UPDATE");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
