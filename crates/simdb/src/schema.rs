//! Table schemas: columns, constraints, and foreign keys.
//!
//! Mirrors the subset of the Django ORM's schema machinery that AMP used:
//! typed columns, `NOT NULL`, `UNIQUE`, length-bounded text, defaults, and
//! foreign keys with `ON DELETE` behaviour. The paper (§4) stresses "direct
//! and explicit control of the database schema" — schemas here are explicit
//! values, inspectable and diffable, and the ORM layer generates them from
//! model definitions with "perfect table/field/type correspondence".

use crate::error::DbError;
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// What happens to referencing rows when a referenced row is deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnDelete {
    /// Refuse the delete while references exist.
    Restrict,
    /// Delete referencing rows too (recursively).
    Cascade,
    /// Null out the referencing column (requires the column be nullable).
    SetNull,
}

/// A foreign-key constraint on a column. The referenced column is always the
/// target table's implicit `id` primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub references: String,
    pub on_delete: OnDelete,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ValueType,
    pub not_null: bool,
    pub unique: bool,
    /// Maximum length for `Text` columns (like Django's `max_length`).
    pub max_length: Option<usize>,
    /// Applied when an insert omits the column.
    pub default: Option<Value>,
    pub foreign_key: Option<ForeignKey>,
    /// Maintain a secondary (non-unique) index on this column.
    pub indexed: bool,
}

impl Column {
    pub fn new(name: &str, ty: ValueType) -> Self {
        Column {
            name: name.to_string(),
            ty,
            not_null: false,
            unique: false,
            max_length: None,
            default: None,
            foreign_key: None,
            indexed: false,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    pub fn max_length(mut self, n: usize) -> Self {
        self.max_length = Some(n);
        self
    }

    pub fn default(mut self, v: impl Into<Value>) -> Self {
        self.default = Some(v.into());
        self
    }

    pub fn references(mut self, table: &str, on_delete: OnDelete) -> Self {
        self.foreign_key = Some(ForeignKey {
            references: table.to_string(),
            on_delete,
        });
        self
    }

    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }

    /// Validate a candidate cell value against this column's constraints
    /// (type, nullability, text length). Uniqueness and FK existence are
    /// table/database-level checks.
    pub fn check_value(&self, table: &str, v: &Value) -> Result<(), DbError> {
        if v.is_null() {
            if self.not_null {
                return Err(DbError::NotNullViolation {
                    table: table.to_string(),
                    column: self.name.clone(),
                });
            }
            return Ok(());
        }
        if !v.conforms_to(self.ty) {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: self.name.clone(),
                expected: self.ty,
                got: v.clone(),
            });
        }
        if let (Some(max), Value::Text(s)) = (self.max_length, v) {
            if s.chars().count() > max {
                return Err(DbError::LengthViolation {
                    table: table.to_string(),
                    column: self.name.clone(),
                    max,
                    got: s.chars().count(),
                });
            }
        }
        Ok(())
    }
}

/// A table schema. Every table has an implicit auto-increment `id` primary
/// key (as in Django); `columns` lists the remaining columns in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.to_string(),
            columns,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Validate internal consistency: unique column names, FK targets that
    /// use `SetNull` must be nullable, sensible defaults.
    pub fn validate(&self) -> Result<(), DbError> {
        for (i, c) in self.columns.iter().enumerate() {
            if c.name == "id" {
                return Err(DbError::Schema(format!(
                    "table {}: column name 'id' is reserved for the primary key",
                    self.name
                )));
            }
            if self.columns[i + 1..].iter().any(|o| o.name == c.name) {
                return Err(DbError::Schema(format!(
                    "table {}: duplicate column {}",
                    self.name, c.name
                )));
            }
            if let Some(fk) = &c.foreign_key {
                if c.ty != ValueType::Int {
                    return Err(DbError::Schema(format!(
                        "table {}: FK column {} must be Int",
                        self.name, c.name
                    )));
                }
                if fk.on_delete == OnDelete::SetNull && c.not_null {
                    return Err(DbError::Schema(format!(
                        "table {}: FK column {} is NOT NULL but ON DELETE SET NULL",
                        self.name, c.name
                    )));
                }
            }
            if let Some(d) = &c.default {
                c.check_value(&self.name, d)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> TableSchema {
        TableSchema::new(
            "star",
            vec![
                Column::new("name", ValueType::Text)
                    .not_null()
                    .max_length(8),
                Column::new("mass", ValueType::Float),
                Column::new("catalog_id", ValueType::Int).references("catalog", OnDelete::Cascade),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let s = demo_schema();
        assert_eq!(s.column_index("mass"), Some(1));
        assert!(s.column("nope").is_none());
    }

    #[test]
    fn value_checks() {
        let s = demo_schema();
        let name = s.column("name").unwrap();
        assert!(name.check_value("star", &Value::Text("ok".into())).is_ok());
        assert!(name.check_value("star", &Value::Null).is_err());
        assert!(name.check_value("star", &Value::Int(3)).is_err());
        assert!(name
            .check_value("star", &Value::Text("waytoolongname".into()))
            .is_err());
        let mass = s.column("mass").unwrap();
        assert!(mass.check_value("star", &Value::Null).is_ok());
    }

    #[test]
    fn schema_validation_catches_duplicates_and_reserved() {
        let dup = TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Int),
                Column::new("a", ValueType::Int),
            ],
        );
        assert!(dup.validate().is_err());
        let reserved = TableSchema::new("t", vec![Column::new("id", ValueType::Int)]);
        assert!(reserved.validate().is_err());
    }

    #[test]
    fn fk_set_null_requires_nullable() {
        let bad = TableSchema::new(
            "t",
            vec![Column::new("r", ValueType::Int)
                .not_null()
                .references("o", OnDelete::SetNull)],
        );
        assert!(bad.validate().is_err());
        let good = TableSchema::new(
            "t",
            vec![Column::new("r", ValueType::Int).references("o", OnDelete::SetNull)],
        );
        assert!(good.validate().is_ok());
    }

    #[test]
    fn fk_must_be_int() {
        let bad = TableSchema::new(
            "t",
            vec![Column::new("r", ValueType::Text).references("o", OnDelete::Cascade)],
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn bad_default_rejected() {
        let bad = TableSchema::new("t", vec![Column::new("a", ValueType::Int).default("text")]);
        assert!(bad.validate().is_err());
    }
}
