//! Typed cell values and the column type lattice.
//!
//! The AMP security model (paper §3) depends on *strict data type
//! constraints* on every table: "Incoming user data is parsed by the web
//! server and uploaded to database tables with strict data type
//! constraints." `Value` and `ValueType` are the enforcement point — a cell
//! can only be stored if its runtime type matches the declared column type.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float. `NaN` is rejected at the door so ordering is total.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 text, optionally bounded by `Column::max_length`.
    Text,
    /// Milliseconds since the UNIX epoch (virtual or real time).
    Timestamp,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Bool => "BOOL",
            ValueType::Text => "TEXT",
            ValueType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Null` is a member of every type; whether a column admits it is governed
/// by `Column::not_null`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Text(String),
    Timestamp(i64),
}

impl Value {
    /// The runtime type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Text(_) => Some(ValueType::Text),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
        }
    }

    /// True if this value may be stored in a column of type `ty`
    /// (ignoring nullability, which the schema checks separately).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_timestamp(&self) -> Option<i64> {
        match self {
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Total ordering used by indexes and `ORDER BY`.
    ///
    /// `Null` sorts before everything; values of different types sort by a
    /// fixed type rank (only reachable when comparing across columns, which
    /// the query layer never does).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Timestamp(_) => 4,
                Value::Text(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for constraint/index purposes (floats by bit-equivalent
    /// `total_cmp`, so `-0.0 != 0.0` — acceptable for key use).
    pub fn key_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.key_eq(other)
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "@{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Hash key wrapper so `Value` can key unique/secondary indexes.
///
/// Floats are hashed by bit pattern, consistent with `key_eq`. The `Ord`
/// impl delegates to [`Value::total_cmp`], so the same wrapper also keys
/// the ordered (`BTreeMap`) companion indexes used for range scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueKey(pub Value);

impl PartialOrd for ValueKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for ValueKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Bool(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Value::Text(v) => {
                4u8.hash(state);
                v.hash(state);
            }
            Value::Timestamp(v) => {
                5u8.hash(state);
                v.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_conformance() {
        assert!(Value::Int(3).conforms_to(ValueType::Int));
        assert!(!Value::Int(3).conforms_to(ValueType::Float));
        assert!(Value::Null.conforms_to(ValueType::Text));
        assert!(Value::Text("x".into()).conforms_to(ValueType::Text));
        assert!(!Value::Bool(true).conforms_to(ValueType::Int));
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vals = [Value::Int(5), Value::Null, Value::Int(-1), Value::Int(3)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(vals[3], Value::Int(5));
    }

    #[test]
    fn float_total_order_handles_negatives() {
        assert_eq!(
            Value::Float(-1.0).total_cmp(&Value::Float(2.0)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(2.0).total_cmp(&Value::Float(2.0)),
            Ordering::Equal
        );
    }

    #[test]
    fn display_roundtrip_smoke() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(12).to_string(), "@12");
    }

    #[test]
    fn option_conversion() {
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::Int(3));
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
    }
}
