//! The database engine: tables, referential integrity, mutation log.
//!
//! `Database` is the single-threaded engine used for WAL replay, snapshot
//! (de)serialization, and the property-test oracles. The live, concurrent
//! engine is the per-table sharded catalog in [`crate::shard`]; both run
//! the *same* mutation logic, which lives in [`ops`] and is generic over a
//! [`TableSet`] — "some tables I may read and write, plus the schema-level
//! reverse-FK edges". `Database` implements `TableSet` over all its
//! tables; a sharded write set implements it over exactly the tables its
//! ordered lock acquisition covered.

use crate::error::DbError;
use crate::query::Query;
use crate::schema::{OnDelete, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Table access required by the shared mutation engine in [`ops`].
///
/// `table_ref`/`table_mut` resolve tables the current operation is allowed
/// to touch; `referencing_columns` answers the schema-level question "who
/// holds a foreign key into `target`?" (needed to plan delete cascades),
/// which must cover *every* table in the database, not just the locked
/// set — FK edges are immutable after DDL, so implementations can serve it
/// from a catalog snapshot without holding row locks.
pub(crate) trait TableSet {
    fn table_ref(&self, name: &str) -> Result<&Table, DbError>;
    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError>;
    /// `(referencing table, column index, on_delete)` of every FK column
    /// in the database whose target is `target`.
    fn referencing_columns(&self, target: &str) -> Vec<(String, usize, OnDelete)>;
    /// Bump the table's modification counter — must happen under the same
    /// exclusive access as the data change itself.
    fn bump_version(&mut self, table: &str);
}

/// A committed mutation, as recorded in the write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogOp {
    CreateTable { schema: TableSchema },
    Insert { table: String, id: i64, row: Row },
    Update { table: String, id: i64, row: Row },
    Delete { table: String, id: i64 },
}

/// The in-memory relational engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Monotone per-table modification counters, bumped on every committed
    /// insert/update/delete (and at table creation) under the same exclusive
    /// access as the data change itself. Consumers that stamp derived state
    /// (e.g. the portal's response cache) compare these to detect precisely
    /// which tables changed. Runtime-only: rebuilt from zero on load.
    #[serde(skip)]
    versions: BTreeMap<String, u64>,
    /// Highest WAL sequence number applied per table during recovery.
    /// Runtime-only bookkeeping threaded from the snapshot's per-table
    /// coverage through replay into the sharded catalog, where commits
    /// keep it current and compaction persists it again. Not serialized
    /// here — the snapshot file carries it alongside the database.
    #[serde(skip)]
    applied_seqs: BTreeMap<String, u64>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    pub fn create_table(&mut self, schema: TableSchema) -> Result<LogOp, DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        // FK targets must exist (or be the table itself, for self-reference).
        for c in &schema.columns {
            if let Some(fk) = &c.foreign_key {
                if fk.references != schema.name && !self.tables.contains_key(&fk.references) {
                    return Err(DbError::Schema(format!(
                        "table {}: FK column {} references missing table {}",
                        schema.name, c.name, fk.references
                    )));
                }
            }
        }
        let table = Table::new(schema.clone())?;
        self.tables.insert(schema.name.clone(), table);
        self.bump_version(&schema.name);
        Ok(LogOp::CreateTable { schema })
    }

    /// Current modification counter for `table` (0 for untouched/unknown
    /// tables). Strictly increases with every committed mutation of the
    /// table, atomically with the data change.
    pub fn table_version(&self, table: &str) -> u64 {
        self.versions.get(table).copied().unwrap_or(0)
    }

    fn bump_version(&mut self, table: &str) {
        *self.versions.entry(table.to_string()).or_insert(0) += 1;
    }

    /// Record that `table`'s state includes the effects of WAL record
    /// `seq` (recovery replay; see `applied_seqs`).
    pub(crate) fn note_applied(&mut self, table: &str, seq: u64) {
        let e = self.applied_seqs.entry(table.to_string()).or_insert(0);
        *e = (*e).max(seq);
    }

    /// Seed the per-table WAL coverage map wholesale (from a snapshot's
    /// recorded coverage, before replay refines it).
    pub(crate) fn set_applied_seqs(&mut self, applied: BTreeMap<String, u64>) {
        self.applied_seqs = applied;
    }

    pub(crate) fn applied_seq(&self, table: &str) -> Option<u64> {
        self.applied_seqs.get(table).copied()
    }

    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Build a full row from named values, applying defaults and Null for
    /// omitted columns, and rejecting unknown column names.
    pub fn build_row(&self, table: &str, values: &[(&str, Value)]) -> Result<Row, DbError> {
        ops::build_row(self, table, values)
    }

    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<(i64, LogOp), DbError> {
        ops::insert_row(self, table, row)
    }

    /// Insert from named values (defaults applied).
    pub fn insert(
        &mut self,
        table: &str,
        values: &[(&str, Value)],
    ) -> Result<(i64, LogOp), DbError> {
        ops::insert(self, table, values)
    }

    /// Replace a whole row.
    pub fn update_row(&mut self, table: &str, id: i64, row: Row) -> Result<LogOp, DbError> {
        ops::update_row(self, table, id, row)
    }

    /// Update selected columns of a row.
    pub fn update(
        &mut self,
        table: &str,
        id: i64,
        values: &[(&str, Value)],
    ) -> Result<LogOp, DbError> {
        ops::update(self, table, id, values)
    }

    /// Delete a row, honouring FK `ON DELETE` semantics atomically: the
    /// whole cascade is planned (and `Restrict` violations detected) before
    /// any mutation happens.
    pub fn delete(&mut self, table: &str, id: i64) -> Result<Vec<LogOp>, DbError> {
        ops::delete(self, table, id)
    }

    /// Decompose into table storage, per-table version counters, and
    /// per-table WAL coverage (building the sharded runtime catalog after
    /// recovery).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        BTreeMap<String, Table>,
        BTreeMap<String, u64>,
        BTreeMap<String, u64>,
    ) {
        (self.tables, self.versions, self.applied_seqs)
    }

    pub fn select(&self, table: &str, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
        query.execute(self.table(table)?)
    }

    /// Single-column projection of a query: `(id, cell)` pairs without
    /// cloning whole rows (see [`Query::project`]).
    pub fn select_project(
        &self,
        table: &str,
        query: &Query,
        column: &str,
    ) -> Result<Vec<(i64, Value)>, DbError> {
        query.project(self.table(table)?, column)
    }

    pub fn get(&self, table: &str, id: i64) -> Result<Row, DbError> {
        self.table(table)?
            .get(id)
            .cloned()
            .ok_or_else(|| DbError::NoSuchRow {
                table: table.to_string(),
                id,
            })
    }

    /// Planner-driven count: never materializes or clones a row.
    pub fn count(&self, table: &str, query: &Query) -> Result<usize, DbError> {
        query.count(self.table(table)?)
    }

    /// Apply a logged operation (WAL replay path).
    pub fn apply_log_op(&mut self, op: &LogOp) -> Result<(), DbError> {
        match op {
            LogOp::CreateTable { schema } => {
                self.create_table(schema.clone())?;
            }
            LogOp::Insert { table, id, row } => {
                self.table_mut(table)?.insert_with_id(*id, row.clone())?;
                self.bump_version(table);
            }
            LogOp::Update { table, id, row } => {
                self.table_mut(table)?.update(*id, row.clone())?;
                self.bump_version(table);
            }
            LogOp::Delete { table, id } => {
                self.table_mut(table)?.delete(*id)?;
                self.bump_version(table);
            }
        }
        Ok(())
    }

    /// Rebuild every table's indexes (after snapshot deserialization).
    pub fn rebuild_indexes(&mut self) -> Result<(), DbError> {
        for t in self.tables.values_mut() {
            t.rebuild_indexes()?;
        }
        Ok(())
    }
}

impl TableSet for Database {
    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        self.table(name)
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        Database::table_mut(self, name)
    }

    fn referencing_columns(&self, target: &str) -> Vec<(String, usize, OnDelete)> {
        let mut out = Vec::new();
        for (name, t) in &self.tables {
            for (ci, c) in t.schema.columns.iter().enumerate() {
                if let Some(fk) = &c.foreign_key {
                    if fk.references == target {
                        out.push((name.clone(), ci, fk.on_delete));
                    }
                }
            }
        }
        out
    }

    fn bump_version(&mut self, table: &str) {
        Database::bump_version(self, table)
    }
}

/// The shared mutation engine: referential integrity, row construction and
/// the cascade planner, generic over [`TableSet`]. The single-threaded
/// [`Database`] and the sharded engine's ordered write sets both route
/// every mutation through these functions, so the two cannot drift.
pub(crate) mod ops {
    use super::*;

    /// Build a full row from named values, applying defaults and Null for
    /// omitted columns, and rejecting unknown column names.
    pub fn build_row<TS: TableSet>(
        ts: &TS,
        table: &str,
        values: &[(&str, Value)],
    ) -> Result<Row, DbError> {
        let t = ts.table_ref(table)?;
        for (name, _) in values {
            if t.schema.column_index(name).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: table.to_string(),
                    column: name.to_string(),
                });
            }
        }
        let row: Row = t
            .schema
            .columns
            .iter()
            .map(|c| {
                values
                    .iter()
                    .find(|(n, _)| *n == c.name)
                    .map(|(_, v)| v.clone())
                    .or_else(|| c.default.clone())
                    .unwrap_or(Value::Null)
            })
            .collect();
        Ok(row)
    }

    /// Check all FK columns of `row` reference existing rows.
    fn check_foreign_keys<TS: TableSet>(ts: &TS, table: &str, row: &Row) -> Result<(), DbError> {
        let t = ts.table_ref(table)?;
        for (col, val) in t.schema.columns.iter().zip(row.iter()) {
            if let (Some(fk), Value::Int(id)) = (&col.foreign_key, val) {
                let target = ts.table_ref(&fk.references)?;
                if target.get(*id).is_none() {
                    return Err(DbError::ForeignKeyViolation {
                        table: table.to_string(),
                        detail: format!(
                            "{}.{} = {} has no match in {}",
                            table, col.name, id, fk.references
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    pub fn insert_row<TS: TableSet>(
        ts: &mut TS,
        table: &str,
        row: Row,
    ) -> Result<(i64, LogOp), DbError> {
        check_foreign_keys(ts, table, &row)?;
        let id = ts.table_mut(table)?.insert(row.clone())?;
        ts.bump_version(table);
        Ok((
            id,
            LogOp::Insert {
                table: table.to_string(),
                id,
                row,
            },
        ))
    }

    pub fn insert<TS: TableSet>(
        ts: &mut TS,
        table: &str,
        values: &[(&str, Value)],
    ) -> Result<(i64, LogOp), DbError> {
        let row = build_row(ts, table, values)?;
        insert_row(ts, table, row)
    }

    pub fn update_row<TS: TableSet>(
        ts: &mut TS,
        table: &str,
        id: i64,
        row: Row,
    ) -> Result<LogOp, DbError> {
        check_foreign_keys(ts, table, &row)?;
        ts.table_mut(table)?.update(id, row.clone())?;
        ts.bump_version(table);
        Ok(LogOp::Update {
            table: table.to_string(),
            id,
            row,
        })
    }

    pub fn update<TS: TableSet>(
        ts: &mut TS,
        table: &str,
        id: i64,
        values: &[(&str, Value)],
    ) -> Result<LogOp, DbError> {
        let t = ts.table_ref(table)?;
        let mut row = t.get(id).cloned().ok_or_else(|| DbError::NoSuchRow {
            table: table.to_string(),
            id,
        })?;
        for (name, v) in values {
            let ci = t
                .schema
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: table.to_string(),
                    column: name.to_string(),
                })?;
            row[ci] = v.clone();
        }
        update_row(ts, table, id, row)
    }

    /// Plan the full effect of deleting `(table, id)`: the ordered list of
    /// cascade deletes (leaf-first) and SET NULL updates. Fails on
    /// `Restrict` references without mutating anything.
    fn plan_delete<TS: TableSet>(
        ts: &TS,
        table: &str,
        id: i64,
        deletes: &mut Vec<(String, i64)>,
        set_nulls: &mut Vec<(String, i64, usize)>,
    ) -> Result<(), DbError> {
        if deletes.iter().any(|(t, i)| t == table && *i == id) {
            return Ok(()); // already planned (self-referential cycles)
        }
        deletes.push((table.to_string(), id));
        for (ref_table, ci, on_delete) in ts.referencing_columns(table) {
            let t = ts.table_ref(&ref_table)?;
            let refs: Vec<i64> = match t.find_indexed(ci, &Value::Int(id)) {
                Some(hits) => hits.to_vec(),
                None => t
                    .iter()
                    .filter(|(_, r)| r[ci] == Value::Int(id))
                    .map(|(rid, _)| rid)
                    .collect(),
            };
            for rid in refs {
                match on_delete {
                    OnDelete::Restrict => {
                        return Err(DbError::ForeignKeyViolation {
                            table: table.to_string(),
                            detail: format!(
                                "row {id} is referenced by {ref_table}[{rid}] (RESTRICT)"
                            ),
                        });
                    }
                    OnDelete::Cascade => {
                        plan_delete(ts, &ref_table, rid, deletes, set_nulls)?;
                    }
                    OnDelete::SetNull => {
                        set_nulls.push((ref_table.clone(), rid, ci));
                    }
                }
            }
        }
        Ok(())
    }

    pub fn delete<TS: TableSet>(ts: &mut TS, table: &str, id: i64) -> Result<Vec<LogOp>, DbError> {
        if ts.table_ref(table)?.get(id).is_none() {
            return Err(DbError::NoSuchRow {
                table: table.to_string(),
                id,
            });
        }
        let mut deletes = Vec::new();
        let mut set_nulls = Vec::new();
        plan_delete(ts, table, id, &mut deletes, &mut set_nulls)?;

        let mut log = Vec::new();
        // SET NULLs first so no dangling references appear mid-way; skip
        // rows that are themselves being deleted.
        for (t, rid, ci) in set_nulls {
            if deletes.iter().any(|(dt, di)| *dt == t && *di == rid) {
                continue;
            }
            let mut row = ts.table_ref(&t)?.get(rid).cloned().expect("planned row");
            row[ci] = Value::Null;
            ts.table_mut(&t)?.update(rid, row.clone())?;
            log.push(LogOp::Update {
                table: t,
                id: rid,
                row,
            });
        }
        // Delete leaf-first (reverse plan order).
        for (t, rid) in deletes.into_iter().rev() {
            ts.table_mut(&t)?.delete(rid)?;
            log.push(LogOp::Delete { table: t, id: rid });
        }
        for op in &log {
            match op {
                LogOp::Update { table, .. } | LogOp::Delete { table, .. } => ts.bump_version(table),
                _ => {}
            }
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "catalog",
            vec![Column::new("name", ValueType::Text).not_null().unique()],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "star",
            vec![
                Column::new("name", ValueType::Text).not_null().unique(),
                Column::new("catalog_id", ValueType::Int).references("catalog", OnDelete::Cascade),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "sim",
            vec![
                Column::new("star_id", ValueType::Int)
                    .not_null()
                    .references("star", OnDelete::Restrict),
                Column::new("note_id", ValueType::Int).references("catalog", OnDelete::SetNull),
            ],
        ))
        .unwrap();
        db
    }

    #[test]
    fn insert_with_defaults_and_unknown_column() {
        let mut db = db();
        let (id, _) = db.insert("catalog", &[("name", "kepler".into())]).unwrap();
        assert_eq!(id, 1);
        assert!(matches!(
            db.insert("catalog", &[("nope", Value::Int(1))]),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn fk_existence_enforced() {
        let mut db = db();
        assert!(matches!(
            db.insert(
                "star",
                &[("name", "HD1".into()), ("catalog_id", Value::Int(99))]
            ),
            Err(DbError::ForeignKeyViolation { .. })
        ));
        let (cid, _) = db.insert("catalog", &[("name", "kepler".into())]).unwrap();
        assert!(db
            .insert(
                "star",
                &[("name", "HD1".into()), ("catalog_id", Value::Int(cid))]
            )
            .is_ok());
    }

    #[test]
    fn delete_cascades_and_sets_null() {
        let mut db = db();
        let (cid, _) = db.insert("catalog", &[("name", "kepler".into())]).unwrap();
        let (sid, _) = db
            .insert(
                "star",
                &[("name", "HD1".into()), ("catalog_id", Value::Int(cid))],
            )
            .unwrap();
        // sim restricts star delete but not catalog delete
        let (_mid, _) = db
            .insert(
                "sim",
                &[("star_id", Value::Int(sid)), ("note_id", Value::Int(cid))],
            )
            .unwrap();
        // star is referenced with RESTRICT via sim -> cascade from catalog
        // would delete star, which is restricted
        let err = db.delete("catalog", cid);
        assert!(matches!(err, Err(DbError::ForeignKeyViolation { .. })));
        // nothing was mutated by the failed plan
        assert_eq!(db.table("star").unwrap().len(), 1);
        assert_eq!(db.table("sim").unwrap().len(), 1);

        // remove the restricting row, then cascade works and nulls note_id
        let (mid2, _) = db
            .insert(
                "sim",
                &[("star_id", Value::Int(sid)), ("note_id", Value::Int(cid))],
            )
            .unwrap();
        db.delete("sim", mid2).unwrap();
        let sims = db.select("sim", &Query::new()).unwrap();
        db.delete("sim", sims[0].0).unwrap();
        let ops = db.delete("catalog", cid).unwrap();
        assert!(db.table("star").unwrap().is_empty());
        assert!(db.table("catalog").unwrap().is_empty());
        assert!(ops
            .iter()
            .any(|o| matches!(o, LogOp::Delete { table, .. } if table == "star")));
    }

    #[test]
    fn set_null_on_surviving_reference() {
        let mut db = db();
        let (c1, _) = db.insert("catalog", &[("name", "a".into())]).unwrap();
        let (c2, _) = db.insert("catalog", &[("name", "b".into())]).unwrap();
        let (sid, _) = db
            .insert(
                "star",
                &[("name", "HD1".into()), ("catalog_id", Value::Int(c2))],
            )
            .unwrap();
        db.insert(
            "sim",
            &[("star_id", Value::Int(sid)), ("note_id", Value::Int(c1))],
        )
        .unwrap();
        db.delete("catalog", c1).unwrap();
        let sims = db.select("sim", &Query::new()).unwrap();
        assert_eq!(sims.len(), 1);
        assert!(sims[0].1[1].is_null());
    }

    #[test]
    fn partial_update() {
        let mut db = db();
        let (cid, _) = db.insert("catalog", &[("name", "kepler".into())]).unwrap();
        db.update("catalog", cid, &[("name", "kic".into())])
            .unwrap();
        assert_eq!(db.get("catalog", cid).unwrap()[0], "kic".into());
    }

    #[test]
    fn log_replay_reproduces_state() {
        let mut db = db();
        let mut ops = Vec::new();
        let (cid, op) = db.insert("catalog", &[("name", "kepler".into())]).unwrap();
        ops.push(op);
        let (sid, op) = db
            .insert(
                "star",
                &[("name", "HD1".into()), ("catalog_id", Value::Int(cid))],
            )
            .unwrap();
        ops.push(op);
        ops.push(db.update("star", sid, &[("name", "HD2".into())]).unwrap());
        ops.extend(db.delete("catalog", cid).unwrap());

        let mut replay = Database::new();
        replay
            .create_table(db.table("catalog").unwrap().schema.clone())
            .unwrap();
        replay
            .create_table(db.table("star").unwrap().schema.clone())
            .unwrap();
        for op in &ops {
            replay.apply_log_op(op).unwrap();
        }
        assert!(replay.table("star").unwrap().is_empty());
        assert!(replay.table("catalog").unwrap().is_empty());
        // id counters advanced identically
        let (nid, _) = replay.insert("catalog", &[("name", "x".into())]).unwrap();
        let (oid, _) = db.insert("catalog", &[("name", "x".into())]).unwrap();
        assert_eq!(nid, oid);
    }

    #[test]
    fn create_table_rejects_missing_fk_target_and_dup() {
        let mut db = Database::new();
        assert!(db
            .create_table(TableSchema::new(
                "a",
                vec![Column::new("x", ValueType::Int).references("nope", OnDelete::Cascade)],
            ))
            .is_err());
        db.create_table(TableSchema::new("a", vec![])).unwrap();
        assert!(db.create_table(TableSchema::new("a", vec![])).is_err());
    }

    #[test]
    fn self_referential_cascade_terminates() {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "node",
            vec![Column::new("parent_id", ValueType::Int).references("node", OnDelete::Cascade)],
        ))
        .unwrap();
        let (a, _) = db.insert("node", &[]).unwrap();
        let (b, _) = db.insert("node", &[("parent_id", Value::Int(a))]).unwrap();
        let (_c, _) = db.insert("node", &[("parent_id", Value::Int(b))]).unwrap();
        db.delete("node", a).unwrap();
        assert!(db.table("node").unwrap().is_empty());
    }
}
