//! Per-table sharded concurrency with an MVCC read path: writers take one
//! lock per table, readers take **no locks at all**.
//!
//! The seed engine serialized every portal worker and daemon thread on a
//! single `RwLock<Database>`; PR 5 sharded that into one lock per table,
//! but readers still contended with writers on each table's lock. This
//! module removes readers from the lock protocol entirely: every
//! [`Shard`] *publishes* an [`Arc<TableVersion>`] — an immutable snapshot
//! of the table's rows, indexes, modification counter, and WAL coverage —
//! and readers pin it with two atomic operations ([`Shard::pin`]).
//! Writers keep the writer-preferring lock *among themselves*, mutate a
//! private working copy via copy-on-write (see [`crate::table`]), and
//! atomically install a new version at commit. Rollback = never publish.
//!
//! # Version publication protocol
//!
//! `Shard::current` holds a raw pointer obtained from
//! `Arc::into_raw(Arc<TableVersion>)`; the shard owns that strong
//! reference. The pin/publish handshake is three SeqCst operations on the
//! reader side and two on the publisher side:
//!
//! * **pin** (reader): `pins.fetch_add(1)` → `current.load()` →
//!   `Arc::increment_strong_count(ptr)` → `pins.fetch_sub(1)`;
//! * **publish** (writer, serialized by the shard write lock):
//!   `current.swap(new)`, move the old `Arc` onto the `retained` list,
//!   then — only if `pins.load() == 0` *after* the swap — drop every
//!   retained version.
//!
//! Safety argument (all operations SeqCst, so they embed in one total
//! order): a reader holds `pins > 0` from before its pointer load until
//! after it owns a strong count. If the publisher's post-swap check reads
//! `pins == 0`, every reader window that could still load `current` must
//! *start* after that check, hence after the swap — so it observes the new
//! pointer, and no future pin can reach a superseded version. Retained
//! versions are then dropped; any still-alive [`crate::ReadView`] keeps
//! its own strong reference, so it is never invalidated, merely detached
//! from the shard. If the check reads `pins > 0`, the superseded versions
//! stay on `retained` until a later publish observes a quiescent moment —
//! the window is a handful of instructions, so retention is transient; the
//! `simdb_table_live_versions{table}` gauge makes it observable anyway.
//! The gauge is maintained by the versions themselves (incremented at
//! construction, decremented by `Drop`), so it moves the instant the last
//! `ReadView` pinning a superseded version drops — no publish required.
//!
//! # Multi-table cuts
//!
//! A single publish is atomic, but a transaction commits several tables;
//! pinning table-by-table could observe half a transaction. The catalog
//! carries a *commit seqlock* ([`CommitClock`]): multi-table commits hold
//! its mutex, bump the sequence to odd, publish every dirty table, and
//! bump back to even. Multi-table pins ([`Catalog::pin_cut`]) read the
//! sequence, pin, and re-read: an odd or changed sequence means a commit
//! overlapped and the cut retries. Publishing is wait-free (a few `Arc`
//! bumps per table), so the retry window is tiny. Single-table commits
//! skip the clock entirely — their one publish is already atomic.
//!
//! # Locking hierarchy and deadlock freedom (writer side)
//!
//! Locks are always taken in this order, and released before anything
//! earlier in the order is re-acquired:
//!
//! 1. the **catalog** lock (`RwLock` in `lib.rs`) — read to resolve names
//!    to shards and compute lock sets, write only for DDL;
//! 2. **table shard locks**, acquired in canonical (sorted-by-name) order
//!    with the required mode per table ([`LockPlan::acquire`]);
//! 3. the **WAL** queue/file mutexes (sequence claim happens while table
//!    locks are held; the durability flush happens after release for
//!    single ops, under the guards for transactions so they can roll back);
//! 4. the **commit clock** mutex — taken only at multi-table publish,
//!    while holding write guards, never while acquiring any earlier lock.
//!
//! Because every operation acquires its entire shard set in one ascending
//! pass, every wait-for edge points from a lock to a strictly later lock
//! in the canonical order — the wait-for graph is acyclic, so deadlock is
//! structurally impossible regardless of which tables writers touch.
//! Readers participate in no lock at all and cannot deadlock by
//! construction.
//!
//! # Lock sets (writer side)
//!
//! The set of shards an operation must hold is computed from immutable
//! schema facts (FK edges change only at DDL, under the catalog write
//! lock):
//!
//! * insert / update on `T`: write `T`, read `T`'s FK target tables
//!   (existence checks must see committed-and-stable rows);
//! * delete on `T`: write locks on the reverse-FK closure of `T` — every
//!   table a cascade or SET NULL could touch;
//! * transaction over declared tables `D`: write locks on the union of the
//!   members' delete closures, read locks on their FK targets.

use crate::db::TableSet;
use crate::error::DbError;
use crate::obs::ShardMetrics;
use crate::query::Query;
use crate::schema::{OnDelete, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use std::cell::UnsafeCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One published, immutable snapshot of a table. Readers hold these by
/// `Arc`; the storage inside is copy-on-write, so a version is a cheap
/// structural share of the writer's working state at commit time.
pub(crate) struct TableVersion {
    pub table: Table,
    /// Monotone per-table modification counter (see `Db::table_version`).
    pub version: u64,
    /// Highest WAL sequence number whose effects this version includes
    /// (`None` until the table's first logged op). Compaction uses these,
    /// per table, to decide which WAL records a snapshot makes redundant.
    pub applied_seq: Option<u64>,
    /// Shared handle on the table's `simdb_table_live_versions` gauge.
    /// Each version counts itself in at construction and out on `Drop`, so
    /// the gauge decrements the moment a superseded version's last pin
    /// drops — not at the next publish.
    live: amp_obs::Gauge,
}

impl TableVersion {
    fn new(
        table: Table,
        version: u64,
        applied_seq: Option<u64>,
        live: amp_obs::Gauge,
    ) -> Arc<TableVersion> {
        live.add(1);
        Arc::new(TableVersion {
            table,
            version,
            applied_seq,
            live,
        })
    }
}

impl Drop for TableVersion {
    fn drop(&mut self) {
        self.live.add(-1);
    }
}

/// The writer-side working state a shard's lock protects. Mutations apply
/// here first; readers never see it — they see the last published
/// [`TableVersion`]. `retained`/`history` are publisher bookkeeping,
/// touched only while the write lock is held.
pub(crate) struct ShardState {
    pub table: Table,
    /// Monotone per-table modification counter (see `Db::table_version`).
    pub version: u64,
    /// Highest WAL seq applied to this table (stamped into publications).
    pub applied_seq: Option<u64>,
    /// Superseded versions that could not yet be proven unreachable (a
    /// reader was mid-pin at swap time). Pruned at the next quiescent
    /// publish; see the module docs.
    retained: Vec<Arc<TableVersion>>,
}

/// Reader/writer bookkeeping for a shard's writer-side lock.
#[derive(Default)]
struct LockCore {
    readers: usize,
    writer: bool,
    /// Writers queued; lock-readers yield to them (writer preference) so
    /// FK-check read locks cannot starve the daemon's status writes.
    waiting_writers: usize,
    /// Total write-guard releases, ever. An arriving lock-reader snapshots
    /// `writer_releases + waiting_writers + active` as its admission
    /// ticket: it yields to the writers already present, but not to
    /// writers that arrive after it — bounding reader wait under a
    /// continuous writer stream (the starvation latent in the PR 5 loop).
    writer_releases: u64,
}

/// One table's shard: the published-version slot readers pin lock-free,
/// plus a writer-preferring reader/writer lock with *owned* guards
/// (guards keep the shard alive via `Arc`) for the writer side, plus the
/// per-table metrics.
///
/// The lock is hand-rolled over `Mutex`+`Condvar` because the vendored
/// `parking_lot` stand-in has no owned-guard (`arc_lock`) API. It no
/// longer sits on the plain-read path at all — only writers (and the FK
/// read locks inside write plans) touch it.
pub(crate) struct Shard {
    /// `Arc::into_raw` of the latest published [`TableVersion`]; the shard
    /// owns this strong reference until `swap`ped out or dropped.
    current: AtomicPtr<TableVersion>,
    /// Readers currently inside the pin window (between loading `current`
    /// and owning a strong count).
    pins: AtomicUsize,
    core: Mutex<LockCore>,
    cond: Condvar,
    state: UnsafeCell<ShardState>,
    metrics: ShardMetrics,
}

// SAFETY: `state` is only ever reached through `ReadGuard`/`WriteGuard`,
// whose construction goes through the reader/writer protocol on `core`:
// shared references exist only while `readers > 0 && !writer`, exclusive
// references only while `writer && readers == 0`. `current` is reclaimed
// through the pin protocol documented on the module.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    pub fn new(name: &str, table: Table, version: u64, applied_seq: Option<u64>) -> Arc<Shard> {
        let metrics = ShardMetrics::for_table(name);
        let first = TableVersion::new(
            table.clone(),
            version,
            applied_seq,
            metrics.live_versions.clone(),
        );
        Arc::new(Shard {
            current: AtomicPtr::new(Arc::into_raw(first) as *mut TableVersion),
            pins: AtomicUsize::new(0),
            core: Mutex::new(LockCore::default()),
            cond: Condvar::new(),
            state: UnsafeCell::new(ShardState {
                table,
                version,
                applied_seq,
                retained: Vec::new(),
            }),
            metrics,
        })
    }

    fn lock_core(&self) -> std::sync::MutexGuard<'_, LockCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin the latest published version: two atomic RMWs and one atomic
    /// load, no lock, no syscall, no timing. Never blocks and never spins
    /// — this is the entire read path.
    pub fn pin(&self) -> Arc<TableVersion> {
        self.pins.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `pins > 0` spans the load and the count bump, so the
        // publisher cannot have released this version's strong count (see
        // the module-level protocol proof).
        let pinned = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.pins.fetch_sub(1, SeqCst);
        pinned
    }

    /// Acquire a shared (writer-side) guard — used by FK-check read locks
    /// inside write plans, *not* by plain reads (those use [`Shard::pin`]).
    /// Yields to the writers present at arrival, but not to later ones.
    pub fn read(self: &Arc<Self>) -> ReadGuard {
        let wait_start = Instant::now();
        let mut core = self.lock_core();
        let ticket = core.writer_releases + core.waiting_writers as u64 + u64::from(core.writer);
        while core.writer || (core.waiting_writers > 0 && core.writer_releases < ticket) {
            core = self.cond.wait(core).unwrap_or_else(|e| e.into_inner());
        }
        core.readers += 1;
        drop(core);
        self.metrics
            .lock_wait
            .observe_duration(wait_start.elapsed());
        ReadGuard {
            shard: Arc::clone(self),
        }
    }

    /// Acquire the exclusive (write) guard.
    pub fn write(self: &Arc<Self>) -> WriteGuard {
        let wait_start = Instant::now();
        let mut core = self.lock_core();
        core.waiting_writers += 1;
        while core.writer || core.readers > 0 {
            core = self.cond.wait(core).unwrap_or_else(|e| e.into_inner());
        }
        core.waiting_writers -= 1;
        core.writer = true;
        drop(core);
        self.metrics
            .lock_wait
            .observe_duration(wait_start.elapsed());
        // SAFETY: exclusive from here until the guard drops.
        let entry_version = unsafe { (*self.state.get()).version };
        WriteGuard {
            shard: Arc::clone(self),
            acquired: Instant::now(),
            entry_version,
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Reclaim the strong reference parked in `current`. No pins can be
        // in flight: dropping the shard means no `Arc<Shard>` remains.
        let ptr = *self.current.get_mut();
        unsafe { drop(Arc::from_raw(ptr)) };
    }
}

/// Owned shared guard over one shard's writer-side state.
pub(crate) struct ReadGuard {
    shard: Arc<Shard>,
}

impl std::ops::Deref for ReadGuard {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        // SAFETY: the read protocol guarantees no writer is active while
        // this guard lives.
        unsafe { &*self.shard.state.get() }
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        let mut core = self.shard.lock_core();
        core.readers -= 1;
        let wake = core.readers == 0;
        drop(core);
        if wake {
            self.shard.cond.notify_all();
        }
    }
}

/// Owned exclusive guard over one shard's working state. Records the hold
/// duration into the shard's `simdb_table_lock_hold_seconds{table}`
/// histogram on drop.
pub(crate) struct WriteGuard {
    shard: Arc<Shard>,
    acquired: Instant,
    /// `version` at acquisition — publication happens only if it moved.
    entry_version: u64,
}

impl std::ops::Deref for WriteGuard {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        // SAFETY: exclusive while this guard lives.
        unsafe { &*self.shard.state.get() }
    }
}

impl std::ops::DerefMut for WriteGuard {
    fn deref_mut(&mut self) -> &mut ShardState {
        // SAFETY: exclusive while this guard lives.
        unsafe { &mut *self.shard.state.get() }
    }
}

impl WriteGuard {
    /// Uncommitted changes since acquisition?
    pub fn is_dirty(&self) -> bool {
        self.version != self.entry_version
    }

    /// Install the working state as the new published version (see the
    /// module docs for the swap/retain/prune protocol). Wait-free: a COW
    /// table clone, one `swap`, and one `pins` check. Callers that
    /// mutated state and *don't* publish (rollback) leave readers on the
    /// previous version — that is the abort path.
    pub fn publish(&mut self) {
        let shard = Arc::clone(&self.shard);
        let state = &mut **self;
        let next = TableVersion::new(
            state.table.clone(),
            state.version,
            state.applied_seq,
            shard.metrics.live_versions.clone(),
        );
        let next_ptr = Arc::into_raw(next) as *mut TableVersion;
        let prev_ptr = shard.current.swap(next_ptr, SeqCst);
        // SAFETY: we own the strong count that was parked in `current`.
        let prev = unsafe { Arc::from_raw(prev_ptr) };
        state.retained.push(prev);
        if shard.pins.load(SeqCst) == 0 {
            // Quiescent after the swap: no reader can reach a superseded
            // version through `current` anymore (module-level proof), so
            // the publisher's references can go. Live `ReadView`s keep
            // their own strong counts — each version keeps the live_versions
            // gauge honest from its own `Drop`.
            state.retained.clear();
        }
        self.entry_version = self.version;
    }
}

impl Drop for WriteGuard {
    fn drop(&mut self) {
        debug_assert!(
            std::thread::panicking() || !self.is_dirty(),
            "write guard dropped with unpublished, unrolled-back changes"
        );
        self.shard
            .metrics
            .lock_hold
            .observe_duration(self.acquired.elapsed());
        let mut core = self.shard.lock_core();
        core.writer = false;
        core.writer_releases += 1;
        drop(core);
        self.shard.cond.notify_all();
    }
}

/// `target table -> [(referencing table, column index, on_delete)]` for
/// every FK column in the database. Shared by `Arc` snapshot with
/// in-flight operations; rebuilt (as a fresh `Arc`) on DDL.
pub(crate) type ReverseFk = HashMap<String, Vec<(String, usize, OnDelete)>>;

/// The catalog-wide commit seqlock: serializes multi-table publications
/// (mutex) and lets multi-table pins detect overlap (sequence is odd
/// while a publication is in flight; see module docs).
pub(crate) struct CommitClock {
    seq: AtomicU64,
    lock: Mutex<()>,
}

impl CommitClock {
    fn new() -> Arc<CommitClock> {
        Arc::new(CommitClock {
            seq: AtomicU64::new(0),
            lock: Mutex::new(()),
        })
    }
}

/// The engine's table directory: shards plus the schema-level metadata
/// (immutable outside the catalog write lock) that lock-set planning and
/// cascade planning need without touching row locks.
pub(crate) struct Catalog {
    tables: BTreeMap<String, Arc<Shard>>,
    /// Declarative schema per table — DDL-immutable, so introspection
    /// (admin screens, ORM drift checks) never takes a shard lock.
    schemas: BTreeMap<String, Arc<TableSchema>>,
    /// Direct FK target tables per table (deduped, self excluded).
    fk_targets: HashMap<String, Vec<String>>,
    referencing: Arc<ReverseFk>,
    commit: Arc<CommitClock>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog {
            tables: BTreeMap::new(),
            schemas: BTreeMap::new(),
            fk_targets: HashMap::new(),
            referencing: Arc::new(HashMap::new()),
            commit: CommitClock::new(),
        }
    }

    /// Build the runtime catalog from recovered storage (snapshot + WAL
    /// replay), carrying over the version counters and per-table WAL
    /// coverage the replay produced.
    pub fn from_parts(
        tables: BTreeMap<String, Table>,
        versions: &BTreeMap<String, u64>,
        applied: &BTreeMap<String, u64>,
    ) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, table) in tables {
            let version = versions.get(&name).copied().unwrap_or(0);
            let applied_seq = applied.get(&name).copied();
            catalog
                .schemas
                .insert(name.clone(), Arc::new(table.schema.clone()));
            catalog
                .tables
                .insert(name.clone(), Shard::new(&name, table, version, applied_seq));
        }
        catalog.rebuild_edges();
        catalog
    }

    /// DDL: create a table (the sharded analogue of
    /// `Database::create_table`; caller holds the catalog write lock).
    pub fn create_table(&mut self, schema: TableSchema) -> Result<crate::db::LogOp, DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        // FK targets must exist (or be the table itself, for self-reference).
        for c in &schema.columns {
            if let Some(fk) = &c.foreign_key {
                if fk.references != schema.name && !self.tables.contains_key(&fk.references) {
                    return Err(DbError::Schema(format!(
                        "table {}: FK column {} references missing table {}",
                        schema.name, c.name, fk.references
                    )));
                }
            }
        }
        let table = Table::new(schema.clone())?;
        self.schemas
            .insert(schema.name.clone(), Arc::new(schema.clone()));
        // Table creation counts as version 1, as in the seed engine. The
        // WAL seq of the CreateTable record isn't known yet; the DDL path
        // republishes with it once claimed (still under the catalog write
        // lock), so compaction can retire the record.
        self.tables.insert(
            schema.name.clone(),
            Shard::new(&schema.name, table, 1, None),
        );
        self.rebuild_edges();
        Ok(crate::db::LogOp::CreateTable { schema })
    }

    fn rebuild_edges(&mut self) {
        let mut fk_targets: HashMap<String, Vec<String>> = HashMap::new();
        let mut referencing: ReverseFk = HashMap::new();
        for (name, schema) in &self.schemas {
            for (ci, c) in schema.columns.iter().enumerate() {
                if let Some(fk) = &c.foreign_key {
                    referencing.entry(fk.references.clone()).or_default().push((
                        name.clone(),
                        ci,
                        fk.on_delete,
                    ));
                    if fk.references != *name {
                        let targets = fk_targets.entry(name.clone()).or_default();
                        if !targets.contains(&fk.references) {
                            targets.push(fk.references.clone());
                        }
                    }
                }
            }
        }
        self.fk_targets = fk_targets;
        self.referencing = Arc::new(referencing);
    }

    pub fn shard(&self, name: &str) -> Result<&Arc<Shard>, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn schema(&self, name: &str) -> Result<Arc<TableSchema>, DbError> {
        self.schemas
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Every shard in canonical order (snapshot / compaction cuts).
    pub fn all_shards(&self) -> impl Iterator<Item = (&str, &Arc<Shard>)> {
        self.tables.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Pin a *consistent* cut across several shards without any lock: pin
    /// each table's published version, validated against the commit clock
    /// so a multi-table commit can never be observed half-published. Lone
    /// tables skip the clock — a single publish is atomic on its own.
    pub fn pin_cut(
        &self,
        shards: &BTreeMap<String, Arc<Shard>>,
    ) -> BTreeMap<String, Arc<TableVersion>> {
        if shards.len() <= 1 {
            return shards.iter().map(|(n, s)| (n.clone(), s.pin())).collect();
        }
        loop {
            let before = self.commit.seq.load(SeqCst);
            if before & 1 == 1 {
                // A multi-table publication is mid-flight; it is wait-free,
                // so yield once and re-read rather than pinning a doomed cut.
                std::thread::yield_now();
                continue;
            }
            let cut: BTreeMap<String, Arc<TableVersion>> =
                shards.iter().map(|(n, s)| (n.clone(), s.pin())).collect();
            if self.commit.seq.load(SeqCst) == before {
                return cut;
            }
            std::thread::yield_now();
        }
    }

    /// The reverse-FK closure of `table`: every table a delete on `table`
    /// could mutate through cascades or SET NULLs (including itself).
    fn delete_closure(&self, table: &str) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = BTreeSet::new();
        let mut queue = vec![table.to_string()];
        while let Some(t) = queue.pop() {
            if !set.insert(t.clone()) {
                continue;
            }
            if let Some(refs) = self.referencing.get(&t) {
                for (ref_table, _, _) in refs {
                    if !set.contains(ref_table) {
                        queue.push(ref_table.clone());
                    }
                }
            }
        }
        set
    }

    /// Lock plan for an insert or update on `table`: exclusive on the
    /// table, shared on its FK targets (row-existence checks).
    pub fn write_plan(&self, table: &str) -> Result<LockPlan, DbError> {
        let mut entries = BTreeMap::new();
        entries.insert(table.to_string(), (Arc::clone(self.shard(table)?), true));
        for target in self.fk_targets.get(table).into_iter().flatten() {
            if target != table {
                entries
                    .entry(target.clone())
                    .or_insert((Arc::clone(self.shard(target)?), false));
            }
        }
        Ok(self.plan_from(entries))
    }

    /// Lock plan for a delete on `table`: exclusive on the whole reverse-FK
    /// closure (cascades and SET NULLs mutate those tables).
    pub fn delete_plan(&self, table: &str) -> Result<LockPlan, DbError> {
        // Resolve the root first so unknown tables error as NoSuchTable.
        self.shard(table)?;
        let mut entries = BTreeMap::new();
        for t in self.delete_closure(table) {
            entries.insert(t.clone(), (Arc::clone(self.shard(&t)?), true));
        }
        Ok(self.plan_from(entries))
    }

    /// Lock plan for a transaction over the declared `tables`: exclusive
    /// on the union of their delete closures (any member may be inserted
    /// into, updated, or deleted from), shared on the FK targets of that
    /// write set.
    pub fn txn_plan(&self, tables: &[&str]) -> Result<LockPlan, DbError> {
        let mut writes: BTreeSet<String> = BTreeSet::new();
        for t in tables {
            self.shard(t)?;
            writes.append(&mut self.delete_closure(t));
        }
        let mut entries = BTreeMap::new();
        for w in &writes {
            entries.insert(w.clone(), (Arc::clone(self.shard(w)?), true));
        }
        for w in &writes {
            for target in self.fk_targets.get(w).into_iter().flatten() {
                if !writes.contains(target) {
                    entries
                        .entry(target.clone())
                        .or_insert((Arc::clone(self.shard(target)?), false));
                }
            }
        }
        Ok(self.plan_from(entries))
    }

    fn plan_from(&self, entries: BTreeMap<String, (Arc<Shard>, bool)>) -> LockPlan {
        LockPlan {
            entries,
            referencing: Arc::clone(&self.referencing),
            commit: Arc::clone(&self.commit),
        }
    }
}

/// A computed, not-yet-acquired lock set: `table -> (shard, exclusive?)`,
/// canonically ordered by the `BTreeMap`. Built under the catalog read
/// lock; acquired after it is released.
pub(crate) struct LockPlan {
    entries: BTreeMap<String, (Arc<Shard>, bool)>,
    referencing: Arc<ReverseFk>,
    commit: Arc<CommitClock>,
}

impl LockPlan {
    /// Acquire every lock in canonical order (see module docs for why this
    /// cannot deadlock) and return the locked table set.
    pub fn acquire(self) -> LockedTables {
        let mut writes = BTreeMap::new();
        let mut reads = BTreeMap::new();
        for (name, (shard, exclusive)) in self.entries {
            if exclusive {
                writes.insert(name, shard.write());
            } else {
                reads.insert(name, shard.read());
            }
        }
        LockedTables {
            writes,
            reads,
            referencing: self.referencing,
            commit: self.commit,
        }
    }
}

/// An acquired lock set: the tables one operation may touch, write guards
/// for its mutation targets and read guards for FK-existence checks.
/// Implements [`TableSet`], so the shared mutation engine in
/// [`crate::db::ops`] runs against it unchanged. Mutations apply to the
/// private working copies; nothing is visible to readers until
/// [`LockedTables::commit`] publishes.
pub(crate) struct LockedTables {
    pub writes: BTreeMap<String, WriteGuard>,
    pub reads: BTreeMap<String, ReadGuard>,
    referencing: Arc<ReverseFk>,
    commit: Arc<CommitClock>,
}

impl TableSet for LockedTables {
    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        if let Some(g) = self.writes.get(name) {
            return Ok(&g.table);
        }
        if let Some(g) = self.reads.get(name) {
            return Ok(&g.table);
        }
        Err(DbError::Schema(format!(
            "table {name} is not covered by this operation's lock set \
             (declare it in the transaction's table list)"
        )))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        match self.writes.get_mut(name) {
            Some(g) => Ok(&mut g.table),
            None => Err(DbError::Schema(format!(
                "table {name} is not write-locked by this operation \
                 (declare it in the transaction's table list)"
            ))),
        }
    }

    fn referencing_columns(&self, target: &str) -> Vec<(String, usize, OnDelete)> {
        self.referencing.get(target).cloned().unwrap_or_default()
    }

    fn bump_version(&mut self, table: &str) {
        if let Some(g) = self.writes.get_mut(table) {
            g.version += 1;
        } else {
            debug_assert!(false, "bump_version on unlocked table {table}");
        }
    }
}

impl LockedTables {
    /// Commit: publish a new version of every *dirty* write-locked table,
    /// stamped with `last_seq` (the batch's final WAL sequence number —
    /// every table the batch wrote is covered up to it, since other
    /// writers of those tables are excluded by the guards). Multi-table
    /// publications run under the commit clock so concurrent `pin_cut`s
    /// either see all of the batch or none of it.
    ///
    /// Also drains each dirty table's materialized-rows counter into the
    /// `simdb_rows_copied_per_write` histogram: one observation per commit,
    /// covering every row the write actually materialized.
    pub fn commit(&mut self, last_seq: Option<u64>) {
        let dirty = self.writes.values().filter(|g| g.is_dirty()).count();
        if dirty == 0 {
            return;
        }
        let _serialize = if dirty > 1 {
            let guard = self.commit.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.commit.seq.fetch_add(1, SeqCst); // odd: cut invalid
            Some(guard)
        } else {
            None
        };
        let mut rows_copied = 0u64;
        for g in self.writes.values_mut() {
            if g.is_dirty() {
                if last_seq.is_some() {
                    g.applied_seq = last_seq;
                }
                rows_copied += g.table.take_copied_rows();
                g.publish();
            }
        }
        if dirty > 1 {
            self.commit.seq.fetch_add(1, SeqCst); // even: cut valid again
        }
        crate::obs::metrics()
            .rows_copied_per_write
            .observe(rows_copied);
    }
}

/// The per-transaction **delta write-buffer**: a [`TableSet`] layered over
/// an acquired lock set that absorbs every mutation into transaction-
/// private buffers instead of the shards' working state.
///
/// A buffer is created lazily, on the first mutation of each table, as a
/// copy-on-write *structural* clone of the base working copy — O(chunk
/// spine) `Arc` bumps, no row data. From then on:
///
/// * **reads inside the transaction** resolve buffer-or-base:
///   [`TableSet::table_ref`] returns the buffer when one exists (the
///   transaction sees its own writes) and the untouched base otherwise;
/// * **mutations** apply to the buffer through the ordinary per-row
///   copy-on-write path, materializing exactly the rows touched;
/// * **commit** ([`Self::commit`]) installs each dirty buffer as the
///   shard's new working state — the overlay *is* the merged spine, so the
///   merge is a move, not a replay — and publishes under the commit clock;
/// * **rollback is `Drop`**: the buffers vanish and the base working state
///   was never touched, so there is nothing to restore and no journal to
///   keep. A transaction that mutates only two of its five declared tables
///   clones two spines, not five (the old backup journal cloned all).
pub(crate) struct BufferedTables<'a> {
    locked: &'a mut LockedTables,
    buffers: BTreeMap<String, BufferedTable>,
}

struct BufferedTable {
    table: Table,
    version: u64,
    /// Base `version` at buffer creation; the buffer is dirty iff moved.
    entry_version: u64,
}

impl<'a> BufferedTables<'a> {
    pub fn new(locked: &'a mut LockedTables) -> BufferedTables<'a> {
        BufferedTables {
            locked,
            buffers: BTreeMap::new(),
        }
    }

    /// Install every dirty buffer into its shard's working state and
    /// publish (see [`LockedTables::commit`]). Clean buffers are simply
    /// dropped — an untouched table is never republished.
    pub fn commit(self, last_seq: Option<u64>) {
        for (name, buf) in self.buffers {
            if buf.version != buf.entry_version {
                let g = self
                    .locked
                    .writes
                    .get_mut(&name)
                    .expect("buffer exists only for write-locked tables");
                g.table = buf.table;
                g.version = buf.version;
            }
        }
        self.locked.commit(last_seq);
    }
}

impl TableSet for BufferedTables<'_> {
    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        if let Some(b) = self.buffers.get(name) {
            return Ok(&b.table); // buffer-or-base: own writes visible
        }
        self.locked.table_ref(name)
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        if !self.buffers.contains_key(name) {
            let g = self.locked.writes.get(name).ok_or_else(|| {
                DbError::Schema(format!(
                    "table {name} is not write-locked by this operation \
                     (declare it in the transaction's table list)"
                ))
            })?;
            self.buffers.insert(
                name.to_string(),
                BufferedTable {
                    table: g.table.clone(),
                    version: g.version,
                    entry_version: g.version,
                },
            );
        }
        Ok(&mut self.buffers.get_mut(name).expect("just inserted").table)
    }

    fn referencing_columns(&self, target: &str) -> Vec<(String, usize, OnDelete)> {
        self.locked.referencing_columns(target)
    }

    fn bump_version(&mut self, table: &str) {
        match self.buffers.get_mut(table) {
            Some(b) => b.version += 1,
            None => debug_assert!(false, "bump_version on unbuffered table {table}"),
        }
    }
}

/// A pinned multi-table snapshot backing [`crate::ReadView`]: one
/// `Arc<TableVersion>` per table, taken as a commit-clock-validated cut.
/// Entirely lock-free to construct and to read; holding one blocks no
/// writer and no other reader — it only keeps superseded versions alive.
pub(crate) struct PinnedView {
    /// Requested order; duplicates in the request map to one pin.
    order: Vec<String>,
    versions: BTreeMap<String, Arc<TableVersion>>,
}

impl PinnedView {
    /// Pin `tables` as one consistent cut (see [`Catalog::pin_cut`]).
    /// The caller holds the catalog read lock only to resolve names.
    pub fn pin(catalog: &Catalog, tables: &[&str]) -> Result<PinnedView, DbError> {
        let mut shards: BTreeMap<String, Arc<Shard>> = BTreeMap::new();
        for t in tables {
            if !shards.contains_key(*t) {
                shards.insert((*t).to_string(), Arc::clone(catalog.shard(t)?));
            }
        }
        Ok(PinnedView {
            order: tables.iter().map(|t| (*t).to_string()).collect(),
            versions: catalog.pin_cut(&shards),
        })
    }

    pub fn version(&self, table: &str) -> Result<&TableVersion, DbError> {
        self.versions
            .get(table)
            .map(|v| &**v)
            .ok_or_else(|| DbError::Schema(format!("table {table} is not part of this read view")))
    }

    /// Versions of the viewed tables, in the order they were requested.
    pub fn versions(&self) -> Vec<u64> {
        self.order
            .iter()
            .map(|t| self.versions.get(t).map(|v| v.version).unwrap_or(0))
            .collect()
    }

    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|s| s.as_str())
    }
}

/// Read helpers shared by `Connection` single-table reads and `ReadView`:
/// plain query execution against a pinned version's table.
pub(crate) fn select(table: &Table, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
    query.execute(table)
}

pub(crate) fn select_project(
    table: &Table,
    query: &Query,
    column: &str,
) -> Result<Vec<(i64, Value)>, DbError> {
    query.project(table, column)
}

pub(crate) fn get(table: &Table, name: &str, id: i64) -> Result<Row, DbError> {
    table.get(id).cloned().ok_or_else(|| DbError::NoSuchRow {
        table: name.to_string(),
        id,
    })
}

pub(crate) fn count(table: &Table, query: &Query) -> Result<usize, DbError> {
    query.count(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    fn shard() -> Arc<Shard> {
        let table = Table::new(TableSchema::new(
            "t",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
        Shard::new("t", table, 1, None)
    }

    #[test]
    fn readers_share_writers_exclude() {
        let s = shard();
        let r1 = s.read();
        let r2 = s.read();
        assert_eq!(r1.version, 1);
        assert_eq!(r2.version, 1);
        drop((r1, r2));
        let mut w = s.write();
        w.version = 2;
        w.publish();
        drop(w);
        assert_eq!(s.read().version, 2);
        assert_eq!(s.pin().version, 2);
    }

    #[test]
    fn pin_sees_only_published_state() {
        let s = shard();
        let mut w = s.write();
        w.version = 7;
        // Mutated but unpublished: readers still see the old version.
        assert_eq!(s.pin().version, 1);
        w.publish();
        assert_eq!(s.pin().version, 7);
        drop(w);
    }

    #[test]
    fn pinned_version_is_immutable_across_publishes() {
        let s = shard();
        let pinned = s.pin();
        for i in 2..10 {
            let mut w = s.write();
            w.version = i;
            w.publish();
        }
        // The pin still reads the state it pinned; fresh pins see the tip.
        assert_eq!(pinned.version, 1);
        assert_eq!(s.pin().version, 9);
    }

    #[test]
    fn superseded_versions_freed_after_last_pin_drops() {
        // Unique table name: the live-versions gauge is process-global.
        let table = Table::new(TableSchema::new(
            "t_freed",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
        let s = Shard::new("t_freed", table, 1, None);
        let gauge = amp_obs::registry().gauge(&amp_obs::labeled(
            "simdb_table_live_versions",
            &[("table", "t_freed")],
        ));
        let pinned = s.pin();
        for i in 2..6 {
            let mut w = s.write();
            w.version = i;
            w.publish();
        }
        // The outstanding pin holds version 1 alive alongside the tip; the
        // superseded versions in between died at their publish.
        assert_eq!(gauge.get(), 2, "pinned + current versions alive");
        // The gauge decrements the moment the pin drops — no publish needed.
        drop(pinned);
        assert_eq!(gauge.get(), 1, "gauge lagged past the last pin drop");
        let mut w = s.write();
        w.version = 6;
        w.publish();
        assert_eq!(gauge.get(), 1, "only the current version remains alive");
        assert!(w.retained.is_empty());
    }

    #[test]
    fn writer_blocks_until_readers_drain() {
        let s = shard();
        let r = s.read();
        let s2 = Arc::clone(&s);
        let entered = Arc::new(AtomicUsize::new(0));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let mut w = s2.write();
            entered2.store(1, Ordering::SeqCst);
            w.version += 1;
            w.publish();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "writer ran under reader");
        drop(r);
        h.join().unwrap();
        assert_eq!(s.read().version, 2);
    }

    #[test]
    fn readers_yield_to_waiting_writers() {
        // With a writer queued, a new reader must wait; once the writer
        // finishes, readers proceed and see its effect.
        let s = shard();
        let r = s.read();
        let s_w = Arc::clone(&s);
        let w = std::thread::spawn(move || {
            let mut g = s_w.write();
            g.version = 99;
            g.publish();
        });
        // Give the writer time to queue behind `r`.
        std::thread::sleep(Duration::from_millis(30));
        let s_r = Arc::clone(&s);
        let late_reader = std::thread::spawn(move || s_r.read().version);
        std::thread::sleep(Duration::from_millis(30));
        drop(r);
        w.join().unwrap();
        assert_eq!(late_reader.join().unwrap(), 99);
    }

    #[test]
    fn lock_readers_admitted_under_continuous_writers() {
        // Regression for the PR 5 starvation loop: a reader arriving while
        // writers keep queueing used to spin until `waiting_writers == 0`,
        // which a continuous writer stream never reaches. The admission
        // ticket bounds the wait to the writers present at arrival.
        let s = shard();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let mut g = s.write();
                        g.version += 1;
                        g.publish();
                    }
                })
            })
            .collect();
        // Let the writer stream establish itself.
        std::thread::sleep(Duration::from_millis(20));
        let (tx, rx) = std::sync::mpsc::channel();
        let s_r = Arc::clone(&s);
        std::thread::spawn(move || {
            let g = s_r.read();
            let _ = tx.send(g.version);
        });
        let got = rx.recv_timeout(Duration::from_secs(5));
        stop.store(true, Ordering::SeqCst);
        for w in writers {
            w.join().unwrap();
        }
        assert!(got.is_ok(), "reader starved under continuous writer stream");
    }

    #[test]
    fn stress_many_readers_and_writers() {
        let s = shard();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let mut g = s.write();
                    g.version += 1;
                    g.publish();
                }
            }));
        }
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..500 {
                    let v = s.pin().version;
                    assert!(v >= last, "published versions went backwards");
                    last = v;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.pin().version, 1 + 4 * 500);
        assert_eq!(s.read().version, 1 + 4 * 500);
    }

    #[test]
    fn delete_closure_follows_reverse_edges() {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new("a", vec![])).unwrap();
        c.create_table(TableSchema::new(
            "b",
            vec![Column::new("a_id", ValueType::Int).references("a", OnDelete::Cascade)],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "c",
            vec![Column::new("b_id", ValueType::Int).references("b", OnDelete::SetNull)],
        ))
        .unwrap();
        c.create_table(TableSchema::new("lonely", vec![])).unwrap();
        let closure = c.delete_closure("a");
        assert!(closure.contains("a") && closure.contains("b") && closure.contains("c"));
        assert!(!closure.contains("lonely"));
        assert_eq!(c.delete_closure("c").len(), 1);
    }

    #[test]
    fn txn_plan_locks_closure_and_fk_targets() {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new("parent", vec![])).unwrap();
        c.create_table(TableSchema::new(
            "child",
            vec![Column::new("p", ValueType::Int).references("parent", OnDelete::Cascade)],
        ))
        .unwrap();
        let plan = c.txn_plan(&["child"]).unwrap();
        let set = plan.acquire();
        // child is written; parent is read-locked for FK checks.
        assert!(set.writes.contains_key("child"));
        assert!(set.reads.contains_key("parent"));
        // Declaring parent pulls child into the write set (cascade reach).
        let plan = c.txn_plan(&["parent"]).unwrap();
        drop(set);
        let set = plan.acquire();
        assert!(set.writes.contains_key("parent") && set.writes.contains_key("child"));
    }
}
