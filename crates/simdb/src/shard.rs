//! Per-table sharded concurrency: one lock per table instead of one lock
//! per engine.
//!
//! The seed engine serialized every portal worker and daemon thread on a
//! single `RwLock<Database>` — a writer to *any* table blocked readers of
//! *every* table. This module shards that lock: the [`Catalog`] maps each
//! table name to an [`Arc<Shard>`] whose lock guards exactly that table's
//! rows and modification counter, plus the schema-level metadata (FK
//! edges) needed to plan multi-table operations without holding row locks.
//!
//! # Locking hierarchy and deadlock freedom
//!
//! Locks are always taken in this order, and released before anything
//! earlier in the order is re-acquired:
//!
//! 1. the **catalog** lock (`RwLock` in `lib.rs`) — read to resolve names
//!    to shards and compute lock sets, write only for DDL;
//! 2. **table shard locks**, acquired in canonical (sorted-by-name) order
//!    with the required mode per table ([`LockPlan::acquire`]);
//! 3. the **WAL** queue/file mutexes (sequence claim happens while table
//!    locks are held; the durability flush happens after release for
//!    single ops, under the guards for transactions so they can roll back).
//!
//! Because every operation acquires its entire shard set in one ascending
//! pass, every wait-for edge points from a lock to a strictly later lock
//! in the canonical order — the wait-for graph is acyclic, so deadlock is
//! structurally impossible regardless of which tables writers touch.
//!
//! # Lock sets
//!
//! The set of shards an operation must hold is computed from immutable
//! schema facts (FK edges change only at DDL, under the catalog write
//! lock):
//!
//! * read / `read_view`: read locks on the named tables;
//! * insert / update on `T`: write `T`, read `T`'s FK target tables
//!   (existence checks);
//! * delete on `T`: write locks on the reverse-FK closure of `T` — every
//!   table a cascade or SET NULL could touch;
//! * transaction over declared tables `D`: write locks on the union of the
//!   members' delete closures, read locks on their FK targets.

use crate::db::TableSet;
use crate::error::DbError;
use crate::obs::ShardMetrics;
use crate::query::Query;
use crate::schema::{OnDelete, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use std::cell::UnsafeCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a shard's lock protects: the table's rows/indexes and its
/// modification counter, which must change atomically with the data.
pub(crate) struct ShardState {
    pub table: Table,
    /// Monotone per-table modification counter (see `Db::table_version`).
    pub version: u64,
}

/// Reader/writer bookkeeping for a shard's lock.
#[derive(Default)]
struct LockCore {
    readers: usize,
    writer: bool,
    /// Writers queued; readers yield to them (writer preference) so a
    /// stream of page renders cannot starve the daemon's status writes.
    waiting_writers: usize,
}

/// One table's shard: a writer-preferring reader/writer lock with *owned*
/// guards (guards keep the shard alive via `Arc`, so a consistent
/// [`crate::ReadView`] can hand them across call frames), plus the
/// per-table lock metrics.
///
/// Hand-rolled over `Mutex`+`Condvar` because the vendored `parking_lot`
/// stand-in has no owned-guard (`arc_lock`) API. The fast uncontended
/// path is one mutex lock/unlock per acquire and release.
pub(crate) struct Shard {
    core: Mutex<LockCore>,
    cond: Condvar,
    state: UnsafeCell<ShardState>,
    metrics: ShardMetrics,
}

// SAFETY: `state` is only ever reached through `ReadGuard`/`WriteGuard`,
// whose construction goes through the reader/writer protocol on `core`:
// shared references exist only while `readers > 0 && !writer`, exclusive
// references only while `writer && readers == 0`.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    pub fn new(name: &str, table: Table, version: u64) -> Arc<Shard> {
        Arc::new(Shard {
            core: Mutex::new(LockCore::default()),
            cond: Condvar::new(),
            state: UnsafeCell::new(ShardState { table, version }),
            metrics: ShardMetrics::for_table(name),
        })
    }

    fn lock_core(&self) -> std::sync::MutexGuard<'_, LockCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire a shared (read) guard, yielding to queued writers.
    pub fn read(self: &Arc<Self>) -> ReadGuard {
        let wait_start = Instant::now();
        let mut core = self.lock_core();
        while core.writer || core.waiting_writers > 0 {
            core = self.cond.wait(core).unwrap_or_else(|e| e.into_inner());
        }
        core.readers += 1;
        drop(core);
        self.metrics
            .lock_wait
            .observe_duration(wait_start.elapsed());
        ReadGuard {
            shard: Arc::clone(self),
        }
    }

    /// Acquire the exclusive (write) guard.
    pub fn write(self: &Arc<Self>) -> WriteGuard {
        let wait_start = Instant::now();
        let mut core = self.lock_core();
        core.waiting_writers += 1;
        while core.writer || core.readers > 0 {
            core = self.cond.wait(core).unwrap_or_else(|e| e.into_inner());
        }
        core.waiting_writers -= 1;
        core.writer = true;
        drop(core);
        self.metrics
            .lock_wait
            .observe_duration(wait_start.elapsed());
        WriteGuard {
            shard: Arc::clone(self),
            acquired: Instant::now(),
        }
    }
}

/// Owned shared guard over one shard's state.
pub(crate) struct ReadGuard {
    shard: Arc<Shard>,
}

impl std::ops::Deref for ReadGuard {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        // SAFETY: the read protocol guarantees no writer is active while
        // this guard lives.
        unsafe { &*self.shard.state.get() }
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        let mut core = self.shard.lock_core();
        core.readers -= 1;
        let wake = core.readers == 0;
        drop(core);
        if wake {
            self.shard.cond.notify_all();
        }
    }
}

/// Owned exclusive guard over one shard's state. Records the hold
/// duration into the shard's `simdb_table_lock_hold_seconds{table}`
/// histogram on drop.
pub(crate) struct WriteGuard {
    shard: Arc<Shard>,
    acquired: Instant,
}

impl std::ops::Deref for WriteGuard {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        // SAFETY: exclusive while this guard lives.
        unsafe { &*self.shard.state.get() }
    }
}

impl std::ops::DerefMut for WriteGuard {
    fn deref_mut(&mut self) -> &mut ShardState {
        // SAFETY: exclusive while this guard lives.
        unsafe { &mut *self.shard.state.get() }
    }
}

impl Drop for WriteGuard {
    fn drop(&mut self) {
        self.shard
            .metrics
            .lock_hold
            .observe_duration(self.acquired.elapsed());
        let mut core = self.shard.lock_core();
        core.writer = false;
        drop(core);
        self.shard.cond.notify_all();
    }
}

/// `target table -> [(referencing table, column index, on_delete)]` for
/// every FK column in the database. Shared by `Arc` snapshot with
/// in-flight operations; rebuilt (as a fresh `Arc`) on DDL.
pub(crate) type ReverseFk = HashMap<String, Vec<(String, usize, OnDelete)>>;

/// The engine's table directory: shards plus the schema-level metadata
/// (immutable outside the catalog write lock) that lock-set planning and
/// cascade planning need without touching row locks.
pub(crate) struct Catalog {
    tables: BTreeMap<String, Arc<Shard>>,
    /// Declarative schema per table — DDL-immutable, so introspection
    /// (admin screens, ORM drift checks) never takes a shard lock.
    schemas: BTreeMap<String, Arc<TableSchema>>,
    /// Direct FK target tables per table (deduped, self excluded).
    fk_targets: HashMap<String, Vec<String>>,
    referencing: Arc<ReverseFk>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog {
            tables: BTreeMap::new(),
            schemas: BTreeMap::new(),
            fk_targets: HashMap::new(),
            referencing: Arc::new(HashMap::new()),
        }
    }

    /// Build the runtime catalog from recovered storage (snapshot + WAL
    /// replay), carrying over the version counters the replay produced.
    pub fn from_parts(
        tables: BTreeMap<String, Table>,
        versions: &BTreeMap<String, u64>,
    ) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, table) in tables {
            let version = versions.get(&name).copied().unwrap_or(0);
            catalog
                .schemas
                .insert(name.clone(), Arc::new(table.schema.clone()));
            catalog
                .tables
                .insert(name.clone(), Shard::new(&name, table, version));
        }
        catalog.rebuild_edges();
        catalog
    }

    /// DDL: create a table (the sharded analogue of
    /// `Database::create_table`; caller holds the catalog write lock).
    pub fn create_table(&mut self, schema: TableSchema) -> Result<crate::db::LogOp, DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        // FK targets must exist (or be the table itself, for self-reference).
        for c in &schema.columns {
            if let Some(fk) = &c.foreign_key {
                if fk.references != schema.name && !self.tables.contains_key(&fk.references) {
                    return Err(DbError::Schema(format!(
                        "table {}: FK column {} references missing table {}",
                        schema.name, c.name, fk.references
                    )));
                }
            }
        }
        let table = Table::new(schema.clone())?;
        self.schemas
            .insert(schema.name.clone(), Arc::new(schema.clone()));
        // Table creation counts as version 1, as in the seed engine.
        self.tables
            .insert(schema.name.clone(), Shard::new(&schema.name, table, 1));
        self.rebuild_edges();
        Ok(crate::db::LogOp::CreateTable { schema })
    }

    fn rebuild_edges(&mut self) {
        let mut fk_targets: HashMap<String, Vec<String>> = HashMap::new();
        let mut referencing: ReverseFk = HashMap::new();
        for (name, schema) in &self.schemas {
            for (ci, c) in schema.columns.iter().enumerate() {
                if let Some(fk) = &c.foreign_key {
                    referencing.entry(fk.references.clone()).or_default().push((
                        name.clone(),
                        ci,
                        fk.on_delete,
                    ));
                    if fk.references != *name {
                        let targets = fk_targets.entry(name.clone()).or_default();
                        if !targets.contains(&fk.references) {
                            targets.push(fk.references.clone());
                        }
                    }
                }
            }
        }
        self.fk_targets = fk_targets;
        self.referencing = Arc::new(referencing);
    }

    pub fn shard(&self, name: &str) -> Result<&Arc<Shard>, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn schema(&self, name: &str) -> Result<Arc<TableSchema>, DbError> {
        self.schemas
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Every shard in canonical order (snapshot / compaction read views).
    pub fn all_shards(&self) -> impl Iterator<Item = (&str, &Arc<Shard>)> {
        self.tables.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// The reverse-FK closure of `table`: every table a delete on `table`
    /// could mutate through cascades or SET NULLs (including itself).
    fn delete_closure(&self, table: &str) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = BTreeSet::new();
        let mut queue = vec![table.to_string()];
        while let Some(t) = queue.pop() {
            if !set.insert(t.clone()) {
                continue;
            }
            if let Some(refs) = self.referencing.get(&t) {
                for (ref_table, _, _) in refs {
                    if !set.contains(ref_table) {
                        queue.push(ref_table.clone());
                    }
                }
            }
        }
        set
    }

    /// Lock plan for an insert or update on `table`: exclusive on the
    /// table, shared on its FK targets (row-existence checks).
    pub fn write_plan(&self, table: &str) -> Result<LockPlan, DbError> {
        let mut entries = BTreeMap::new();
        entries.insert(table.to_string(), (Arc::clone(self.shard(table)?), true));
        for target in self.fk_targets.get(table).into_iter().flatten() {
            if target != table {
                entries
                    .entry(target.clone())
                    .or_insert((Arc::clone(self.shard(target)?), false));
            }
        }
        Ok(self.plan_from(entries))
    }

    /// Lock plan for a delete on `table`: exclusive on the whole reverse-FK
    /// closure (cascades and SET NULLs mutate those tables).
    pub fn delete_plan(&self, table: &str) -> Result<LockPlan, DbError> {
        // Resolve the root first so unknown tables error as NoSuchTable.
        self.shard(table)?;
        let mut entries = BTreeMap::new();
        for t in self.delete_closure(table) {
            entries.insert(t.clone(), (Arc::clone(self.shard(&t)?), true));
        }
        Ok(self.plan_from(entries))
    }

    /// Lock plan for a transaction over the declared `tables`: exclusive
    /// on the union of their delete closures (any member may be inserted
    /// into, updated, or deleted from), shared on the FK targets of that
    /// write set.
    pub fn txn_plan(&self, tables: &[&str]) -> Result<LockPlan, DbError> {
        let mut writes: BTreeSet<String> = BTreeSet::new();
        for t in tables {
            self.shard(t)?;
            writes.append(&mut self.delete_closure(t));
        }
        let mut entries = BTreeMap::new();
        for w in &writes {
            entries.insert(w.clone(), (Arc::clone(self.shard(w)?), true));
        }
        for w in &writes {
            for target in self.fk_targets.get(w).into_iter().flatten() {
                if !writes.contains(target) {
                    entries
                        .entry(target.clone())
                        .or_insert((Arc::clone(self.shard(target)?), false));
                }
            }
        }
        Ok(self.plan_from(entries))
    }

    fn plan_from(&self, entries: BTreeMap<String, (Arc<Shard>, bool)>) -> LockPlan {
        LockPlan {
            entries,
            referencing: Arc::clone(&self.referencing),
        }
    }
}

/// A computed, not-yet-acquired lock set: `table -> (shard, exclusive?)`,
/// canonically ordered by the `BTreeMap`. Built under the catalog read
/// lock; acquired after it is released.
pub(crate) struct LockPlan {
    entries: BTreeMap<String, (Arc<Shard>, bool)>,
    referencing: Arc<ReverseFk>,
}

impl LockPlan {
    /// Acquire every lock in canonical order (see module docs for why this
    /// cannot deadlock) and return the locked table set.
    pub fn acquire(self) -> LockedTables {
        let mut writes = BTreeMap::new();
        let mut reads = BTreeMap::new();
        for (name, (shard, exclusive)) in self.entries {
            if exclusive {
                writes.insert(name, shard.write());
            } else {
                reads.insert(name, shard.read());
            }
        }
        LockedTables {
            writes,
            reads,
            referencing: self.referencing,
        }
    }
}

/// An acquired lock set: the tables one operation may touch, write guards
/// for its mutation targets and read guards for FK-existence checks.
/// Implements [`TableSet`], so the shared mutation engine in
/// [`crate::db::ops`] runs against it unchanged.
pub(crate) struct LockedTables {
    pub writes: BTreeMap<String, WriteGuard>,
    pub reads: BTreeMap<String, ReadGuard>,
    referencing: Arc<ReverseFk>,
}

impl TableSet for LockedTables {
    fn table_ref(&self, name: &str) -> Result<&Table, DbError> {
        if let Some(g) = self.writes.get(name) {
            return Ok(&g.table);
        }
        if let Some(g) = self.reads.get(name) {
            return Ok(&g.table);
        }
        Err(DbError::Schema(format!(
            "table {name} is not covered by this operation's lock set \
             (declare it in the transaction's table list)"
        )))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        match self.writes.get_mut(name) {
            Some(g) => Ok(&mut g.table),
            None => Err(DbError::Schema(format!(
                "table {name} is not write-locked by this operation \
                 (declare it in the transaction's table list)"
            ))),
        }
    }

    fn referencing_columns(&self, target: &str) -> Vec<(String, usize, OnDelete)> {
        self.referencing.get(target).cloned().unwrap_or_default()
    }

    fn bump_version(&mut self, table: &str) {
        if let Some(g) = self.writes.get_mut(table) {
            g.version += 1;
        } else {
            debug_assert!(false, "bump_version on unlocked table {table}");
        }
    }
}

impl LockedTables {
    /// Per-table `(rows, version)` backup of the write set — the
    /// transaction rollback journal. Strictly cheaper than the seed's
    /// whole-`Database` clone: only the tables the transaction may write.
    pub fn backup(&self) -> BTreeMap<String, (Table, u64)> {
        self.writes
            .iter()
            .map(|(n, g)| (n.clone(), (g.table.clone(), g.version)))
            .collect()
    }

    /// Restore the write set from a [`Self::backup`] (transaction abort).
    pub fn restore(&mut self, backup: BTreeMap<String, (Table, u64)>) {
        for (name, (table, version)) in backup {
            if let Some(g) = self.writes.get_mut(&name) {
                g.table = table;
                g.version = version;
            }
        }
    }
}

/// The guards behind a [`crate::ReadView`]: shared locks over a set of
/// tables, acquired in canonical order, exposed in the caller's requested
/// order (so version stamps line up with the caller's dependency list).
pub(crate) struct ViewGuards {
    /// Requested order; duplicates in the request map to one guard.
    order: Vec<String>,
    guards: BTreeMap<String, ReadGuard>,
}

impl ViewGuards {
    /// Acquire shared locks on `tables` in canonical order. The caller
    /// holds the catalog read lock while this runs — the catalog lock sits
    /// *above* every table lock in the hierarchy and table-lock holders
    /// never acquire the catalog, so blocking here cannot deadlock.
    pub fn acquire(catalog: &Catalog, tables: &[&str]) -> Result<ViewGuards, DbError> {
        let mut shards = BTreeMap::new();
        for t in tables {
            shards.insert((*t).to_string(), Arc::clone(catalog.shard(t)?));
        }
        let guards = shards
            .into_iter()
            .map(|(name, shard)| {
                let g = shard.read();
                (name, g)
            })
            .collect();
        Ok(ViewGuards {
            order: tables.iter().map(|t| (*t).to_string()).collect(),
            guards,
        })
    }

    pub fn state(&self, table: &str) -> Result<&ShardState, DbError> {
        self.guards
            .get(table)
            .map(|g| &**g)
            .ok_or_else(|| DbError::Schema(format!("table {table} is not part of this read view")))
    }

    /// Versions of the viewed tables, in the order they were requested.
    pub fn versions(&self) -> Vec<u64> {
        self.order
            .iter()
            .map(|t| self.guards.get(t).map(|g| g.version).unwrap_or(0))
            .collect()
    }

    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|s| s.as_str())
    }
}

/// Read helpers shared by `Connection` single-table reads and `ReadView`:
/// plain query execution against a pinned table.
pub(crate) fn select(state: &ShardState, query: &Query) -> Result<Vec<(i64, Row)>, DbError> {
    query.execute(&state.table)
}

pub(crate) fn select_project(
    state: &ShardState,
    query: &Query,
    column: &str,
) -> Result<Vec<(i64, Value)>, DbError> {
    query.project(&state.table, column)
}

pub(crate) fn get(state: &ShardState, table: &str, id: i64) -> Result<Row, DbError> {
    state
        .table
        .get(id)
        .cloned()
        .ok_or_else(|| DbError::NoSuchRow {
            table: table.to_string(),
            id,
        })
}

pub(crate) fn count(state: &ShardState, query: &Query) -> Result<usize, DbError> {
    query.count(&state.table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn shard() -> Arc<Shard> {
        let table = Table::new(TableSchema::new(
            "t",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
        Shard::new("t", table, 1)
    }

    #[test]
    fn readers_share_writers_exclude() {
        let s = shard();
        let r1 = s.read();
        let r2 = s.read();
        assert_eq!(r1.version, 1);
        assert_eq!(r2.version, 1);
        drop((r1, r2));
        let mut w = s.write();
        w.version = 2;
        drop(w);
        assert_eq!(s.read().version, 2);
    }

    #[test]
    fn writer_blocks_until_readers_drain() {
        let s = shard();
        let r = s.read();
        let s2 = Arc::clone(&s);
        let entered = Arc::new(AtomicUsize::new(0));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let mut w = s2.write();
            entered2.store(1, Ordering::SeqCst);
            w.version += 1;
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "writer ran under reader");
        drop(r);
        h.join().unwrap();
        assert_eq!(s.read().version, 2);
    }

    #[test]
    fn readers_yield_to_waiting_writers() {
        // With a writer queued, a new reader must wait; once the writer
        // finishes, readers proceed and see its effect.
        let s = shard();
        let r = s.read();
        let s_w = Arc::clone(&s);
        let w = std::thread::spawn(move || {
            let mut g = s_w.write();
            g.version = 99;
        });
        // Give the writer time to queue behind `r`.
        std::thread::sleep(Duration::from_millis(30));
        let s_r = Arc::clone(&s);
        let late_reader = std::thread::spawn(move || s_r.read().version);
        std::thread::sleep(Duration::from_millis(30));
        drop(r);
        w.join().unwrap();
        assert_eq!(late_reader.join().unwrap(), 99);
    }

    #[test]
    fn stress_many_readers_and_writers() {
        let s = shard();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let mut g = s.write();
                    g.version += 1;
                }
            }));
        }
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let g = s.read();
                    assert!(g.version >= 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read().version, 1 + 4 * 500);
    }

    #[test]
    fn delete_closure_follows_reverse_edges() {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new("a", vec![])).unwrap();
        c.create_table(TableSchema::new(
            "b",
            vec![Column::new("a_id", ValueType::Int).references("a", OnDelete::Cascade)],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "c",
            vec![Column::new("b_id", ValueType::Int).references("b", OnDelete::SetNull)],
        ))
        .unwrap();
        c.create_table(TableSchema::new("lonely", vec![])).unwrap();
        let closure = c.delete_closure("a");
        assert!(closure.contains("a") && closure.contains("b") && closure.contains("c"));
        assert!(!closure.contains("lonely"));
        assert_eq!(c.delete_closure("c").len(), 1);
    }

    #[test]
    fn txn_plan_locks_closure_and_fk_targets() {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new("parent", vec![])).unwrap();
        c.create_table(TableSchema::new(
            "child",
            vec![Column::new("p", ValueType::Int).references("parent", OnDelete::Cascade)],
        ))
        .unwrap();
        let plan = c.txn_plan(&["child"]).unwrap();
        let set = plan.acquire();
        // child is written; parent is read-locked for FK checks.
        assert!(set.writes.contains_key("child"));
        assert!(set.reads.contains_key("parent"));
        // Declaring parent pulls child into the write set (cascade reach).
        let plan = c.txn_plan(&["parent"]).unwrap();
        drop(set);
        let set = plan.acquire();
        assert!(set.writes.contains_key("parent") && set.writes.contains_key("child"));
    }
}
