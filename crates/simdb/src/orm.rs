//! A Django-flavoured object-relational layer.
//!
//! The paper (§4) describes being won over by Django's ORM: models define
//! the schema ("perfect table/field/type correspondence"), the schema can be
//! "reconstructed on demand" for test databases, and the same models work
//! from the website *and* from standalone programs (the GridAMP daemon).
//! [`Model`] + [`Manager`] + [`Registry`] reproduce exactly that workflow.

use crate::error::DbError;
use crate::query::Query;
use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::Value;
use crate::{Connection, ReadView};
use std::marker::PhantomData;

/// A struct that maps to a table. Implementations live beside the business
/// types (see `amp-core`); the trait is deliberately mechanical so writing
/// one reads like a Django model definition.
pub trait Model: Sized {
    /// Table name.
    const TABLE: &'static str;

    /// Declarative schema — the single source of truth for the table.
    fn schema() -> TableSchema;

    /// Hydrate from a stored row.
    fn from_row(id: i64, row: &Row) -> Result<Self, DbError>;

    /// Dehydrate to named column values (omitting the primary key).
    fn to_values(&self) -> Vec<(&'static str, Value)>;

    /// Primary key, if the instance has been saved.
    fn id(&self) -> Option<i64>;

    /// Record the assigned primary key after a create.
    fn set_id(&mut self, id: i64);
}

/// Read a named column out of a row using the model's schema. Helper for
/// `Model::from_row` implementations.
pub fn row_value<'r, M: Model>(row: &'r Row, column: &str) -> Result<&'r Value, DbError> {
    let schema = M::schema();
    let idx = schema
        .column_index(column)
        .ok_or_else(|| DbError::NoSuchColumn {
            table: M::TABLE.to_string(),
            column: column.to_string(),
        })?;
    row.get(idx)
        .ok_or_else(|| DbError::Schema(format!("row for {} shorter than schema", M::TABLE)))
}

/// Typed access to one model's table over a role-scoped connection —
/// the analogue of Django's `Model.objects`.
pub struct Manager<M: Model> {
    conn: Connection,
    _model: PhantomData<M>,
}

impl<M: Model> Manager<M> {
    pub fn new(conn: Connection) -> Self {
        Manager {
            conn,
            _model: PhantomData,
        }
    }

    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// Insert a new instance; assigns and records its id.
    pub fn create(&self, m: &mut M) -> Result<i64, DbError> {
        let values = m.to_values();
        let id = self.conn.insert(M::TABLE, &values)?;
        m.set_id(id);
        Ok(id)
    }

    /// Persist changes to an already-created instance.
    pub fn save(&self, m: &M) -> Result<(), DbError> {
        let id = m
            .id()
            .ok_or_else(|| DbError::Schema(format!("cannot save unsaved {} instance", M::TABLE)))?;
        self.conn.update(M::TABLE, id, &m.to_values())
    }

    pub fn get(&self, id: i64) -> Result<M, DbError> {
        let row = self.conn.get(M::TABLE, id)?;
        M::from_row(id, &row)
    }

    pub fn filter(&self, query: &Query) -> Result<Vec<M>, DbError> {
        self.conn
            .select(M::TABLE, query)?
            .into_iter()
            .map(|(id, row)| M::from_row(id, &row))
            .collect()
    }

    /// Single-column projection: `(id, cell)` pairs of the matching rows,
    /// skipping the full row clone + model decode of [`Self::filter`]
    /// (pass `"id"` to list primary keys alone). For hot worklist scans
    /// that only need to know *which* rows to visit.
    pub fn project(&self, query: &Query, column: &str) -> Result<Vec<(i64, Value)>, DbError> {
        self.conn.select_project(M::TABLE, query, column)
    }

    /// Primary keys of the matching rows, in query order. The cheapest
    /// way to build a worklist: no row clones, no model decode, and the
    /// planner can satisfy indexable filters without touching row data.
    pub fn ids(&self, query: &Query) -> Result<Vec<i64>, DbError> {
        Ok(self
            .project(query, "id")?
            .into_iter()
            .map(|(id, _)| id)
            .collect())
    }

    pub fn first(&self, query: &Query) -> Result<Option<M>, DbError> {
        let mut q = query.clone();
        q.limit = Some(1);
        Ok(self.filter(&q)?.into_iter().next())
    }

    pub fn all(&self) -> Result<Vec<M>, DbError> {
        self.filter(&Query::new())
    }

    pub fn count(&self, query: &Query) -> Result<usize, DbError> {
        self.conn.count(M::TABLE, query)
    }

    pub fn exists(&self, query: &Query) -> Result<bool, DbError> {
        let mut q = query.clone();
        q.limit = Some(1);
        Ok(self.count(&q)? > 0)
    }

    pub fn delete(&self, id: i64) -> Result<(), DbError> {
        self.conn.delete(M::TABLE, id)
    }
}

/// Typed reads against a pinned multi-table snapshot
/// ([`Connection::read_view`]) — the model-level face of the coherent
/// read-view API. Where a [`Manager`] takes each table's lock per call, a
/// view's reads all observe the same instant, so a page render (or daemon
/// worklist) that decodes several related models can never see table A
/// after a transaction and table B before it.
impl ReadView {
    /// All matching instances of `M`, decoded from the pinned snapshot.
    pub fn filter<M: Model>(&self, query: &Query) -> Result<Vec<M>, DbError> {
        self.select(M::TABLE, query)?
            .into_iter()
            .map(|(id, row)| M::from_row(id, &row))
            .collect()
    }

    /// One instance by primary key.
    pub fn get_model<M: Model>(&self, id: i64) -> Result<M, DbError> {
        let row = self.get(M::TABLE, id)?;
        M::from_row(id, &row)
    }

    /// Primary keys of the matching rows (no row clones, no decode) — the
    /// worklist-builder companion to [`Manager::ids`].
    pub fn ids<M: Model>(&self, query: &Query) -> Result<Vec<i64>, DbError> {
        Ok(self
            .select_project(M::TABLE, query, "id")?
            .into_iter()
            .map(|(id, _)| id)
            .collect())
    }

    /// Count of matching rows of `M`.
    pub fn count_of<M: Model>(&self, query: &Query) -> Result<usize, DbError> {
        self.count(M::TABLE, query)
    }
}

/// A set of model schemas that can be materialized as tables — Django's
/// `migrate` / `syncdb`. Registration order matters when models reference
/// each other (FK targets must be registered first).
#[derive(Default)]
pub struct Registry {
    schemas: Vec<TableSchema>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn register<M: Model>(mut self) -> Self {
        self.schemas.push(M::schema());
        self
    }

    pub fn register_schema(mut self, schema: TableSchema) -> Self {
        self.schemas.push(schema);
        self
    }

    pub fn schemas(&self) -> &[TableSchema] {
        &self.schemas
    }

    /// Create missing tables and verify existing ones match their declared
    /// schema exactly (the paper's "perfect table/field/type
    /// correspondence"). Returns the names of tables created.
    pub fn migrate(&self, conn: &Connection) -> Result<Vec<String>, DbError> {
        let mut created = Vec::new();
        for schema in &self.schemas {
            if conn.has_table(&schema.name) {
                self.verify_one(conn, schema)?;
            } else {
                conn.create_table(schema.clone())?;
                created.push(schema.name.clone());
            }
        }
        Ok(created)
    }

    fn verify_one(&self, conn: &Connection, schema: &TableSchema) -> Result<(), DbError> {
        // Introspect via a zero-row select: we need the stored schema, which
        // only the engine has; go through the Db raw access in admin.
        // Simpler: compare against admin::table_schema.
        let existing = crate::admin::table_schema(conn, &schema.name)?;
        if &existing != schema {
            return Err(DbError::Schema(format!(
                "schema drift on table {}: stored definition differs from model",
                schema.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::{PermSet, Role};
    use crate::schema::Column;
    use crate::value::ValueType;
    use crate::{Db, Query};

    #[derive(Debug, Clone, PartialEq)]
    struct Star {
        id: Option<i64>,
        name: String,
        mass: f64,
    }

    impl Model for Star {
        const TABLE: &'static str = "star";

        fn schema() -> TableSchema {
            TableSchema::new(
                "star",
                vec![
                    Column::new("name", ValueType::Text).not_null().unique(),
                    Column::new("mass", ValueType::Float).not_null(),
                ],
            )
        }

        fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
            Ok(Star {
                id: Some(id),
                name: row_value::<Self>(row, "name")?
                    .as_text()
                    .unwrap_or_default()
                    .to_string(),
                mass: row_value::<Self>(row, "mass")?.as_float().unwrap_or(0.0),
            })
        }

        fn to_values(&self) -> Vec<(&'static str, Value)> {
            vec![
                ("name", self.name.clone().into()),
                ("mass", self.mass.into()),
            ]
        }

        fn id(&self) -> Option<i64> {
            self.id
        }

        fn set_id(&mut self, id: i64) {
            self.id = Some(id);
        }
    }

    fn setup() -> Db {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(Role::new("web").grant("star", PermSet::ALL));
        let admin = db.connect("admin").unwrap();
        Registry::new().register::<Star>().migrate(&admin).unwrap();
        db
    }

    #[test]
    fn create_get_roundtrip() {
        let db = setup();
        let m = Manager::<Star>::new(db.connect("web").unwrap());
        let mut s = Star {
            id: None,
            name: "HD 52265".into(),
            mass: 1.2,
        };
        let id = m.create(&mut s).unwrap();
        assert_eq!(s.id, Some(id));
        let loaded = m.get(id).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn save_updates() {
        let db = setup();
        let m = Manager::<Star>::new(db.connect("web").unwrap());
        let mut s = Star {
            id: None,
            name: "HD 1".into(),
            mass: 1.0,
        };
        m.create(&mut s).unwrap();
        s.mass = 2.0;
        m.save(&s).unwrap();
        assert_eq!(m.get(s.id.unwrap()).unwrap().mass, 2.0);
    }

    #[test]
    fn save_unsaved_is_error() {
        let db = setup();
        let m = Manager::<Star>::new(db.connect("web").unwrap());
        let s = Star {
            id: None,
            name: "X".into(),
            mass: 1.0,
        };
        assert!(m.save(&s).is_err());
    }

    #[test]
    fn filter_first_count_exists() {
        let db = setup();
        let m = Manager::<Star>::new(db.connect("web").unwrap());
        for (n, mass) in [("A", 0.8), ("B", 1.2), ("C", 1.5)] {
            m.create(&mut Star {
                id: None,
                name: n.into(),
                mass,
            })
            .unwrap();
        }
        let q = Query::new().filter("mass", crate::Op::Gt, Value::Float(1.0));
        assert_eq!(m.count(&q).unwrap(), 2);
        assert!(m.exists(&q).unwrap());
        let first = m
            .first(&Query::new().order_by_desc("mass"))
            .unwrap()
            .unwrap();
        assert_eq!(first.name, "C");
        assert_eq!(m.all().unwrap().len(), 3);
    }

    #[test]
    fn migrate_is_idempotent_and_detects_drift() {
        let db = setup();
        let admin = db.connect("admin").unwrap();
        // idempotent: second migrate creates nothing
        let created = Registry::new().register::<Star>().migrate(&admin).unwrap();
        assert!(created.is_empty());
        // drift: a different schema under the same name errors
        let drifted = Registry::new().register_schema(TableSchema::new(
            "star",
            vec![Column::new("name", ValueType::Text)],
        ));
        assert!(drifted.migrate(&admin).is_err());
    }

    #[test]
    fn manager_respects_role() {
        let db = setup();
        db.define_role(Role::new("ro").grant("star", PermSet::READ_ONLY));
        let m = Manager::<Star>::new(db.connect("ro").unwrap());
        assert!(m
            .create(&mut Star {
                id: None,
                name: "X".into(),
                mass: 1.0
            })
            .is_err());
        assert!(m.all().is_ok());
    }
}
