//! simdb's handles into the process-wide metrics registry (`amp-obs`).
//!
//! Resolved once per process through `OnceLock`s; every observation after
//! that is a relaxed atomic op, so the storage engine's hot paths carry
//! no registry lookups.

use std::sync::OnceLock;
use std::time::Instant;

use amp_obs::{Counter, Histogram, Unit};

pub(crate) struct SimdbMetrics {
    /// How long mutators hold the engine's exclusive write lock.
    pub write_lock_hold: Histogram,
    /// WAL flushes actually issued (group commit: one per leader drain).
    pub wal_fsyncs: Counter,
    /// Records made durable per group-commit drain.
    pub wal_batch: Histogram,
}

pub(crate) fn metrics() -> &'static SimdbMetrics {
    static METRICS: OnceLock<SimdbMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SimdbMetrics {
        write_lock_hold: amp_obs::histogram("simdb_write_lock_hold_seconds"),
        wal_fsyncs: amp_obs::counter("simdb_wal_fsync_total"),
        wal_batch: amp_obs::registry().histogram("simdb_wal_commit_batch_records", Unit::Count),
    })
}

/// Measures a write-lock hold: start it immediately *after* acquiring the
/// guard and declare it after the guard binding, so drop order (reverse
/// declaration) observes the elapsed time just before the lock releases.
pub(crate) struct HoldTimer(Instant);

impl HoldTimer {
    pub fn start() -> HoldTimer {
        HoldTimer(Instant::now())
    }
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        metrics().write_lock_hold.observe_duration(self.0.elapsed());
    }
}
