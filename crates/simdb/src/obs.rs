//! simdb's handles into the process-wide metrics registry (`amp-obs`).
//!
//! Engine-wide handles are resolved once per process through `OnceLock`s;
//! per-table handles are resolved once per shard at table creation and
//! cached inside the shard, so the storage engine's hot paths carry no
//! registry lookups — every observation is a relaxed atomic op.

use std::sync::OnceLock;

use amp_obs::{Counter, Gauge, Histogram, Unit};

pub(crate) struct SimdbMetrics {
    /// WAL flushes actually issued (group commit: one per leader drain).
    pub wal_fsyncs: Counter,
    /// Records made durable per group-commit drain.
    pub wal_batch: Histogram,
    /// Distinct writer threads whose commits one leader's fsync made
    /// durable (1 = the leader alone; higher = cross-writer amortization).
    /// A conservative count: followers that enqueue while a flush is in
    /// flight join the *next* window.
    pub group_commit_writers: Histogram,
    /// Rows materialized per committed write transaction — the
    /// write-amplification numerator. With per-row `Arc` storage this
    /// tracks rows *touched*; a regression to chunk-granularity copying
    /// shows up as a ~256x jump on point updates.
    pub rows_copied_per_write: Histogram,
}

pub(crate) fn metrics() -> &'static SimdbMetrics {
    static METRICS: OnceLock<SimdbMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SimdbMetrics {
        wal_fsyncs: amp_obs::counter("simdb_wal_fsync_total"),
        wal_batch: amp_obs::registry().histogram("simdb_wal_commit_batch_records", Unit::Count),
        group_commit_writers: amp_obs::registry()
            .histogram("simdb_group_commit_writers", Unit::Count),
        rows_copied_per_write: amp_obs::registry()
            .histogram("simdb_rows_copied_per_write", Unit::Count),
    })
}

/// Per-table lock observability. The sharded engine replaced the seed's
/// whole-engine `simdb_write_lock_hold_seconds` histogram: with one lock
/// per table, "who is contended" is a per-table question, so each shard
/// carries `{table}`-labeled wait and hold histograms.
///
/// Since the MVCC read path landed, `lock_wait` and `lock_hold` are
/// **writer-path** metrics only: plain reads pin a published version with
/// two atomic ops and record nothing. `Shard::read` is still exercised by
/// writer-side FK existence locks, so a nonzero `lock_wait` during a
/// pure-read workload would mean a reader took a lock — the invariant the
/// contention bench asserts.
pub(crate) struct ShardMetrics {
    /// Time spent waiting to acquire the table's lock (read or write).
    pub lock_wait: Histogram,
    /// Time the table's *exclusive* lock was held — the window during
    /// which other writers of this table (and only this table) waited.
    pub lock_hold: Histogram,
    /// Published versions of this table still alive: the current one plus
    /// superseded versions kept reachable by long-lived `ReadView`s.
    /// Sustained growth means a reader is pinning history.
    pub live_versions: Gauge,
}

impl ShardMetrics {
    pub fn for_table(table: &str) -> ShardMetrics {
        let registry = amp_obs::registry();
        ShardMetrics {
            lock_wait: registry.histogram(
                &amp_obs::labeled("simdb_table_lock_wait_seconds", &[("table", table)]),
                Unit::Seconds,
            ),
            lock_hold: registry.histogram(
                &amp_obs::labeled("simdb_table_lock_hold_seconds", &[("table", table)]),
                Unit::Seconds,
            ),
            live_versions: registry.gauge(&amp_obs::labeled(
                "simdb_table_live_versions",
                &[("table", table)],
            )),
        }
    }
}
