//! In-memory table storage: rows, primary keys, unique & secondary indexes.
//!
//! Storage is **copy-on-write** so the MVCC layer ([`crate::shard`]) can
//! publish immutable snapshots cheaply: rows live in fixed-span chunks
//! behind `Arc`s, every row inside a chunk is behind its *own* `Arc`, and
//! each per-column index map is itself behind an `Arc`. `Table::clone` is
//! therefore a *structural* clone — chunk-map spine plus reference-count
//! bumps — while a point mutation through `Arc::make_mut` re-links one
//! chunk's row *pointers* (256 `Arc` bumps, no row data) and materializes
//! exactly the row written. A point update against a 30k-row archive table
//! copies one row, not a 256-row chunk: committed write cost is O(rows
//! touched). The [`Rows::take_copied`] accumulator counts materialized
//! rows per write so the `simdb_rows_copied_per_write` histogram can watch
//! that invariant in production.

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::value::{Value, ValueKey};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// A stored row: cell values aligned with `TableSchema::columns` order.
/// The primary key lives in the table's row map, not in the row itself.
pub type Row = Vec<Value>;

/// Rows per chunk = 2^CHUNK_SHIFT. 256 balances point-write cost (one
/// chunk copy) against spine size (rows/256 `Arc` bumps per table clone).
const CHUNK_SHIFT: u32 = 8;

type Chunk = BTreeMap<i64, Arc<Row>>;

/// Chunked copy-on-write row storage: `id >> CHUNK_SHIFT` keys a shared,
/// immutable-when-shared chunk of up to 256 row *pointers*. Iteration order
/// is ascending by id (non-negative ids sort identically chunked or flat).
///
/// Because each row sits behind its own `Arc`, re-materializing a shared
/// chunk via `Arc::make_mut` bumps reference counts instead of cloning row
/// data; the only row ever materialized per mutation is the one written.
#[derive(Debug, Default)]
pub(crate) struct Rows {
    chunks: BTreeMap<i64, Arc<Chunk>>,
    len: usize,
    /// Rows materialized (allocated/deep-copied) by mutations since the
    /// last [`Self::take_copied`] — the write-amplification numerator.
    copied: u64,
}

impl Clone for Rows {
    fn clone(&self) -> Self {
        // Structural clone: spine + Arc bumps. The amplification counter is
        // a property of *this* mutation stream, so a fresh copy (a
        // transaction write-buffer, a snapshot) starts its own count.
        Rows {
            chunks: self.chunks.clone(),
            len: self.len,
            copied: 0,
        }
    }
}

impl Rows {
    fn chunk_key(id: i64) -> i64 {
        id >> CHUNK_SHIFT
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, id: i64) -> Option<&Row> {
        self.chunks
            .get(&Self::chunk_key(id))?
            .get(&id)
            .map(|r| r.as_ref())
    }

    /// The shared handle for `id`, for callers that need to keep the old
    /// row alive (update's unindex step) without deep-copying it.
    pub fn get_arc(&self, id: i64) -> Option<Arc<Row>> {
        self.chunks.get(&Self::chunk_key(id))?.get(&id).cloned()
    }

    pub fn contains_key(&self, id: i64) -> bool {
        self.get(id).is_some()
    }

    /// Insert or replace. A shared destination chunk is re-linked (`Arc`
    /// bumps per resident row, no data copies); exactly one row — the one
    /// written — is materialized and counted.
    pub fn insert(&mut self, id: i64, row: Arc<Row>) -> Option<Arc<Row>> {
        let chunk = self
            .chunks
            .entry(Self::chunk_key(id))
            .or_insert_with(|| Arc::new(Chunk::new()));
        self.copied += 1;
        let old = Arc::make_mut(chunk).insert(id, row);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove; re-links only the containing chunk if shared.
    pub fn remove(&mut self, id: i64) -> Option<Arc<Row>> {
        let key = Self::chunk_key(id);
        let chunk = self.chunks.get_mut(&key)?;
        if !chunk.contains_key(&id) {
            return None;
        }
        let out = Arc::make_mut(chunk).remove(&id);
        if chunk.is_empty() {
            self.chunks.remove(&key);
        }
        self.len -= 1;
        out
    }

    pub fn iter(&self) -> impl Iterator<Item = (i64, &Row)> {
        self.chunks
            .values()
            .flat_map(|c| c.iter().map(|(id, r)| (*id, r.as_ref())))
    }

    /// Drain the materialized-rows counter. The commit path calls this once
    /// per write transaction and feeds the `simdb_rows_copied_per_write`
    /// histogram; a healthy engine reports ≈ rows touched, and any return
    /// to chunk-granularity copying shows up as a 256x jump.
    pub fn take_copied(&mut self) -> u64 {
        std::mem::take(&mut self.copied)
    }
}

/// A single table: schema, row storage, and indexes.
///
/// Indexes are rebuilt on load; only schema + rows are serialized (via a
/// flat-map proxy, so the on-disk format is identical to the pre-chunked
/// layout). Cloning shares all chunks and index maps structurally — see
/// the module docs for the copy-on-write granularity.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    pub(crate) rows: Rows,
    pub(crate) next_id: i64,
    /// unique column index -> value -> row id
    pub(crate) unique: HashMap<usize, Arc<HashMap<ValueKey, i64>>>,
    /// secondary column index -> value -> row ids
    pub(crate) secondary: HashMap<usize, Arc<HashMap<ValueKey, Vec<i64>>>>,
    /// Ordered companion index (every unique, indexed, or FK column):
    /// column index -> value -> sorted row ids. Serves range scans
    /// (`Lt`/`Le`/`Gt`/`Ge`) and index-ordered iteration; the hash maps
    /// above stay the fast path for point probes.
    pub(crate) ordered: HashMap<usize, Arc<BTreeMap<ValueKey, Vec<i64>>>>,
}

/// Serialization proxy matching the historic on-disk field layout
/// (`schema`, flat `rows` map, `next_id`; indexes rebuilt on load).
#[derive(Serialize, Deserialize)]
struct TableSer {
    schema: TableSchema,
    rows: BTreeMap<i64, Row>,
    next_id: i64,
}

impl Serialize for Table {
    fn to_content(&self) -> serde::Content {
        // Built directly rather than through `TableSer` so encoding a
        // snapshot never deep-copies row storage; must stay field-for-field
        // identical to `TableSer`'s layout (asserted by test).
        serde::Content::Map(vec![
            ("schema".to_string(), self.schema.to_content()),
            (
                "rows".to_string(),
                serde::Content::Map(
                    self.rows
                        .iter()
                        .map(|(id, r)| (id.to_string(), r.to_content()))
                        .collect(),
                ),
            ),
            ("next_id".to_string(), self.next_id.to_content()),
        ])
    }
}

impl Deserialize for Table {
    fn from_content(c: &serde::Content) -> Result<Table, serde::DeError> {
        let ser = TableSer::from_content(c)?;
        let mut rows = Rows::default();
        for (id, row) in ser.rows {
            rows.insert(id, Arc::new(row));
        }
        rows.take_copied();
        Ok(Table {
            schema: ser.schema,
            rows,
            next_id: ser.next_id,
            unique: HashMap::new(),
            secondary: HashMap::new(),
            ordered: HashMap::new(),
        })
    }
}

impl Table {
    pub fn new(schema: TableSchema) -> Result<Self, DbError> {
        schema.validate()?;
        let mut t = Table {
            schema,
            rows: Rows::default(),
            next_id: 1,
            unique: HashMap::new(),
            secondary: HashMap::new(),
            ordered: HashMap::new(),
        };
        t.init_indexes();
        Ok(t)
    }

    fn init_indexes(&mut self) {
        self.unique.clear();
        self.secondary.clear();
        self.ordered.clear();
        for (i, c) in self.schema.columns.iter().enumerate() {
            if c.unique {
                self.unique.insert(i, Arc::new(HashMap::new()));
            }
            if c.indexed || c.foreign_key.is_some() {
                self.secondary.insert(i, Arc::new(HashMap::new()));
            }
            if c.unique || c.indexed || c.foreign_key.is_some() {
                self.ordered.insert(i, Arc::new(BTreeMap::new()));
            }
        }
    }

    /// Rebuild all indexes from row storage (after deserialization).
    pub fn rebuild_indexes(&mut self) -> Result<(), DbError> {
        self.init_indexes();
        let pairs: Vec<(i64, Row)> = self.rows.iter().map(|(id, r)| (id, r.clone())).collect();
        for (id, row) in pairs {
            self.index_row(id, &row)?;
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn get(&self, id: i64) -> Option<&Row> {
        self.rows.get(id)
    }

    pub fn iter(&self) -> impl Iterator<Item = (i64, &Row)> {
        self.rows.iter()
    }

    /// Validate per-column constraints and uniqueness for a candidate row,
    /// excluding row `exclude` from uniqueness checks (for updates).
    fn check_row(&self, row: &Row, exclude: Option<i64>) -> Result<(), DbError> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::Schema(format!(
                "table {}: row arity {} != schema arity {}",
                self.schema.name,
                row.len(),
                self.schema.columns.len()
            )));
        }
        for (i, (col, val)) in self.schema.columns.iter().zip(row.iter()).enumerate() {
            col.check_value(&self.schema.name, val)?;
            if col.unique && !val.is_null() {
                if let Some(&other) = self
                    .unique
                    .get(&i)
                    .and_then(|m| m.get(&ValueKey(val.clone())))
                {
                    if Some(other) != exclude {
                        return Err(DbError::UniqueViolation {
                            table: self.schema.name.clone(),
                            column: col.name.clone(),
                            value: val.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn index_row(&mut self, id: i64, row: &Row) -> Result<(), DbError> {
        self.check_row(row, Some(id))?;
        for (i, val) in row.iter().enumerate() {
            if val.is_null() {
                continue;
            }
            if let Some(m) = self.unique.get_mut(&i) {
                Arc::make_mut(m).insert(ValueKey(val.clone()), id);
            }
            if let Some(m) = self.secondary.get_mut(&i) {
                Arc::make_mut(m)
                    .entry(ValueKey(val.clone()))
                    .or_default()
                    .push(id);
            }
            if let Some(m) = self.ordered.get_mut(&i) {
                let ids = Arc::make_mut(m).entry(ValueKey(val.clone())).or_default();
                // Keep each posting list sorted so index-driven results are
                // deterministic (ascending id) without a per-query sort.
                if let Err(pos) = ids.binary_search(&id) {
                    ids.insert(pos, id);
                }
            }
        }
        Ok(())
    }

    fn unindex_row(&mut self, id: i64, row: &Row) {
        for (i, val) in row.iter().enumerate() {
            if val.is_null() {
                continue;
            }
            if let Some(m) = self.unique.get_mut(&i) {
                Arc::make_mut(m).remove(&ValueKey(val.clone()));
            }
            if let Some(m) = self.secondary.get_mut(&i) {
                let m = Arc::make_mut(m);
                if let Some(v) = m.get_mut(&ValueKey(val.clone())) {
                    v.retain(|&x| x != id);
                    if v.is_empty() {
                        m.remove(&ValueKey(val.clone()));
                    }
                }
            }
            if let Some(m) = self.ordered.get_mut(&i) {
                let m = Arc::make_mut(m);
                if let Some(v) = m.get_mut(&ValueKey(val.clone())) {
                    if let Ok(pos) = v.binary_search(&id) {
                        v.remove(pos);
                    }
                    if v.is_empty() {
                        m.remove(&ValueKey(val.clone()));
                    }
                }
            }
        }
    }

    /// Insert a row, assigning a fresh primary key. FK existence is checked
    /// by the database layer before calling this.
    pub fn insert(&mut self, row: Row) -> Result<i64, DbError> {
        self.check_row(&row, None)?;
        let id = self.next_id;
        self.next_id += 1;
        let row = Arc::new(row);
        self.rows.insert(id, row.clone());
        // check_row passed with exclude=None so indexing cannot fail.
        self.index_row(id, &row).expect("validated row indexes");
        Ok(id)
    }

    /// Insert a row with an explicit id (WAL replay / snapshot restore).
    pub fn insert_with_id(&mut self, id: i64, row: Row) -> Result<(), DbError> {
        if self.rows.contains_key(id) {
            return Err(DbError::Schema(format!(
                "table {}: duplicate explicit id {}",
                self.schema.name, id
            )));
        }
        self.check_row(&row, None)?;
        let row = Arc::new(row);
        self.rows.insert(id, row.clone());
        self.index_row(id, &row).expect("validated row indexes");
        if id >= self.next_id {
            self.next_id = id + 1;
        }
        Ok(())
    }

    /// Replace an entire row. The superseded row is held by `Arc` handle —
    /// never deep-copied — for the unindex step.
    pub fn update(&mut self, id: i64, row: Row) -> Result<(), DbError> {
        let old = self.rows.get_arc(id).ok_or_else(|| DbError::NoSuchRow {
            table: self.schema.name.clone(),
            id,
        })?;
        self.check_row(&row, Some(id))?;
        self.unindex_row(id, &old);
        let row = Arc::new(row);
        self.rows.insert(id, row.clone());
        self.index_row(id, &row).expect("validated row indexes");
        Ok(())
    }

    /// Delete a row, returning it. FK restrictions are handled by the
    /// database layer.
    pub fn delete(&mut self, id: i64) -> Result<Row, DbError> {
        let row = self.rows.remove(id).ok_or_else(|| DbError::NoSuchRow {
            table: self.schema.name.clone(),
            id,
        })?;
        self.unindex_row(id, &row);
        Ok(Arc::try_unwrap(row).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Drain the write-amplification counter: rows materialized by
    /// mutations since the last call. See [`Rows::take_copied`].
    pub fn take_copied_rows(&mut self) -> u64 {
        self.rows.take_copied()
    }

    /// Fast lookup by unique column value.
    pub fn find_unique(&self, col: usize, value: &Value) -> Option<i64> {
        self.unique
            .get(&col)
            .and_then(|m| m.get(&ValueKey(value.clone())))
            .copied()
    }

    /// Fast lookup by indexed column value; `None` means no index on col.
    /// Returns a borrowed posting list — callers iterate or copy as needed,
    /// so a planner probe allocates nothing.
    pub fn find_indexed(&self, col: usize, value: &Value) -> Option<&[i64]> {
        self.secondary.get(&col).map(|m| {
            m.get(&ValueKey(value.clone()))
                .map(|v| v.as_slice())
                .unwrap_or(&[])
        })
    }

    /// True if `col` has an ordered companion index (unique, indexed, or FK).
    pub fn has_ordered_index(&self, col: usize) -> bool {
        self.ordered.contains_key(&col)
    }

    /// Row ids whose `col` value falls within the bounds, ascending by
    /// `(value, id)`. `None` means `col` has no ordered index. NULL cells
    /// are never indexed, matching SQL comparison semantics.
    pub fn range_indexed(
        &self,
        col: usize,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<i64>> {
        fn own(b: Bound<&Value>) -> Bound<ValueKey> {
            match b {
                Bound::Included(v) => Bound::Included(ValueKey(v.clone())),
                Bound::Excluded(v) => Bound::Excluded(ValueKey(v.clone())),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        let m = self.ordered.get(&col)?;
        let mut out = Vec::new();
        for ids in m.range((own(lower), own(upper))).map(|(_, ids)| ids) {
            out.extend_from_slice(ids);
        }
        Some(out)
    }

    /// The ordered index over `col` for index-ordered scans (value-sorted
    /// groups of ascending row ids), if one exists.
    pub(crate) fn ordered_index(&self, col: usize) -> Option<&BTreeMap<ValueKey, Vec<i64>>> {
        self.ordered.get(&col).map(|m| &**m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn table() -> Table {
        Table::new(TableSchema::new(
            "u",
            vec![
                Column::new("name", ValueType::Text).not_null().unique(),
                Column::new("age", ValueType::Int).indexed(),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn direct_table_serializer_matches_proxy_layout() {
        let mut t = table();
        // Span several chunks and leave a deletion hole so chunk
        // boundaries are exercised, not just one dense map.
        for i in 0..600 {
            t.insert(vec![format!("n{i}").into(), Value::Int(i)])
                .unwrap();
        }
        t.delete(300).unwrap();
        let direct = serde_json::to_vec(&t).unwrap();
        let proxy = serde_json::to_vec(&TableSer {
            schema: t.schema.clone(),
            rows: t.rows.iter().map(|(id, r)| (id, r.clone())).collect(),
            next_id: t.next_id,
        })
        .unwrap();
        assert_eq!(direct, proxy);
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut t = table();
        let a = t.insert(vec!["a".into(), Value::Int(1)]).unwrap();
        let b = t.insert(vec!["b".into(), Value::Int(2)]).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unique_enforced_and_released_on_delete() {
        let mut t = table();
        let id = t.insert(vec!["a".into(), Value::Null]).unwrap();
        assert!(matches!(
            t.insert(vec!["a".into(), Value::Null]),
            Err(DbError::UniqueViolation { .. })
        ));
        t.delete(id).unwrap();
        assert!(t.insert(vec!["a".into(), Value::Null]).is_ok());
    }

    #[test]
    fn unique_allows_self_update() {
        let mut t = table();
        let id = t.insert(vec!["a".into(), Value::Int(1)]).unwrap();
        t.update(id, vec!["a".into(), Value::Int(2)]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Int(2));
    }

    #[test]
    fn update_reindexes() {
        let mut t = table();
        let id = t.insert(vec!["a".into(), Value::Int(1)]).unwrap();
        t.update(id, vec!["b".into(), Value::Int(1)]).unwrap();
        // old name must be free again
        assert!(t.insert(vec!["a".into(), Value::Int(9)]).is_ok());
        let name_col = 0;
        assert_eq!(t.find_unique(name_col, &"b".into()), Some(id));
        assert_eq!(t.find_unique(name_col, &"zzz".into()), None);
    }

    #[test]
    fn secondary_index_tracks_rows() {
        let mut t = table();
        let a = t.insert(vec!["a".into(), Value::Int(30)]).unwrap();
        let b = t.insert(vec!["b".into(), Value::Int(30)]).unwrap();
        let hits = t.find_indexed(1, &Value::Int(30)).unwrap();
        assert_eq!(hits, [a, b]);
        t.delete(a).unwrap();
        assert_eq!(t.find_indexed(1, &Value::Int(30)).unwrap(), [b]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        assert!(matches!(
            t.insert(vec!["a".into()]),
            Err(DbError::Schema(_))
        ));
    }

    #[test]
    fn rebuild_indexes_matches_fresh() {
        let mut t = table();
        t.insert(vec!["a".into(), Value::Int(1)]).unwrap();
        t.insert(vec!["b".into(), Value::Int(1)]).unwrap();
        let mut t2 = t.clone();
        t2.unique.clear();
        t2.secondary.clear();
        t2.rebuild_indexes().unwrap();
        assert_eq!(
            t2.find_unique(0, &"a".into()),
            t.find_unique(0, &"a".into())
        );
        assert_eq!(
            t2.find_indexed(1, &Value::Int(1)),
            t.find_indexed(1, &Value::Int(1))
        );
    }

    #[test]
    fn ordered_index_serves_ranges() {
        let mut t = table();
        let mut ids = Vec::new();
        for age in [30, 10, 20, 30, 40] {
            ids.push(
                t.insert(vec![format!("u{}", ids.len()).into(), Value::Int(age)])
                    .unwrap(),
            );
        }
        // [10, 30) in (value, id) order
        assert_eq!(
            t.range_indexed(
                1,
                Bound::Included(&Value::Int(10)),
                Bound::Excluded(&Value::Int(30))
            )
            .unwrap(),
            vec![ids[1], ids[2]]
        );
        // duplicate key lists ascending ids
        assert_eq!(
            t.range_indexed(
                1,
                Bound::Included(&Value::Int(30)),
                Bound::Included(&Value::Int(30))
            )
            .unwrap(),
            vec![ids[0], ids[3]]
        );
        t.delete(ids[0]).unwrap();
        assert_eq!(
            t.range_indexed(1, Bound::Included(&Value::Int(30)), Bound::Unbounded)
                .unwrap(),
            vec![ids[3], ids[4]]
        );
        // no ordered index on a plain column
        let plain = Table::new(TableSchema::new(
            "p",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
        assert!(plain
            .range_indexed(0, Bound::Unbounded, Bound::Unbounded)
            .is_none());
        assert!(!plain.has_ordered_index(0));
        assert!(t.has_ordered_index(1));
    }

    #[test]
    fn insert_with_id_advances_counter() {
        let mut t = table();
        t.insert_with_id(10, vec!["a".into(), Value::Null]).unwrap();
        let next = t.insert(vec!["b".into(), Value::Null]).unwrap();
        assert_eq!(next, 11);
        assert!(t.insert_with_id(10, vec!["c".into(), Value::Null]).is_err());
    }
}
