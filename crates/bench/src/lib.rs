//! Experiment drivers shared by the Criterion benches and the `report_*`
//! binaries. Each public module regenerates one table/figure/claim of the
//! paper; `EXPERIMENTS.md` records paper-vs-measured values.

use amp_core::models::Simulation;
use amp_core::roles::{ROLE_ADMIN, ROLE_WEB};
use amp_core::{OptimizationSpec, SimStatus};
use amp_grid::SystemProfile;
use amp_gridamp::{deploy, seed_fixtures, DaemonConfig, Deployment};
use amp_simdb::orm::Manager;
use amp_simdb::Query;
use amp_stellar::StellarParams;

/// A mid-domain synthetic target star used across experiments.
pub fn target_star() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

/// Deploy a quiet (no background load) AMP installation on one system.
pub fn quiet_deployment(profile: SystemProfile, walltime_hours: f64) -> Deployment {
    let config = DaemonConfig {
        site: profile.name.clone(),
        work_walltime_hours: walltime_hours,
        poll_interval_secs: 300,
        ..DaemonConfig::default()
    };
    deploy(profile, config, None).expect("deployment")
}

/// Submit one simulation row via the web role and return its id.
pub fn submit(dep: &Deployment, sim: Simulation) -> i64 {
    let web = dep.db.connect(ROLE_WEB).expect("web role");
    let mut sim = sim;
    Manager::<Simulation>::new(web)
        .create(&mut sim)
        .expect("submit")
}

/// Load a simulation with the admin role.
pub fn load_sim(dep: &Deployment, id: i64) -> Simulation {
    let admin = dep.db.connect(ROLE_ADMIN).expect("admin role");
    Manager::<Simulation>::new(admin)
        .get(id)
        .expect("simulation")
}

/// All grid-job records of a simulation.
pub fn load_jobs(dep: &Deployment, id: i64) -> Vec<amp_core::models::GridJobRecord> {
    let admin = dep.db.connect(ROLE_ADMIN).expect("admin role");
    Manager::<amp_core::models::GridJobRecord>::new(admin)
        .filter(&Query::new().eq("simulation_id", id).order_by("id"))
        .expect("jobs")
}

/// Table 1 — stellar benchmark + optimization run cost per TeraGrid system.
pub mod table1 {
    use super::*;

    /// One row of Table 1.
    #[derive(Debug, Clone)]
    pub struct Row {
        pub system: String,
        /// Stellar model benchmark run time \[min].
        pub model_minutes: f64,
        /// Optimization run time \[h].
        pub opt_hours: f64,
        /// CPU-hours consumed (cores x hours over all GA + solution jobs).
        pub cpuh: f64,
        /// TeraGrid SU charge factor.
        pub su_per_cpuh: f64,
        /// Total SUs charged.
        pub sus: f64,
        /// Optimization time as a multiple of the benchmark time.
        pub multiple: f64,
    }

    /// The paper's published Table 1.
    pub fn paper_rows() -> Vec<Row> {
        let raw = [
            ("frost", 110.0, 293.3, 150_187.0, 0.558, 83_804.0),
            ("kraken", 23.6, 61.9, 31_723.0, 1.623, 51_486.0),
            ("lonestar", 15.1, 40.4, 20_670.0, 1.935, 39_996.0),
            ("ranger", 21.1, 56.2, 28_771.0, 1.644, 47_229.0),
        ];
        raw.iter()
            .map(|&(s, m, h, cpuh, f, sus)| Row {
                system: s.to_string(),
                model_minutes: m,
                opt_hours: h,
                cpuh,
                su_per_cpuh: f,
                sus,
                multiple: h * 60.0 / m,
            })
            .collect()
    }

    /// Measure the stellar-model benchmark by running a direct simulation
    /// end-to-end on a quiet system and reading the work job's run time.
    pub fn measure_stellar_benchmark(profile: SystemProfile) -> f64 {
        let mut dep = quiet_deployment(profile.clone(), 24.0);
        let (user, star, alloc, _obs) =
            seed_fixtures(&dep.db, &profile.name, &target_star(), 1).expect("fixtures");
        let sim_id = submit(
            &dep,
            Simulation::new_direct(
                star,
                user,
                StellarParams::benchmark(),
                &profile.name,
                alloc,
                0,
            ),
        );
        dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
        let jobs = load_jobs(&dep, sim_id);
        let work = jobs
            .iter()
            .find(|j| j.purpose == amp_core::JobPurpose::Work)
            .expect("work job");
        work.run_secs().expect("completed") as f64 / 60.0
    }

    /// Measurements from one full optimization run.
    #[derive(Debug, Clone)]
    pub struct OptMeasurement {
        pub opt_hours: f64,
        pub cpuh: f64,
        pub sus: f64,
    }

    /// Run a full optimization on a quiet system and account its cost.
    pub fn measure_optimization(
        profile: SystemProfile,
        spec: OptimizationSpec,
        seed: u64,
    ) -> OptMeasurement {
        let su_factor = profile.su_per_cpuh;
        let mut dep = quiet_deployment(profile.clone(), 24.0);
        let (user, star, alloc, obs) =
            seed_fixtures(&dep.db, &profile.name, &target_star(), seed).expect("fixtures");
        let sim_id = submit(
            &dep,
            Simulation::new_optimization(star, user, spec, obs, &profile.name, alloc, 0),
        );
        dep.daemon.run_until_settled(&dep.grid, 24.0 * 60.0);
        let sim = load_sim(&dep, sim_id);
        assert_eq!(
            sim.status,
            SimStatus::Done,
            "optimization did not finish: {}",
            sim.status_message
        );
        let opt_hours = (sim.completed_at.unwrap() - sim.started_at.unwrap()) as f64 / 3600.0;
        let cpuh: f64 = load_jobs(&dep, sim_id)
            .iter()
            .filter(|j| {
                matches!(
                    j.purpose,
                    amp_core::JobPurpose::Work | amp_core::JobPurpose::SolutionEvaluation
                )
            })
            .filter_map(|j| j.run_secs().map(|r| r as f64 / 3600.0 * j.cores as f64))
            .sum();
        OptMeasurement {
            opt_hours,
            cpuh,
            sus: cpuh * su_factor,
        }
    }

    /// Regenerate the whole table with a configurable ensemble spec (the
    /// paper's 4x126x200 by default; smaller specs for quick checks).
    pub fn measured_rows(spec: OptimizationSpec) -> Vec<Row> {
        amp_grid::systems::table1_systems()
            .into_iter()
            .enumerate()
            .map(|(i, profile)| {
                let model_minutes = measure_stellar_benchmark(profile.clone());
                let m = measure_optimization(profile.clone(), spec.clone(), 100 + i as u64);
                Row {
                    system: profile.name.clone(),
                    model_minutes,
                    opt_hours: m.opt_hours,
                    cpuh: m.cpuh,
                    su_per_cpuh: profile.su_per_cpuh,
                    sus: m.sus,
                    multiple: m.opt_hours * 60.0 / model_minutes,
                }
            })
            .collect()
    }

    /// Render rows in the paper's layout.
    pub fn render(rows: &[Row], title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<10} {:>14} {:>14} {:>12} {:>10} {:>12} {:>9}\n",
            "System", "Model (min)", "Opt run (h)", "CPUh", "SUs/CPUh", "SUs", "multiple"
        );
        for r in rows {
            out.push_str(&format!(
                "{:<10} {:>14.1} {:>14.1} {:>12.0} {:>10.3} {:>12.0} {:>8.0}x\n",
                r.system, r.model_minutes, r.opt_hours, r.cpuh, r.su_per_cpuh, r.sus, r.multiple
            ));
        }
        out
    }
}

/// Claim C1 — 200 iterations complete in 160x–180x the first iteration's
/// measured time, because the iteration time is the population max and the
/// population converges.
pub mod convergence {
    use amp_ga::{Ga, GaConfig};
    use amp_gridamp::StellarFitProblem;
    use amp_stellar::{iteration_minutes, synthesize, Domain, StellarParams};

    /// Per-iteration simulated cost of one GA run: (generation, minutes).
    /// Generation 0 is the initial-population evaluation — the paper's
    /// "first iteration's measured time" yardstick.
    pub fn series(
        truth: &StellarParams,
        benchmark_minutes: f64,
        population: usize,
        generations: u32,
        seed: u64,
    ) -> Vec<(u32, f64)> {
        let domain = Domain::default();
        let observed = synthesize("C1", truth, &domain, 0.1, seed).expect("observable truth");
        let problem = StellarFitProblem::new(observed);
        let mut ga = Ga::new(
            &problem,
            GaConfig {
                population,
                generations,
                ..GaConfig::default()
            },
            seed,
        );
        let cost = |ga: &Ga<'_, StellarFitProblem>| {
            let params: Vec<StellarParams> = ga
                .population()
                .iter()
                .map(|i| problem.decode(&i.phenotype))
                .collect();
            iteration_minutes(params.iter(), benchmark_minutes)
        };
        let mut out = vec![(0, cost(&ga))];
        while !ga.finished() {
            ga.step();
            out.push((ga.generation(), cost(&ga)));
        }
        out
    }

    /// Total time as a multiple of the first iteration's time.
    pub fn ratio(series: &[(u32, f64)]) -> f64 {
        let first = series.first().map(|(_, c)| *c).unwrap_or(1.0);
        let total: f64 = series.iter().map(|(_, c)| c).sum();
        total / first
    }
}

/// G1 — the section-6 Gantt/queue-wait study, and G2 — the job-chaining
/// ablation.
pub mod queue {
    use super::*;
    use amp_gridamp::{chart_for, gantt, GanttChart};

    /// Outcome of a batch of optimization runs on one (busy) system.
    #[derive(Debug, Clone)]
    pub struct QueueStudy {
        pub system: String,
        pub charts: Vec<GanttChart>,
        pub stats: amp_gridamp::WaitRunStats,
        /// Wall-clock (simulated) makespan of the whole batch \[h].
        pub makespan_hours: f64,
    }

    /// Run `n_sims` small optimization runs against a background-loaded
    /// system, with or without job chaining (§6). `bg_utilization`
    /// overrides the profile's long-run competing load — §2's "allocation
    /// oversubscription" means offered load at or above capacity, which is
    /// what makes batch queues back up.
    pub fn run_study(
        mut profile: SystemProfile,
        n_sims: usize,
        spec: OptimizationSpec,
        chaining: bool,
        bg_seed: u64,
        bg_utilization: f64,
    ) -> QueueStudy {
        profile.background_utilization = bg_utilization;
        let site = profile.name.clone();
        let config = DaemonConfig {
            site: site.clone(),
            work_walltime_hours: 6.0,
            job_chaining: chaining,
            poll_interval_secs: 300,
            ..DaemonConfig::default()
        };
        let mut dep = deploy(profile, config, Some(bg_seed)).expect("deployment");
        // warm the machine up so the queue has contention from t=0
        dep.grid.advance(amp_grid::SimDuration::from_hours(24.0));

        let (user, star, alloc, obs) =
            seed_fixtures(&dep.db, &site, &target_star(), 7).expect("fixtures");
        let mut ids = Vec::new();
        for i in 0..n_sims {
            let mut s = spec.clone();
            s.seed += i as u64 * 101;
            ids.push(submit(
                &dep,
                Simulation::new_optimization(
                    star,
                    user,
                    s,
                    obs,
                    &site,
                    alloc,
                    dep.grid.now().as_secs() as i64,
                ),
            ));
        }
        let t0 = dep.grid.now();
        dep.daemon.run_until_settled(&dep.grid, 24.0 * 90.0);
        let makespan_hours = (dep.grid.now() - t0).as_hours();

        let admin = dep.db.connect(ROLE_ADMIN).expect("admin");
        let charts: Vec<GanttChart> = ids
            .iter()
            .map(|&id| chart_for(&admin, id).expect("chart"))
            .collect();
        let rows: Vec<amp_gridamp::GanttRow> =
            charts.iter().flat_map(|c| c.rows.iter().cloned()).collect();
        QueueStudy {
            system: site,
            charts,
            stats: gantt::stats(&rows),
            makespan_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_multiples_are_near_160() {
        for row in table1::paper_rows() {
            assert!(
                (150.0..170.0).contains(&row.multiple),
                "{}: {}",
                row.system,
                row.multiple
            );
        }
    }

    #[test]
    fn stellar_benchmark_measured_matches_calibration() {
        // Lonestar is the fastest: one direct run, quick to simulate.
        let minutes = table1::measure_stellar_benchmark(amp_grid::systems::lonestar());
        assert!((minutes - 15.1).abs() < 0.5, "{minutes}");
    }

    #[test]
    fn convergence_ratio_in_paper_band() {
        let s = convergence::series(&target_star(), 23.6, 126, 200, 5);
        assert_eq!(s.len(), 201);
        let r = convergence::ratio(&s);
        assert!(
            (150.0..195.0).contains(&r),
            "convergence ratio {r} far outside the paper's 160-180 band"
        );
        // first iteration is among the most expensive
        let first = s[0].1;
        let later_mean: f64 = s[150..].iter().map(|(_, c)| c).sum::<f64>() / 51.0;
        assert!(
            later_mean < first,
            "no convergence: {later_mean} vs {first}"
        );
    }
}
