//! Load generator for the portal serving layer: closed-loop, open-loop,
//! and the C10K idle-crowd phase.
//!
//! Measures requests/second and latency percentiles for the catalog page
//! across the serving-layer design space:
//!
//! * `seed_thread_per_conn` — a faithful inline replica of the seed
//!   server (thread per connection, nonblocking accept polled every 5 ms,
//!   whole-buffer re-parse, `Connection: close`, no response cache);
//! * the event-loop server in {keep-alive, close} × {cached, cold},
//!   closed loop: each client thread issues its next request only after
//!   fully reading the previous response, so req/s reflects end-to-end
//!   service time;
//! * **open loop**: requests depart on a fixed arrival schedule whether
//!   or not earlier ones have completed, and every latency is measured
//!   from the request's *scheduled* arrival time — the
//!   coordinated-omission correction. A closed-loop client self-throttles
//!   under overload and reports flattering numbers; the open-loop
//!   overload phase (offered rate above measured capacity) shows the
//!   queueing delay a real burst would see;
//! * **C10K phase**: a child process (own fd budget) parks thousands of
//!   idle keep-alive connections on the server, an open-loop active
//!   stream runs alongside, and afterwards every parked connection is
//!   verified still live with a real request/response. Acceptance: the
//!   active stream's p99 stays within 2x of the 8-client closed-loop
//!   p99, with >= 10,000 idle connections parked.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_http_load [-- --smoke]
//!
//! `--smoke` shrinks every phase (and skips the absolute-scale
//! acceptance gates) so CI can execute the full binary path — including
//! the open-loop and idle-crowd machinery — in well under its wall-clock
//! budget, which the binary self-asserts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amp_core::models::Star;
use amp_core::{roles, setup};
use amp_portal::server::read_framed_response;
use amp_portal::{Portal, PortalConfig, Request, Response, Server, ServerConfig};
use amp_simdb::orm::Manager;
use amp_simdb::Db;

const PATH: &str = "/stars";

fn portal(cache_enabled: bool) -> Arc<Portal> {
    let db = Db::in_memory();
    setup::initialize(&db).expect("schema");
    let admin = db.connect(roles::ROLE_ADMIN).expect("admin");
    let stars = Manager::<Star>::new(admin);
    for i in 0..40 {
        let mut s = Star {
            id: None,
            identifier: format!("HD {i}"),
            name: Some(format!("Bench {i}")),
            hd_number: Some(i),
            kic_number: None,
            ra: i as f64,
            dec: -(i as f64),
            vmag: 5.0,
            in_kepler_field: false,
            source: "local".into(),
            has_results: false,
        };
        stars.create(&mut s).expect("star");
    }
    Arc::new(
        Portal::new(
            &db,
            PortalConfig {
                cache_enabled,
                ..PortalConfig::default()
            },
        )
        .expect("portal"),
    )
}

/// Best-effort bump of the open-files soft limit to its hard cap: the
/// C10K phase needs ~10k server-side fds in this process (the matching
/// client ends live in the child process, under its own budget).
#[cfg(target_os = "linux")]
fn raise_nofile_limit() {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut r = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut r) == 0 && r.cur < r.max {
            let want = Rlimit {
                cur: r.max,
                max: r.max,
            };
            let _ = setrlimit(RLIMIT_NOFILE, &want);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_nofile_limit() {}

/// The seed serving layer, replicated inline as the baseline: one thread
/// per connection, 5 ms accept poll, re-parse of the whole buffer on
/// every chunk, one request per connection.
struct SeedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SeedServer {
    fn spawn(portal: Arc<Portal>) -> SeedServer {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let portal = portal.clone();
                        std::thread::spawn(move || {
                            let _ = seed_handle_connection(&portal, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        SeedServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn seed_handle_connection(portal: &Portal, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let response = loop {
        match Request::parse(&buf) {
            Ok(req) => break portal.handle(&req),
            Err(amp_portal::http::HttpError::Incomplete) => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(_) => break Response::bad_request("malformed request"),
        }
    };
    stream.write_all(&response.to_bytes())
}

#[derive(Clone, Copy)]
enum ClientMode {
    /// Fresh connection per request, `Connection: close`.
    Close,
    /// One persistent connection per thread, sequential requests.
    KeepAlive,
}

struct Measurement {
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

impl Measurement {
    fn requests(&self) -> usize {
        self.latencies_us.len()
    }

    fn req_per_sec(&self) -> f64 {
        self.requests() as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> u64 {
        percentile(&self.latencies_us, p)
    }
}

fn percentile(latencies: &[u64], p: f64) -> u64 {
    let mut v = latencies.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    v[idx]
}

/// Run `threads` closed-loop clients, `per_thread` requests each.
fn drive(addr: SocketAddr, mode: ClientMode, threads: usize, per_thread: usize) -> Measurement {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_thread);
                match mode {
                    ClientMode::Close => {
                        let raw =
                            format!("GET {PATH} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n");
                        for _ in 0..per_thread {
                            let t = Instant::now();
                            let mut stream = TcpStream::connect(addr).expect("connect");
                            stream.write_all(raw.as_bytes()).expect("write");
                            let mut buf = Vec::new();
                            let resp =
                                read_framed_response(&mut stream, &mut buf).expect("response");
                            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    ClientMode::KeepAlive => {
                        let raw = format!("GET {PATH} HTTP/1.1\r\nHost: b\r\n\r\n");
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        let mut buf = Vec::new();
                        for _ in 0..per_thread {
                            let t = Instant::now();
                            stream.write_all(raw.as_bytes()).expect("write");
                            let resp =
                                read_framed_response(&mut stream, &mut buf).expect("response");
                            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().expect("client thread"));
    }
    Measurement {
        elapsed: start.elapsed(),
        latencies_us,
    }
}

/// Open-loop result: latencies from the scheduled arrival (the
/// coordinated-omission-corrected number that includes queueing behind
/// a late schedule) and pure service time (write → full response).
struct OpenLoopMeasurement {
    elapsed: Duration,
    offered_rate: f64,
    sched_latencies_us: Vec<u64>,
    service_latencies_us: Vec<u64>,
}

impl OpenLoopMeasurement {
    fn achieved_rate(&self) -> f64 {
        self.sched_latencies_us.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Fixed-arrival-rate (open-loop) driver: `senders` keep-alive
/// connections share a global schedule of `total` requests at
/// `rate` req/s. A sender that falls behind does NOT slow the schedule —
/// its next scheduled times keep accruing, and the measured latency
/// (completion minus *scheduled* start) absorbs the backlog, which is
/// exactly the overload signal a closed loop hides.
fn drive_open_loop(
    addr: SocketAddr,
    rate: f64,
    senders: usize,
    total: usize,
) -> OpenLoopMeasurement {
    let per_thread = total / senders;
    // Small lead-in so every thread is ready before the first arrival.
    let base = Instant::now() + Duration::from_millis(20);
    let handles: Vec<_> = (0..senders)
        .map(|w| {
            std::thread::spawn(move || {
                let raw = format!("GET {PATH} HTTP/1.1\r\nHost: b\r\n\r\n");
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut buf = Vec::new();
                let mut sched = Vec::with_capacity(per_thread);
                let mut service = Vec::with_capacity(per_thread);
                for k in 0..per_thread {
                    // Global arrival k*senders + w, at the offered rate.
                    let scheduled = base + Duration::from_secs_f64((k * senders + w) as f64 / rate);
                    let wait = scheduled.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    stream.write_all(raw.as_bytes()).expect("write");
                    let resp = read_framed_response(&mut stream, &mut buf).expect("response");
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                    let done = Instant::now();
                    sched.push(done.duration_since(scheduled).as_micros() as u64);
                    service.push(done.duration_since(sent).as_micros() as u64);
                }
                (sched, service)
            })
        })
        .collect();
    let mut sched_latencies_us = Vec::new();
    let mut service_latencies_us = Vec::new();
    for h in handles {
        let (s, v) = h.join().expect("open-loop sender");
        sched_latencies_us.extend(s);
        service_latencies_us.extend(v);
    }
    OpenLoopMeasurement {
        elapsed: base.elapsed(),
        offered_rate: rate,
        sched_latencies_us,
        service_latencies_us,
    }
}

fn report(name: &str, m: &Measurement) {
    println!(
        "{name:<28} {:>9.0} req/s   p50 {:>6} us   p99 {:>6} us   ({} requests in {:.2?})",
        m.req_per_sec(),
        m.percentile(0.50),
        m.percentile(0.99),
        m.requests(),
        m.elapsed,
    );
}

fn report_open(name: &str, m: &OpenLoopMeasurement) {
    println!(
        "{name:<28} offered {:>7.0} req/s  achieved {:>7.0}   service p50/p99 {:>5}/{:>6} us   sched p99 {:>7} us",
        m.offered_rate,
        m.achieved_rate(),
        percentile(&m.service_latencies_us, 0.50),
        percentile(&m.service_latencies_us, 0.99),
        percentile(&m.sched_latencies_us, 0.99),
    );
}

// ---------------------------------------------------------------------------
// C10K idle-crowd phase (parent side) and the child idle-holder process.
// ---------------------------------------------------------------------------

/// Child-process body (`--idle-holder <addr> <count>`): open `count`
/// keep-alive connections and park them. The parent owns the server end,
/// so each side stays inside its own fd budget. Protocol on stdio:
/// prints `READY <n>`, then answers `verify` with `ALIVE <n>` (every
/// connection proves liveness with a real request/response) and exits on
/// `exit`/EOF.
fn idle_holder(addr: &str, count: usize) {
    raise_nofile_limit();
    let addr: SocketAddr = addr.parse().expect("idle-holder addr");
    let mut conns = Vec::with_capacity(count);
    for i in 0..count {
        match TcpStream::connect(addr) {
            Ok(s) => conns.push(s),
            Err(e) => {
                println!("FAILED {i}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("READY {}", conns.len());
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        if stdin.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        match line.trim() {
            "verify" => {
                let raw = format!("GET {PATH} HTTP/1.1\r\nHost: h\r\n\r\n");
                let mut alive = 0usize;
                for s in conns.iter_mut() {
                    let ok = (|| -> std::io::Result<bool> {
                        s.set_read_timeout(Some(Duration::from_secs(10)))?;
                        s.write_all(raw.as_bytes())?;
                        let mut buf = Vec::new();
                        Ok(read_framed_response(s, &mut buf)?.starts_with("HTTP/1.1 200"))
                    })();
                    if matches!(ok, Ok(true)) {
                        alive += 1;
                    }
                }
                println!("ALIVE {alive}");
            }
            "exit" => return,
            _ => {}
        }
    }
}

struct IdleCrowd {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    parked: usize,
}

impl IdleCrowd {
    /// Spawn the child and block until all its connections are parked.
    fn spawn(addr: SocketAddr, count: usize) -> IdleCrowd {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .arg("--idle-holder")
            .arg(addr.to_string())
            .arg(count.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn idle-holder child");
        let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("child READY");
        let parked: usize = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("idle-holder failed: {line}"))
            .parse()
            .expect("READY count");
        IdleCrowd {
            child,
            reader,
            parked,
        }
    }

    /// Every parked connection answers a real request; returns how many.
    fn verify_alive(&mut self) -> usize {
        let stdin = self.child.stdin.as_mut().expect("child stdin");
        stdin.write_all(b"verify\n").expect("child verify");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("child ALIVE");
        line.trim()
            .strip_prefix("ALIVE ")
            .unwrap_or_else(|| panic!("bad verify reply: {line}"))
            .parse()
            .expect("ALIVE count")
    }

    fn stop(mut self) {
        if let Some(stdin) = self.child.stdin.as_mut() {
            let _ = stdin.write_all(b"exit\n");
        }
        let _ = self.child.wait();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--idle-holder") {
        idle_holder(&args[2], args[3].parse().expect("count"));
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let wall_start = Instant::now();
    raise_nofile_limit();

    let (workers, threads, per_thread) = if smoke { (2, 2, 25) } else { (4, 8, 250) };
    println!(
        "== portal serving-layer load ({} clients x {} requests, {} workers{}) ==\n",
        threads,
        per_thread,
        workers,
        if smoke { ", smoke" } else { "" }
    );

    // Baseline: the seed thread-per-connection server (no cache — the
    // seed had none), close-per-request clients (its only mode).
    let seed_portal = portal(false);
    let seed = SeedServer::spawn(seed_portal);
    let base = drive(seed.addr, ClientMode::Close, threads, per_thread);
    report("seed_thread_per_conn", &base);
    seed.stop();

    let pool_config = |keep_alive: bool| ServerConfig {
        workers,
        keep_alive,
        ..ServerConfig::default()
    };
    let mut keepalive_cached_rps = 0.0;
    let mut closed_loop_p99_us = u64::MAX;
    let scenarios: [(&str, bool, ClientMode); 4] = [
        ("pool_close_cold", false, ClientMode::Close),
        ("pool_close_cached", true, ClientMode::Close),
        ("pool_keepalive_cold", false, ClientMode::KeepAlive),
        ("pool_keepalive_cached", true, ClientMode::KeepAlive),
    ];
    for (name, cached, mode) in scenarios {
        let p = portal(cached);
        let server = Server::spawn_with(
            p.clone(),
            0,
            pool_config(matches!(mode, ClientMode::KeepAlive)),
        )
        .expect("spawn");
        let m = drive(server.addr(), mode, threads, per_thread);
        report(name, &m);
        if name == "pool_keepalive_cached" {
            keepalive_cached_rps = m.req_per_sec();
            closed_loop_p99_us = m.percentile(0.99);
            println!(
                "{:<28} cache: {} hits / {} misses",
                "", // aligned continuation
                p.cache().hits(),
                p.cache().misses()
            );
        }
        server.stop();
    }

    // --- Open loop: fixed arrival schedule, CO-corrected latency -------
    println!("\n== open loop (latency measured from scheduled arrival) ==\n");
    let (moderate_rate, moderate_total, senders) = if smoke {
        (500.0, 600, 2)
    } else {
        (15_000.0, 45_000, 4)
    };
    {
        let p = portal(true);
        let server = Server::spawn_with(p, 0, pool_config(true)).expect("spawn");
        let m = drive_open_loop(server.addr(), moderate_rate, senders, moderate_total);
        report_open("open_loop_moderate", &m);
        server.stop();

        // Overload: offer more than the measured closed-loop capacity.
        // The schedule cannot be met, so the sched-corrected p99 grows
        // with the backlog — the number a closed loop never shows.
        let overload_rate = if smoke {
            1_500.0
        } else {
            keepalive_cached_rps * 1.25
        };
        let overload_total = if smoke {
            1_500
        } else {
            (overload_rate * 2.0) as usize
        };
        let p = portal(true);
        let server = Server::spawn_with(p, 0, pool_config(true)).expect("spawn");
        let m = drive_open_loop(server.addr(), overload_rate, senders, overload_total);
        report_open("open_loop_overload", &m);
        server.stop();
    }

    // --- C10K: an idle keep-alive crowd parked alongside a hot stream --
    let idle_count = if smoke { 500 } else { 10_000 };
    let (active_rate, active_total) = if smoke {
        (300.0, 600)
    } else {
        (4_000.0, 20_000)
    };
    println!("\n== C10K idle crowd ({idle_count} parked keep-alive connections) ==\n");
    let p = portal(true);
    let server = Server::spawn_with(
        p,
        0,
        ServerConfig {
            workers,
            keep_alive: true,
            // The crowd must survive the whole phase without idling out,
            // and the connection cap must clear the crowd plus actives.
            idle_timeout: Duration::from_secs(300),
            max_connections: idle_count + 2_000,
            ..ServerConfig::default()
        },
    )
    .expect("spawn");
    let mut crowd = IdleCrowd::spawn(server.addr(), idle_count);
    println!("parked: {} idle connections", crowd.parked);
    let active = drive_open_loop(server.addr(), active_rate, senders, active_total);
    report_open("c10k_active_stream", &active);
    let alive = crowd.verify_alive();
    println!("alive after active stream: {alive}/{idle_count} (request/response verified)");
    crowd.stop();
    server.stop();

    // --- Acceptance ----------------------------------------------------
    let speedup = keepalive_cached_rps / base.req_per_sec();
    let c10k_p99 = percentile(&active.service_latencies_us, 0.99);
    println!("\nkeep-alive cached catalog vs seed: {speedup:.1}x  [acceptance: >= 3x]");
    println!(
        "c10k active-stream p99 {c10k_p99} us vs closed-loop p99 {closed_loop_p99_us} us  \
         [acceptance: <= 2x with >= 10k parked]"
    );
    assert!(
        alive >= idle_count,
        "idle crowd decayed: {alive}/{idle_count} still alive"
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "serving-layer speedup {speedup:.1}x below the 3x acceptance bar"
        );
        assert!(
            c10k_p99 <= 2 * closed_loop_p99_us,
            "c10k p99 {c10k_p99}us above 2x closed-loop p99 {closed_loop_p99_us}us"
        );
    }
    let wall = wall_start.elapsed();
    println!("total wall clock: {wall:.2?}");
    if smoke {
        assert!(
            wall < Duration::from_secs(90),
            "smoke run exceeded its 90s wall-clock budget: {wall:.2?}"
        );
    }
}
