//! Closed-loop load generator for the portal serving layer.
//!
//! Measures requests/second and latency percentiles for the catalog page
//! across the serving-layer design space:
//!
//! * `seed_thread_per_conn` — a faithful inline replica of the seed
//!   server (thread per connection, nonblocking accept polled every 5 ms,
//!   whole-buffer re-parse, `Connection: close`, no response cache);
//! * the worker-pool server in {keep-alive, close} × {cached, cold}.
//!
//! Closed loop: each client thread issues its next request only after
//! fully reading the previous response, so req/s reflects end-to-end
//! service time, not queueing artifacts.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_http_load [-- --smoke]
//!
//! `--smoke` shrinks the run (2 workers, 50 requests total per scenario)
//! so CI can execute the full binary path in seconds.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amp_core::models::Star;
use amp_core::{roles, setup};
use amp_portal::server::read_framed_response;
use amp_portal::{Portal, PortalConfig, Request, Response, Server, ServerConfig};
use amp_simdb::orm::Manager;
use amp_simdb::Db;

const PATH: &str = "/stars";

fn portal(cache_enabled: bool) -> Arc<Portal> {
    let db = Db::in_memory();
    setup::initialize(&db).expect("schema");
    let admin = db.connect(roles::ROLE_ADMIN).expect("admin");
    let stars = Manager::<Star>::new(admin);
    for i in 0..40 {
        let mut s = Star {
            id: None,
            identifier: format!("HD {i}"),
            name: Some(format!("Bench {i}")),
            hd_number: Some(i),
            kic_number: None,
            ra: i as f64,
            dec: -(i as f64),
            vmag: 5.0,
            in_kepler_field: false,
            source: "local".into(),
            has_results: false,
        };
        stars.create(&mut s).expect("star");
    }
    Arc::new(
        Portal::new(
            &db,
            PortalConfig {
                cache_enabled,
                ..PortalConfig::default()
            },
        )
        .expect("portal"),
    )
}

/// The seed serving layer, replicated inline as the baseline: one thread
/// per connection, 5 ms accept poll, re-parse of the whole buffer on
/// every chunk, one request per connection.
struct SeedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SeedServer {
    fn spawn(portal: Arc<Portal>) -> SeedServer {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let portal = portal.clone();
                        std::thread::spawn(move || {
                            let _ = seed_handle_connection(&portal, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        SeedServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn seed_handle_connection(portal: &Portal, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let response = loop {
        match Request::parse(&buf) {
            Ok(req) => break portal.handle(&req),
            Err(amp_portal::http::HttpError::Incomplete) => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(_) => break Response::bad_request("malformed request"),
        }
    };
    stream.write_all(&response.to_bytes())
}

#[derive(Clone, Copy)]
enum ClientMode {
    /// Fresh connection per request, `Connection: close`.
    Close,
    /// One persistent connection per thread, sequential requests.
    KeepAlive,
}

struct Measurement {
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

impl Measurement {
    fn requests(&self) -> usize {
        self.latencies_us.len()
    }

    fn req_per_sec(&self) -> f64 {
        self.requests() as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> u64 {
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    }
}

/// Run `threads` closed-loop clients, `per_thread` requests each.
fn drive(addr: SocketAddr, mode: ClientMode, threads: usize, per_thread: usize) -> Measurement {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_thread);
                match mode {
                    ClientMode::Close => {
                        let raw =
                            format!("GET {PATH} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n");
                        for _ in 0..per_thread {
                            let t = Instant::now();
                            let mut stream = TcpStream::connect(addr).expect("connect");
                            stream.write_all(raw.as_bytes()).expect("write");
                            let mut buf = Vec::new();
                            let resp =
                                read_framed_response(&mut stream, &mut buf).expect("response");
                            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    ClientMode::KeepAlive => {
                        let raw = format!("GET {PATH} HTTP/1.1\r\nHost: b\r\n\r\n");
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        let mut buf = Vec::new();
                        for _ in 0..per_thread {
                            let t = Instant::now();
                            stream.write_all(raw.as_bytes()).expect("write");
                            let resp =
                                read_framed_response(&mut stream, &mut buf).expect("response");
                            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().expect("client thread"));
    }
    Measurement {
        elapsed: start.elapsed(),
        latencies_us,
    }
}

fn report(name: &str, m: &Measurement) {
    println!(
        "{name:<28} {:>9.0} req/s   p50 {:>6} us   p99 {:>6} us   ({} requests in {:.2?})",
        m.req_per_sec(),
        m.percentile(0.50),
        m.percentile(0.99),
        m.requests(),
        m.elapsed,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (workers, threads, per_thread) = if smoke { (2, 2, 25) } else { (4, 8, 250) };
    println!(
        "== portal serving-layer load ({} clients x {} requests, {} workers{}) ==\n",
        threads,
        per_thread,
        workers,
        if smoke { ", smoke" } else { "" }
    );

    // Baseline: the seed thread-per-connection server (no cache — the
    // seed had none), close-per-request clients (its only mode).
    let seed_portal = portal(false);
    let seed = SeedServer::spawn(seed_portal);
    let base = drive(seed.addr, ClientMode::Close, threads, per_thread);
    report("seed_thread_per_conn", &base);
    seed.stop();

    let pool_config = |keep_alive: bool| ServerConfig {
        workers,
        keep_alive,
        ..ServerConfig::default()
    };
    let mut keepalive_cached_rps = 0.0;
    let scenarios: [(&str, bool, ClientMode); 4] = [
        ("pool_close_cold", false, ClientMode::Close),
        ("pool_close_cached", true, ClientMode::Close),
        ("pool_keepalive_cold", false, ClientMode::KeepAlive),
        ("pool_keepalive_cached", true, ClientMode::KeepAlive),
    ];
    for (name, cached, mode) in scenarios {
        let p = portal(cached);
        let server = Server::spawn_with(
            p.clone(),
            0,
            pool_config(matches!(mode, ClientMode::KeepAlive)),
        )
        .expect("spawn");
        let m = drive(server.addr(), mode, threads, per_thread);
        report(name, &m);
        if name == "pool_keepalive_cached" {
            keepalive_cached_rps = m.req_per_sec();
            println!(
                "{:<28} cache: {} hits / {} misses",
                "", // aligned continuation
                p.cache().hits(),
                p.cache().misses()
            );
        }
        server.stop();
    }

    let speedup = keepalive_cached_rps / base.req_per_sec();
    println!("\nkeep-alive cached catalog vs seed: {speedup:.1}x  [acceptance: >= 3x]");
    assert!(
        speedup >= 3.0 || smoke,
        "serving-layer speedup {speedup:.1}x below the 3x acceptance bar"
    );
}
