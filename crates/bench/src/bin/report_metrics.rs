//! End-to-end observability report: drives a small workload through every
//! tier (portal over TCP, durable simdb, the gridamp daemon with an
//! injected transient fault, a GA optimization), then prints the full
//! Prometheus scrape and the flight-recorder dump — the operator's view
//! of the stack after a realistic session.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_metrics [-- --smoke]
//!
//! `--smoke` shrinks the workload (fewer requests, smaller GA) so CI can
//! execute the full binary path in seconds. The binary exits nonzero if
//! any expected metric family is missing from the scrape, so CI catches
//! an instrumentation regression, not just a compile error.

use std::sync::Arc;

use amp_core::models::Simulation;
use amp_core::{roles, setup, OptimizationSpec, SimStatus};
use amp_grid::{Service, SimTime};
use amp_portal::server::fetch;
use amp_portal::{Portal, PortalConfig, Server, ServerConfig};
use amp_simdb::orm::Manager;
use amp_simdb::Db;
use amp_stellar::StellarParams;

fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests = if smoke { 20 } else { 200 };
    let (population, generations) = if smoke { (10, 5) } else { (20, 30) };

    // --- simdb tier, durable: WAL fsyncs / commit batches / lock holds ---
    let dir = std::env::temp_dir().join(format!("amp_report_metrics_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    {
        let db = Db::open(dir.join("amp.snap"), dir.join("amp.wal")).expect("durable db");
        setup::initialize(&db).expect("schema");
        let admin = db.connect(roles::ROLE_ADMIN).expect("admin");
        let stars = Manager::<amp_core::models::Star>::new(admin);
        for s in amp_stellar::famous_stars().iter().take(5) {
            let mut star = amp_core::models::Star::from_catalog(s, "local");
            stars.create(&mut star).expect("star");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- daemon + GA tier: optimization on simulated Kraken, with a
    //     one-hour GRAM outage to exercise the transient-retry path ---
    let mut dep = amp_gridamp::deploy(
        amp_grid::systems::kraken(),
        amp_gridamp::DaemonConfig::default(),
        None,
    )
    .expect("deploy");
    dep.grid
        .faults
        .add_outage("kraken", Service::Gram, SimTime(600), SimTime(4200));
    let (user, star, alloc, obs_id) =
        amp_gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 1).expect("fixtures");
    let web = dep.db.connect(roles::ROLE_WEB).expect("web");
    let spec = OptimizationSpec {
        ga_runs: 1,
        population,
        generations,
        cores_per_run: 128,
        seed: 11,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs_id, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web)
        .create(&mut sim)
        .expect("sim");
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let admin = dep.db.connect(roles::ROLE_ADMIN).expect("admin");
    let done = Manager::<Simulation>::new(admin)
        .get(sim_id)
        .expect("sim row");
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);

    // --- portal tier: real TCP requests through the worker-pool server ---
    let portal = Arc::new(Portal::new(&dep.db, PortalConfig::default()).expect("portal"));
    let server = Server::spawn_with(portal, 0, ServerConfig::default()).expect("server");
    let addr = server.addr();
    for i in 0..requests {
        let path = if i % 3 == 0 { "/" } else { "/stars" };
        let resp = fetch(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"),
        )
        .expect("fetch");
        assert!(resp.starts_with("HTTP/1.1 200"), "{path}");
    }
    let scrape = fetch(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n",
    )
    .expect("scrape");
    server.stop();

    println!("== Prometheus scrape (GET /metrics) ==");
    let body = scrape
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    println!("{body}");
    println!("== flight recorder ==");
    print!("{}", amp_obs::flight().render());

    let expected = [
        "portal_requests_total",
        "portal_request_seconds",
        "portal_conn_queue_wait_seconds",
        "simdb_plan_total",
        "simdb_wal_fsync_total",
        "simdb_table_lock_wait_seconds",
        "simdb_table_lock_hold_seconds",
        "daemon_transitions_total",
        "daemon_gram_poll_seconds",
        "daemon_transient_retries_total",
        "ga_evals_total",
    ];
    let missing: Vec<&str> = expected
        .iter()
        .copied()
        .filter(|f| !body.contains(f))
        .collect();
    if !missing.is_empty() {
        eprintln!("FAIL: scrape is missing metric families: {missing:?}");
        std::process::exit(1);
    }
    println!(
        "OK: all {} expected metric families present; {} flight events recorded",
        expected.len(),
        amp_obs::flight().recorded()
    );
}
