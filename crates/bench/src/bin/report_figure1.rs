//! Figure 1: the AMP asteroseismology workflow — input observables fan out
//! into N parallel GA runs, each a chain of sequential jobs, converging
//! into one solution evaluation. This report executes an optimization run
//! and prints the realized job graph next to the figure's expected shape.
//!
//! Usage: `cargo run --release -p amp-bench --bin report_figure1`

use amp_bench::{load_jobs, load_sim, quiet_deployment, submit, target_star};
use amp_core::models::Simulation;
use amp_core::{JobPurpose, OptimizationSpec, SimStatus};
use amp_gridamp::seed_fixtures;

fn main() {
    let spec = OptimizationSpec {
        ga_runs: 4,
        population: 40,
        generations: 60,
        cores_per_run: 128,
        seed: 9,
    };
    // 6h walltime on Kraken forces multi-job chains (60 gens x ~20 min).
    let profile = amp_grid::systems::kraken();
    let mut dep = quiet_deployment(profile, 6.0);
    let (user, star, alloc, obs) =
        seed_fixtures(&dep.db, "kraken", &target_star(), 3).expect("fixtures");
    let sim_id = submit(
        &dep,
        Simulation::new_optimization(star, user, spec.clone(), obs, "kraken", alloc, 0),
    );
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let sim = load_sim(&dep, sim_id);
    assert_eq!(sim.status, SimStatus::Done, "{}", sim.status_message);

    let jobs = load_jobs(&dep, sim_id);
    println!("== Figure 1: AMP asteroseismology workflow (executed trace) ==\n");
    println!("Input observables");
    for r in 0..spec.ga_runs as i64 {
        let chain: Vec<_> = jobs
            .iter()
            .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
            .collect();
        let boxes: String = chain
            .iter()
            .map(|j| {
                format!(
                    "[Job c{} {:>3}m]",
                    j.continuation,
                    j.run_secs().unwrap_or(0) / 60
                )
            })
            .collect::<Vec<_>>()
            .join(" -> ");
        println!("  GA Run {} : {}", r + 1, boxes);
    }
    let solution: Vec<_> = jobs
        .iter()
        .filter(|j| j.purpose == JobPurpose::SolutionEvaluation)
        .collect();
    println!(
        "         \\-> Solution Evaluation ({} job, {} min)",
        solution.len(),
        solution.first().and_then(|j| j.run_secs()).unwrap_or(0) / 60
    );
    let forks: Vec<_> = jobs
        .iter()
        .filter(|j| {
            matches!(
                j.purpose,
                JobPurpose::PreJob | JobPurpose::PostJob | JobPurpose::Cleanup
            )
        })
        .collect();
    println!("  (plus fork stages: {})", forks.len());

    println!("\nshape checks vs Figure 1:");
    let per_run: Vec<usize> = (0..spec.ga_runs as i64)
        .map(|r| {
            jobs.iter()
                .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
                .count()
        })
        .collect();
    println!("  {} parallel GA runs        [figure: 4]", per_run.len());
    println!(
        "  jobs per run {:?} (chains)  [figure: '...' = several]",
        per_run
    );
    println!(
        "  exactly one solution eval: {}   [figure: single sink]",
        solution.len() == 1
    );
    // the GA runs genuinely overlapped in time
    let starts: Vec<i64> = (0..spec.ga_runs as i64)
        .filter_map(|r| {
            jobs.iter()
                .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
                .filter_map(|j| j.started_at)
                .min()
        })
        .collect();
    let ends: Vec<i64> = (0..spec.ga_runs as i64)
        .filter_map(|r| {
            jobs.iter()
                .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
                .filter_map(|j| j.ended_at)
                .max()
        })
        .collect();
    let overlap = starts.iter().max().unwrap() < ends.iter().min().unwrap();
    println!("  GA runs overlap in time:   {overlap}   [figure: parallel lanes]");
    // solution ran after every GA run finished
    let sol_start = solution[0].started_at.unwrap();
    println!(
        "  solution after all runs:   {}   [figure: join]",
        ends.iter().all(|e| *e <= sol_start)
    );
}
