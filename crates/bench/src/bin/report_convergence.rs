//! Claim C1 (§2): "the 200 iterations can be performed in about 160x to
//! 180x of the first iteration's measured time" — because the iteration
//! blocks on the slowest star and the population's run times converge.
//!
//! Usage: `cargo run --release -p amp-bench --bin report_convergence`

use amp_bench::{convergence, target_star};
use amp_stellar::StellarParams;

fn main() {
    println!("== C1: iteration-time convergence (paper: 160x-180x of first iteration) ==\n");
    let bench = 23.6; // Kraken, the production target
    let mut ratios = Vec::new();
    for (label, truth, seed) in [
        ("mid-domain target", target_star(), 5u64),
        (
            "young 1.2 Msun",
            StellarParams {
                mass: 1.2,
                age: 2.0,
                ..target_star()
            },
            21,
        ),
        (
            "old subgiant",
            StellarParams {
                mass: 0.9,
                age: 8.0,
                ..target_star()
            },
            99,
        ),
        (
            "metal-poor dwarf",
            StellarParams {
                metallicity: 0.008,
                age: 5.5,
                ..target_star()
            },
            12,
        ),
    ] {
        let series = convergence::series(&truth, bench, 126, 200, seed);
        let ratio = convergence::ratio(&series);
        ratios.push(ratio);
        let first = series[0].1;
        let last50: f64 = series[151..].iter().map(|(_, c)| c).sum::<f64>() / 50.0;
        println!(
            "{label:<18} first iter {first:>6.1} min | mean of last 50 iters {last50:>6.1} min | total/first = {ratio:>5.1}x"
        );
        // a compact sparkline of iteration cost every 10 generations
        let marks: String = series
            .iter()
            .step_by(10)
            .map(|(_, c)| {
                let t = (c - 0.5 * first) / (0.6 * first);
                match (t * 5.0) as i64 {
                    i64::MIN..=0 => '_',
                    1 => '.',
                    2 => '-',
                    3 => '=',
                    _ => '#',
                }
            })
            .collect();
        println!("{:<18} cost/10gen: [{marks}]", "");
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean ratio {mean:.1}x (paper: \"about 160x to 180x\")");
    println!(
        "all within the approximate band [140, 190]: {}",
        ratios.iter().all(|r| (140.0..190.0).contains(r))
    );
}
