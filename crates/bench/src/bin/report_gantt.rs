//! G1 — the §6 tool: "a graphical tool that plots job wait vs. execution
//! time on a Gantt chart for each AMP simulation, as well as calculating
//! aggregate execution wait and run time statistics, in order to
//! understand the impact of queue wait time on various systems."
//!
//! Usage: `cargo run --release -p amp-bench --bin report_gantt`

use amp_bench::queue;
use amp_core::OptimizationSpec;
use amp_gridamp::render_ascii;

fn main() {
    println!("== G1: job wait vs execution time across systems ==\n");
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 30,
        generations: 40,
        cores_per_run: 128,
        seed: 77,
    };
    let mut summaries = Vec::new();
    for profile in amp_grid::systems::table1_systems() {
        let name = profile.name.clone();
        let study = queue::run_study(
            profile.clone(),
            2,
            spec.clone(),
            false,
            1234,
            profile.background_utilization + 0.35,
        );
        println!(
            "--- {} (offered background load {:.0}% of capacity) ---",
            name,
            (amp_grid::systems::table1_systems()
                .iter()
                .find(|p| p.name == name)
                .unwrap()
                .background_utilization
                + 0.35)
                * 100.0
        );
        // one chart per simulation
        for chart in &study.charts {
            println!("{}", render_ascii(chart, 64));
        }
        println!(
            "aggregate: {} jobs | mean wait {:.1} min | median {:.1} min | max {:.1} min | mean run {:.1} min | wait/run = {:.2}\n",
            study.stats.jobs,
            study.stats.mean_wait_secs / 60.0,
            study.stats.median_wait_secs / 60.0,
            study.stats.max_wait_secs as f64 / 60.0,
            study.stats.mean_run_secs / 60.0,
            study.stats.wait_to_run_ratio,
        );
        summaries.push((name, study.stats.wait_to_run_ratio, study.makespan_hours));
    }
    println!("--- summary: queue-wait impact per system ---");
    println!("{:<10} {:>10} {:>14}", "system", "wait/run", "makespan (h)");
    for (name, ratio, makespan) in &summaries {
        println!("{name:<10} {ratio:>10.2} {makespan:>14.1}");
    }
    println!(
        "\n(the oversubscribed TACC systems should show the largest wait/run — the\n\
         paper's §2 reason for preferring Kraken despite TACC's faster processors)"
    );
}
