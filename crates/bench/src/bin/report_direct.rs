//! Claim C2 (§2): "Direct model runs are trivial to configure and execute:
//! they require five floating-point parameters as input, take 10-15
//! minutes to execute on a single processor, and produce a few kilobytes
//! of output."
//!
//! Usage: `cargo run --release -p amp-bench --bin report_direct`

use amp_bench::{load_jobs, load_sim, quiet_deployment, submit, target_star};
use amp_core::models::Simulation;
use amp_core::{JobPurpose, SimStatus};
use amp_gridamp::seed_fixtures;
use amp_stellar::StellarParams;

fn main() {
    println!("== C2: direct model runs (paper: 10-15 min, 1 processor, few kB) ==\n");
    // TACC systems are the 10-15 minute reference (benchmark 15.1 / 21.1).
    let profile = amp_grid::systems::lonestar();
    let mut dep = quiet_deployment(profile, 24.0);
    let (user, star, alloc, _obs) =
        seed_fixtures(&dep.db, "lonestar", &target_star(), 8).expect("fixtures");

    let cases = [
        (
            "young dwarf",
            StellarParams {
                mass: 0.9,
                age: 2.0,
                ..target_star()
            },
        ),
        ("solar analogue", StellarParams::sun()),
        ("Kepler-like target", target_star()),
        ("evolved benchmark", StellarParams::benchmark()),
    ];
    println!(
        "{:<20} {:>12} {:>10} {:>14}",
        "star", "run (min)", "cores", "output (kB)"
    );
    let mut minutes_all = Vec::new();
    for (label, params) in cases {
        let sim_id = submit(
            &dep,
            Simulation::new_direct(
                star,
                user,
                params,
                "lonestar",
                alloc,
                dep.grid.now().as_secs() as i64,
            ),
        );
        dep.daemon.run_until_settled(&dep.grid, 24.0);
        let sim = load_sim(&dep, sim_id);
        assert_eq!(sim.status, SimStatus::Done, "{}", sim.status_message);
        let work = load_jobs(&dep, sim_id)
            .into_iter()
            .find(|j| j.purpose == JobPurpose::Work)
            .expect("work job");
        let minutes = work.run_secs().unwrap() as f64 / 60.0;
        let kb = sim.result_json.as_ref().map(|r| r.len()).unwrap_or(0) as f64 / 1024.0;
        println!("{label:<20} {minutes:>12.1} {:>10} {kb:>14.1}", work.cores);
        minutes_all.push(minutes);
    }
    let lo = minutes_all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = minutes_all.iter().cloned().fold(0.0, f64::max);
    println!("\nrange {lo:.1}-{hi:.1} min on 1 processor  [paper: 10-15 min]");
}
