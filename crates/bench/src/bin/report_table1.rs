//! Regenerate Table 1: measured stellar benchmark + optimization run cost
//! for the four TeraGrid systems, side by side with the paper's numbers.
//!
//! Usage: `cargo run --release -p amp-bench --bin report_table1 [--quick]`
//! (`--quick` uses a reduced ensemble to finish in seconds).

use amp_bench::table1;
use amp_core::OptimizationSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick {
        OptimizationSpec {
            ga_runs: 2,
            population: 30,
            generations: 40,
            cores_per_run: 128,
            seed: 1,
        }
    } else {
        OptimizationSpec::default() // the paper's 4 x 126 x 200
    };
    println!(
        "== Table 1 reproduction ({} GA runs x {} stars x {} iterations) ==\n",
        spec.ga_runs, spec.population, spec.generations
    );
    println!(
        "{}",
        table1::render(&table1::paper_rows(), "--- paper (GCE 2009) ---")
    );
    let measured = table1::measured_rows(spec);
    println!(
        "{}",
        table1::render(&measured, "--- measured (simulated TeraGrid) ---")
    );

    // Shape checks the paper's narrative draws from the table.
    let frost = &measured[0];
    let lonestar = &measured[2];
    let cheapest_sus = measured
        .iter()
        .min_by(|a, b| a.sus.total_cmp(&b.sus))
        .unwrap();
    let fastest = measured
        .iter()
        .min_by(|a, b| a.opt_hours.total_cmp(&b.opt_hours))
        .unwrap();
    println!("shape checks:");
    println!(
        "  fastest system:      {} ({:.1} h)   [paper: lonestar]",
        fastest.system, fastest.opt_hours
    );
    println!(
        "  fewest SUs:          {} ({:.0} SUs) [paper: lonestar]",
        cheapest_sus.system, cheapest_sus.sus
    );
    println!(
        "  frost/lonestar time: {:.1}x          [paper: {:.1}x]",
        frost.opt_hours / lonestar.opt_hours,
        293.3 / 40.4
    );
    println!(
        "  frost > 12 days:     {}            [paper: 'over 12 days']",
        frost.opt_hours > 12.0 * 24.0
    );

    // §2's deployment decision, recomputed from the measured landscape.
    let (best, ranked) = amp_gridamp::recommend(
        &amp_grid::systems::table1_systems(),
        &OptimizationSpec::default(),
    );
    println!(
        "
production recommendation: {}  [paper: kraken]",
        best.system
    );
    for a in &ranked {
        println!(
            "  {:<10} score {:>7.1} | predicted {:>6.1} h | concerns: {}",
            a.system,
            a.score,
            a.predicted_opt_hours,
            if a.concerns.is_empty() {
                "none".to_string()
            } else {
                a.concerns.join(", ")
            }
        );
    }
}
