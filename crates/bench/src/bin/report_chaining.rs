//! G2 — the §6 proposal, implemented and measured: "Many schedulers ...
//! support job chaining ... such that multiple jobs can be submitted at
//! once and queued independently but declared eligible to run only after a
//! prior job has completed. This would be perfect for AMP jobs, as the
//! initial simulation submission could include the 4-8 jobs that are
//! always required ..., possibly reducing the cumulative queue wait time."
//!
//! Usage: `cargo run --release -p amp-bench --bin report_chaining`

use amp_bench::queue;
use amp_core::OptimizationSpec;

fn main() {
    println!("== G2: sequential continuations vs job chaining (section 6) ==\n");
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 30,
        generations: 60, // needs several walltime-limited jobs per run
        cores_per_run: 128,
        seed: 13,
    };
    println!(
        "{:<10} {:>12} {:>16} {:>16} {:>14}",
        "system", "mode", "mean wait (min)", "total wait (h)", "makespan (h)"
    );
    for profile in [amp_grid::systems::kraken(), amp_grid::systems::lonestar()] {
        let name = profile.name.clone();
        let mut rows = Vec::new();
        for &chaining in &[false, true] {
            let study = queue::run_study(profile.clone(), 2, spec.clone(), chaining, 4242, 1.05);
            let total_wait_h = study.stats.mean_wait_secs * study.stats.jobs as f64 / 3600.0;
            println!(
                "{:<10} {:>12} {:>16.1} {:>16.1} {:>14.1}",
                name,
                if chaining { "chained" } else { "sequential" },
                study.stats.mean_wait_secs / 60.0,
                total_wait_h,
                study.makespan_hours,
            );
            rows.push((total_wait_h, study.makespan_hours));
        }
        let (seq, chain) = (&rows[0], &rows[1]);
        println!(
            "{:<10} {:>12} makespan change {:+.1}% | cumulative wait includes overlapped queueing\n",
            name,
            "->",
            (chain.1 - seq.1) / seq.1 * 100.0,
        );
    }
    println!(
        "(chained continuation jobs queue while their predecessor runs, so the\n\
         per-continuation queue wait overlaps execution instead of extending the\n\
         makespan — the effect the paper hoped for)"
    );
}
