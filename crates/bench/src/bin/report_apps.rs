//! Multi-application throughput-isolation report (ISSUE 10).
//!
//! Two campaigns on the same simulated Kraken fleet, both driven to
//! completion in fully deterministic simulated time:
//!
//! * `curvefit_only` — N curvefit direct+optimization pairs alone;
//! * `mixed` — the same N curvefit pairs sharing the daemon fleet with
//!   the heavyweight stellar trio (two direct runs + one GA campaign).
//!
//! The number under test is the **isolation ratio**: mean curvefit
//! turnaround in the mixed fleet over curvefit-only turnaround. Because
//! every simulation is leased independently and a daemon tick walks all
//! owned simulations, adding a heavyweight co-tenant application must
//! not stall the cheap one — the ratio is gated at <= 1.25.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_apps [-- --smoke]
//!
//! `--smoke` shrinks the campaign so CI exercises the full binary path
//! in seconds (gate relaxed to <= 1.5, no JSON dump). The full run
//! writes `BENCH_apps.json` to the current directory.

use std::collections::BTreeMap;

use amp_core::app::curvefit::CurveParams;
use amp_core::models::{GridJobRecord, Simulation};
use amp_core::{roles, OptimizationSpec, SimStatus};
use amp_grid::SimDuration;
use amp_gridamp::{deploy_cluster, seed_curvefit_fixtures, seed_fixtures, DaemonConfig};
use amp_simdb::orm::Manager;
use amp_stellar::StellarParams;

fn stellar_truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

fn curve_truth() -> CurveParams {
    CurveParams {
        amplitude: 1.4,
        decay: 0.25,
        omega: 4.0,
        phase: 0.6,
        offset: 0.3,
    }
}

fn cluster_config() -> DaemonConfig {
    DaemonConfig {
        work_walltime_hours: 6.0,
        lease_ttl_secs: 1800,
        poll_interval_secs: 300,
        ..DaemonConfig::default()
    }
}

#[derive(Debug, Clone, Copy)]
struct AppStats {
    sims_done: usize,
    jobs: usize,
    mean_turnaround_hours: f64,
}

#[derive(Debug)]
struct CampaignReport {
    makespan_hours: f64,
    per_app: BTreeMap<String, AppStats>,
}

/// Run one campaign to completion on `n_daemons` and report per-app
/// simulated-time statistics. Everything is seeded: two invocations with
/// the same arguments produce identical numbers.
fn run_campaign(
    n_daemons: usize,
    n_curvefit: usize,
    with_stellar: bool,
    seed: u64,
) -> CampaignReport {
    let mut cluster =
        deploy_cluster(amp_grid::systems::kraken(), cluster_config(), n_daemons).expect("cluster");
    let (user, star, alloc, obs) =
        seed_fixtures(&cluster.db, "kraken", &stellar_truth(), seed).expect("fixtures");
    let web = cluster.db.connect(roles::ROLE_WEB).expect("web");
    let sims = Manager::<Simulation>::new(web);

    if with_stellar {
        let mut d1 =
            Simulation::new_direct(star, user, StellarParams::benchmark(), "kraken", alloc, 0);
        sims.create(&mut d1).expect("stellar direct");
        let mut d2 = Simulation::new_direct(star, user, stellar_truth(), "kraken", alloc, 0);
        sims.create(&mut d2).expect("stellar direct");
        let spec = OptimizationSpec {
            ga_runs: 2,
            population: 20,
            generations: 30,
            cores_per_run: 128,
            seed: seed.wrapping_add(5),
        };
        let mut opt = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
        sims.create(&mut opt).expect("stellar optimization");
    }

    for i in 0..n_curvefit {
        let fixture_seed = seed.wrapping_add(100 + i as u64);
        let (cf_star, cf_obs) =
            seed_curvefit_fixtures(&cluster.db, user, &curve_truth(), fixture_seed)
                .expect("curvefit fixtures");
        let params = serde_json::json!({
            "amplitude": 1.4, "decay": 0.25, "omega": 4.0, "phase": 0.6, "offset": 0.3
        });
        let mut cd = Simulation::direct_for("curvefit", cf_star, user, params, "kraken", alloc, 0);
        sims.create(&mut cd).expect("curvefit direct");
        let spec = OptimizationSpec {
            ga_runs: 2,
            population: 24,
            generations: 40,
            cores_per_run: 16,
            seed: fixture_seed.wrapping_add(11),
        };
        let mut copt = Simulation::optimization_for(
            "curvefit", cf_star, user, spec, cf_obs, "kraken", alloc, 0,
        );
        sims.create(&mut copt).expect("curvefit optimization");
    }

    // Fault-free round-robin: every daemon ticks, then simulated time
    // advances one poll interval.
    let admin = cluster.db.connect(roles::ROLE_ADMIN).expect("admin");
    let sims_ro = Manager::<Simulation>::new(admin.clone());
    let mut settled = false;
    for _ in 0..20_000 {
        for d in cluster.daemons.iter_mut() {
            d.tick(&cluster.grid);
        }
        let rows = sims_ro.all().expect("sims");
        if rows.iter().all(|s| s.status == SimStatus::Done) {
            settled = true;
            break;
        }
        cluster.grid.advance(SimDuration::from_secs(300));
    }
    assert!(settled, "campaign did not settle");

    // Per-app stats in simulated hours.
    let mut per_app: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    let mut makespan = 0i64;
    for s in sims_ro.all().expect("sims") {
        let done_at = s.completed_at.expect("completed");
        makespan = makespan.max(done_at);
        let turnaround = (done_at - s.created_at) as f64 / 3600.0;
        let e = per_app.entry(s.app.clone()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += turnaround;
    }
    let mut jobs: BTreeMap<String, usize> = BTreeMap::new();
    for j in Manager::<GridJobRecord>::new(admin).all().expect("jobs") {
        *jobs.entry(j.app.clone()).or_insert(0) += 1;
    }
    CampaignReport {
        makespan_hours: makespan as f64 / 3600.0,
        per_app: per_app
            .into_iter()
            .map(|(app, (n, total))| {
                let stats = AppStats {
                    sims_done: n,
                    jobs: jobs.get(&app).copied().unwrap_or(0),
                    mean_turnaround_hours: total / n as f64,
                };
                (app, stats)
            })
            .collect(),
    }
}

fn print_report(name: &str, r: &CampaignReport) {
    println!("{name}: makespan {:.1} simulated hours", r.makespan_hours);
    for (app, s) in &r.per_app {
        println!(
            "  {app:<10} {} sims done, {} jobs, mean turnaround {:.2} h",
            s.sims_done, s.jobs, s.mean_turnaround_hours
        );
    }
}

fn json_app(r: &CampaignReport) -> String {
    r.per_app
        .iter()
        .map(|(app, s)| {
            format!(
                "        \"{app}\": {{ \"sims_done\": {}, \"jobs\": {}, \
                 \"mean_turnaround_hours\": {:.2} }}",
                s.sims_done, s.jobs, s.mean_turnaround_hours
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
        + "\n"
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_daemons, n_curvefit) = if smoke { (2, 2) } else { (4, 6) };
    let gate = if smoke { 1.5 } else { 1.25 };
    println!(
        "== multi-application throughput isolation ({n_daemons} daemons, \
         {n_curvefit} curvefit pairs{}) ==\n",
        if smoke { ", smoke" } else { "" }
    );

    let baseline = run_campaign(n_daemons, n_curvefit, false, 1);
    print_report("curvefit_only", &baseline);
    let mixed = run_campaign(n_daemons, n_curvefit, true, 1);
    print_report("mixed", &mixed);

    let t_base = baseline.per_app["curvefit"].mean_turnaround_hours;
    let t_mixed = mixed.per_app["curvefit"].mean_turnaround_hours;
    let ratio = t_mixed / t_base;
    println!("\ncurvefit turnaround, mixed vs alone: {ratio:.3}x  [acceptance: <= {gate}]");
    assert!(
        mixed.per_app.contains_key("stellar"),
        "mixed campaign ran no stellar work"
    );

    if !smoke {
        let json = format!(
            r#"{{
  "bench": "app_isolation",
  "recorded": "2026-08-09",
  "command": "cargo run --release -p amp-bench --bin report_apps",
  "machine": "simulated Kraken fleet; all numbers are deterministic simulated time, not wall clock",
  "notes": "Two seeded campaigns on a {n_daemons}-daemon fleet: {n_curvefit} curvefit direct+optimization pairs alone, then the same pairs sharing the fleet with the stellar trio (two direct runs + one 2x20x30 GA campaign). Each simulation is leased independently and a daemon tick walks every owned simulation, so the cheap application's turnaround must not degrade when the heavyweight one co-tenants the fleet. isolation_ratio is mixed-fleet mean curvefit turnaround over curvefit-only turnaround.",
  "results": {{
    "curvefit_only": {{
      "makespan_hours": {:.1},
      "apps": {{
{}      }}
    }},
    "mixed": {{
      "makespan_hours": {:.1},
      "apps": {{
{}      }}
    }},
    "isolation_ratio": {ratio:.3},
    "acceptance": "isolation_ratio <= {gate}"
  }}
}}
"#,
            baseline.makespan_hours,
            json_app(&baseline),
            mixed.makespan_hours,
            json_app(&mixed),
        );
        std::fs::write("BENCH_apps.json", json).expect("write BENCH_apps.json");
        println!("wrote BENCH_apps.json");
    }

    assert!(
        ratio <= gate,
        "curvefit turnaround degraded {ratio:.3}x when sharing the fleet with stellar \
         (acceptance <= {gate}): per-application throughput isolation regressed"
    );
    println!("OK: per-application throughput isolation holds ({ratio:.3}x <= {gate})");
}
