//! Figure 2 / S1 — the three-tier isolation architecture, demonstrated:
//! the public portal holds no grid credentials and a web-role database
//! connection cannot touch workflow state; all grid requests are
//! SAML-attributed to gateway users; only rigidly formatted input files
//! ever reach a TeraGrid system.
//!
//! Usage: `cargo run --release -p amp-bench --bin report_architecture`

use amp_bench::{load_sim, quiet_deployment, target_star};
use amp_core::models::Simulation;
use amp_core::SimStatus;
use amp_gridamp::seed_fixtures;
use amp_simdb::{Action, Query};
use amp_stellar::StellarParams;

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "FAIL" });
    assert!(ok, "{label}");
}

fn main() {
    println!("== Figure 2: architecture isolation properties ==\n");
    let mut dep = quiet_deployment(amp_grid::systems::kraken(), 24.0);
    let (user, star, alloc, _obs) =
        seed_fixtures(&dep.db, "kraken", &target_star(), 2).expect("fixtures");

    println!("web tier (public portal):");
    let web = dep.db.connect(amp_core::roles::ROLE_WEB).expect("web");
    check(
        "web role may submit simulation requests",
        web.insert(
            "simulation",
            &Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0)
                .to_values_public(),
        )
        .is_ok(),
    );
    check(
        "web role may NOT update workflow state",
        web.update("simulation", 1, &[("status", "RUNNING".into())])
            .is_err(),
    );
    check(
        "web role may NOT write grid-job records",
        web.insert("grid_job", &[]).is_err(),
    );
    check(
        "web role may NOT touch allocations",
        web.update("allocation", alloc, &[("su_used", 0.0.into())])
            .is_err(),
    );

    println!("\ndaemon tier (GridAMP):");
    let daemon_conn = dep
        .db
        .connect(amp_core::roles::ROLE_DAEMON)
        .expect("daemon");
    check(
        "daemon role drives workflow state",
        daemon_conn
            .update("simulation", 1, &[("status", "PREJOB".into())])
            .is_ok(),
    );
    check(
        "daemon role may NOT create user accounts",
        daemon_conn.insert("amp_user", &[]).is_err(),
    );
    // put the sim back so the daemon can run it for real
    daemon_conn
        .update("simulation", 1, &[("status", "QUEUED".into())])
        .expect("reset");

    println!("\ngrid tier (remote systems):");
    dep.daemon.run_until_settled(&dep.grid, 48.0);
    check(
        "simulation completed through the full stack",
        load_sim(&dep, 1).status == SimStatus::Done,
    );
    let audit = dep.grid.audit();
    check(
        "every grid request carries a SAML user",
        audit.fully_attributed(),
    );
    check(
        "requests attributable to the submitting astronomer",
        audit.by_user("astro1").count() >= 4,
    );
    check(
        "execution environment removed after completion",
        dep.grid
            .site("kraken")
            .unwrap()
            .fs
            .list_tree("amp/sim1")
            .is_empty(),
    );

    println!("\npermission matrix (role x table):");
    let tables = [
        "amp_user",
        "star",
        "observation",
        "simulation",
        "grid_job",
        "allocation",
        "notification",
    ];
    println!("  {:<22} {:>14} {:>14}", "table", "web", "daemon");
    for t in tables {
        let fmt = |role: &amp_simdb::Role| {
            ["S", "I", "U", "D"]
                .iter()
                .zip([
                    Action::Select,
                    Action::Insert,
                    Action::Update,
                    Action::Delete,
                ])
                .map(|(c, a)| if role.check(t, a).is_ok() { *c } else { "-" })
                .collect::<String>()
        };
        println!(
            "  {t:<22} {:>14} {:>14}",
            fmt(&amp_core::roles::web_role()),
            fmt(&amp_core::roles::daemon_role()),
        );
    }
    let _ = Query::new();
    println!("\nall isolation properties hold.");
}

/// `Simulation::to_values` returns `(&'static str, Value)`; expose it here
/// without dragging the Model trait into main's imports.
trait PublicValues {
    fn to_values_public(&self) -> Vec<(&'static str, amp_simdb::Value)>;
}

impl PublicValues for Simulation {
    fn to_values_public(&self) -> Vec<(&'static str, amp_simdb::Value)> {
        use amp_simdb::orm::Model;
        self.to_values()
    }
}
