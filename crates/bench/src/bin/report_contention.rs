//! Closed-loop read / paced-write contention report for the MVCC engine.
//!
//! Reader threads run a closed loop (each issues its next query the
//! moment the previous one returns) against a durable database while
//! writer threads apply a *paced* background write stream — a fixed
//! ops/sec budget, modeling the portal's actual shape: a handful of
//! daemons writing job and simulation state at their own cadence while
//! many scientists hammer the read path. In the checkpointed phase a
//! checkpointer compacts (snapshot + WAL truncate) whenever the WAL has
//! accumulated a fixed number of new records — the policy a deployment
//! uses to bound replay time, which means frequent compactions of a
//! database dominated by a large, mostly-static `archive` table.
//!
//! Pacing the writers is what makes `reads/s` meaningful on a 1-core
//! host: with writers also closed-loop the machine is work-conserving,
//! so the read-side number mostly measures how much CPU the *write*
//! path consumed (a faster write path depresses the read share), not
//! what readers experience. With an identical write budget applied to
//! both modes, the read-side difference is exactly the thing under
//! test: lock acquisition cost and blocking on the read path.
//!
//! Two modes over the same engine:
//!
//! * `global_lock` — emulates the seed's `RwLock<Database>` with an
//!   external process-wide `RwLock<()>`: writers and the checkpointer
//!   hold it exclusively for their whole operation, readers share it.
//!   This reproduces the seed's worst property: compaction serializes
//!   the entire database under the exclusive lock, stalling every
//!   reader of every table for tens of milliseconds.
//! * `mvcc` — no external lock. Reads pin each table's published MVCC
//!   version with a couple of atomic loads (no lock at all); writers
//!   serialize per table; compaction snapshots pinned versions and
//!   truncates the WAL per table, blocking neither readers nor writers.
//!
//! Four phases:
//!
//! * `steady` — background inserts, no checkpointer. The pre-MVCC
//!   engine sat at 0.88x here (readers paid a mutex+condvar handoff on
//!   every shard acquire); lock-free reads must clear 1x.
//! * `checkpointed` — the same plus the WAL-bounded checkpointer, with
//!   each write batch also point-updating one archive row so every
//!   checkpoint must genuinely re-encode the large table (the clean-table
//!   snapshot cache would otherwise skip a static archive). This is where
//!   the global lock collapses read throughput: every compaction of the
//!   archive-dominated database stalls every reader.
//! * `read_mostly` — the portal's 95/5 profile: the writer threads
//!   interleave 19 catalog reads per insert (closed-loop — the mix
//!   itself sets the write share), so exclusive acquisitions are rare
//!   and almost every operation is a read.
//! * `archive_update` — copy-on-write's worst case: the paced writers
//!   issue point updates against the 30k-row archive table while
//!   readers scan it. Each update clones one Arc'd row chunk and the
//!   touched index maps, never the whole table; this phase keeps that
//!   property measured.
//!
//! The report also checks the MVCC invariant directly: a pure-read burst
//! must leave the writer-path `simdb_table_lock_wait_seconds` histogram
//! untouched — a reader taking a shard lock is a regression even if the
//! throughput numbers survive.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_contention [-- --smoke]
//!
//! `--smoke` shrinks the run so CI exercises the full binary path in a
//! few seconds, asserting the lock-free-read invariant exactly and the
//! throughput ratios with a noise margin (and skipping the JSON dump);
//! it also asserts its own wall-clock budget (< 120s) so the CI step
//! can never quietly grow past its allowance. The full run writes
//! `BENCH_concurrency.json` to the current directory and exits nonzero
//! unless steady-state reads beat the global lock (> 1.0x), the
//! checkpointed mixed workload holds >= 2.5x, **and** the write side
//! keeps pace: every durable paced phase (steady, checkpointed,
//! archive_update) must deliver >= 0.9x of the global-lock mode's write
//! throughput — the read wins may not be bought by starving writers.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use amp_simdb::prelude::*;

const READERS: usize = 4;
const WRITERS: usize = 2;
const CATALOG_ROWS: i64 = 500;
/// Checkpoint after this many committed writes — a WAL-replay bound.
/// At the paced write rate this cadence retriggers faster than one
/// archive re-encode completes, so the checkpointed phase measures the
/// steady state it is about — a compaction effectively always in flight —
/// rather than a noisy count of discrete stall windows per run.
const CHECKPOINT_EVERY: u64 = 1000;
/// Reads per write for each writer thread in the read-mostly phase.
const READ_MOSTLY_RATIO: usize = 19;
/// Paced background write budget, summed over all writers (ops/sec):
/// comfortably under either mode's write capacity, so both modes apply
/// the same write workload and differ only in what readers experience.
const WRITE_RATE: f64 = 8_000.0;
/// Archive point updates are heavier (chunk COW + payload rewrite), so
/// that phase paces lower to stay under the global mode's capacity.
const ARCHIVE_WRITE_RATE: f64 = 4_000.0;
/// Paced writers commit each wakeup's work as one transaction of this
/// many ops, the way the gridamp daemons commit a tick's worth of job
/// updates at once (the tick path batches every dirty row into a single
/// transaction per phase) — and so both modes see the same number of
/// writer wakeups per second rather than the global lock accidentally
/// batching writer work by briefly starving it.
const WRITE_BATCH: u32 = 64;

/// What the writer threads do (readers always scan).
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// Writers insert into disjoint `journal_*` tables at `WRITE_RATE`.
    Mixed,
    /// `Mixed`, plus each batch point-updates one `archive` row in the
    /// same transaction — the checkpointed phase's write stream. Keeping
    /// the archive dirty means every checkpoint genuinely re-encodes it
    /// (the clean-table snapshot cache cannot skip it), so the phase
    /// keeps measuring what an expensive compaction costs readers.
    MixedArchiveTouch,
    /// Writers interleave 19 catalog reads per journal insert (95/5),
    /// closed-loop: the mix itself sets the write share.
    ReadMostly,
    /// Writers point-update rows of the large `archive` table at
    /// `ARCHIVE_WRITE_RATE`.
    ArchiveUpdate,
}

impl Workload {
    /// Per-writer pacing interval (None = closed loop).
    fn pace(self) -> Option<Duration> {
        let rate = match self {
            Workload::Mixed | Workload::MixedArchiveTouch => WRITE_RATE,
            Workload::ReadMostly => return None,
            Workload::ArchiveUpdate => ARCHIVE_WRITE_RATE,
        };
        Some(Duration::from_secs_f64(WRITERS as f64 / rate))
    }
}

/// Fresh durable database per phase: a populated read-side table, one
/// disjoint write-side table per writer thread, and a large static
/// archive that dominates snapshot cost (as star catalogs and archived
/// observations dominate a real AMP database).
fn build_db(dir: &Path, archive_rows: i64) -> Db {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("tmpdir");
    let db = Db::open(dir.join("bench.snap"), dir.join("bench.wal")).expect("open");
    db.define_role(Role::superuser("bench"));
    let conn = db.connect("bench").expect("connect");
    let int_table = |name: &str| TableSchema::new(name, vec![Column::new("v", ValueType::Int)]);
    conn.create_table(int_table("catalog")).expect("catalog");
    for w in 0..WRITERS {
        conn.create_table(int_table(&format!("journal_{w}")))
            .expect("journal");
    }
    conn.create_table(TableSchema::new(
        "archive",
        vec![
            Column::new("v", ValueType::Int),
            Column::new("payload", ValueType::Text),
        ],
    ))
    .expect("archive");
    for i in 0..CATALOG_ROWS {
        conn.insert("catalog", &[("v", Value::Int(i))])
            .expect("catalog row");
    }
    let payload = "x".repeat(48);
    for i in 0..archive_rows {
        conn.insert(
            "archive",
            &[
                ("v", Value::Int(i)),
                ("payload", Value::Text(payload.clone())),
            ],
        )
        .expect("archive row");
    }
    // Start each phase from a compacted state so the WAL-growth policy,
    // not setup traffic, decides when the first checkpoint fires. Commits
    // are durable (group-commit fdatasync) during the measured run — the
    // deployment posture — but not during bulk setup.
    db.compact().expect("initial compact");
    db.set_fsync(true);
    db
}

/// The portal-style read: a narrow band scan (a user's slice of the
/// catalog), not a half-table dump — point updates rewrite `payload`,
/// never `v`, so the same shape works against the archive table with a
/// stable expected cardinality.
fn band_query(lo: i64) -> Query {
    Query::new()
        .filter("v", Op::Ge, Value::Int(lo))
        .filter("v", Op::Lt, Value::Int(lo + 25))
}

struct Measurement {
    reads: u64,
    writes: u64,
    checkpoints: u64,
    elapsed: Duration,
}

impl Measurement {
    fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }

    fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drive the workload for `duration`: closed-loop readers, paced writers
/// (per `workload`). When `global` is set, every op first takes the
/// emulated whole-database lock (readers shared; writers and the
/// checkpointer exclusive) — the seed engine's concurrency control.
/// When `checkpoint_every` is set, a dedicated thread compacts each
/// time that many writes have committed.
fn run(
    db: &Db,
    global: Option<Arc<RwLock<()>>>,
    checkpoint_every: Option<u64>,
    workload: Workload,
    archive_rows: i64,
    duration: Duration,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut readers = Vec::new();
    for r in 0..READERS {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let (table, rows) = if workload == Workload::ArchiveUpdate {
            ("archive", archive_rows)
        } else {
            ("catalog", CATALOG_ROWS)
        };
        // Spread the reader bands across the table so they don't all hit
        // the same chunk.
        let query = band_query((rows / 2) + 25 * r as i64);
        readers.push(std::thread::spawn(move || {
            let conn = db.connect("bench").expect("connect");
            let mut done = 0u64;
            // The portal's read mix: mostly point lookups (a session's
            // user row, one job's status) with a periodic band scan (a
            // listing page).
            while !stop.load(Ordering::Relaxed) {
                let _shared = global.as_ref().map(|l| l.read().expect("read lock"));
                if done % 16 == 15 {
                    let out = conn.select(table, &query).expect("select");
                    assert_eq!(out.len(), 25);
                } else {
                    let id = 1 + (done as i64 * 31 + r as i64) % rows;
                    conn.get(table, id).expect("get");
                }
                done += 1;
            }
            done
        }));
    }

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let committed = Arc::clone(&committed);
        let pace = workload.pace();
        writers.push(std::thread::spawn(move || {
            let conn = db.connect("bench").expect("connect");
            let table = format!("journal_{w}");
            let catalog_query = band_query(CATALOG_ROWS / 2);
            let mut reads = 0u64;
            let mut writes = 0u64;
            let mut i = 0i64;
            let mut next = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                if let Some(interval) = pace {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    // A writer that fell behind (e.g. stalled behind the
                    // global lock during a compaction) catches up at full
                    // speed rather than dropping its budget.
                    next += interval * WRITE_BATCH;
                }
                match workload {
                    // 19 reads per write by op count, with the writes
                    // committed one durable transaction per batch (as in
                    // every other phase) so the mix stays 95/5 instead of
                    // being redefined by per-op fsync latency.
                    Workload::ReadMostly => {
                        for _ in 0..READ_MOSTLY_RATIO * WRITE_BATCH as usize {
                            let _shared = global.as_ref().map(|l| l.read().expect("read lock"));
                            let rows = conn.select("catalog", &catalog_query).expect("select");
                            assert_eq!(rows.len(), 25);
                            reads += 1;
                        }
                        let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                        let base = i;
                        conn.transaction(&[&table], |tx| {
                            for n in 0..WRITE_BATCH {
                                tx.insert(&table, &[("v", Value::Int(base + n as i64))])?;
                            }
                            Ok(())
                        })
                        .expect("txn");
                        committed.fetch_add(WRITE_BATCH as u64, Ordering::Relaxed);
                        i += WRITE_BATCH as i64;
                        writes += WRITE_BATCH as u64;
                    }
                    // Each paced wakeup commits its batch as one
                    // transaction — a daemon tick's worth of state. The
                    // global lock must hold its exclusive section across
                    // the whole commit (inserts + WAL flush); the MVCC
                    // engine holds only the written tables' writer locks,
                    // so catalog readers never notice.
                    Workload::Mixed | Workload::MixedArchiveTouch => {
                        let touch_archive = workload == Workload::MixedArchiveTouch;
                        let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                        let base = i;
                        let tables: Vec<&str> = if touch_archive {
                            vec![&table, "archive"]
                        } else {
                            vec![&table]
                        };
                        conn.transaction(&tables, |tx| {
                            for n in 0..WRITE_BATCH {
                                tx.insert(&table, &[("v", Value::Int(base + n as i64))])?;
                            }
                            if touch_archive {
                                let id = 1 + (base / WRITE_BATCH as i64) % archive_rows;
                                tx.update(
                                    "archive",
                                    id,
                                    &[("payload", Value::Text(format!("c{base}")))],
                                )?;
                            }
                            Ok(())
                        })
                        .expect("txn");
                        committed.fetch_add(WRITE_BATCH as u64, Ordering::Relaxed);
                        i += WRITE_BATCH as i64;
                        writes += WRITE_BATCH as u64;
                    }
                    Workload::ArchiveUpdate => {
                        // Round-robin point updates across the big table:
                        // each one must COW a single chunk, not clone the
                        // whole table.
                        let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                        let base = i;
                        conn.transaction(&["archive"], |tx| {
                            for n in 0..WRITE_BATCH {
                                let k = base + n as i64;
                                let id = 1 + (k % archive_rows);
                                tx.update(
                                    "archive",
                                    id,
                                    &[("payload", Value::Text(format!("u{k}")))],
                                )?;
                            }
                            Ok(())
                        })
                        .expect("txn");
                        committed.fetch_add(WRITE_BATCH as u64, Ordering::Relaxed);
                        i += WRITE_BATCH as i64;
                        writes += WRITE_BATCH as u64;
                    }
                }
            }
            (reads, writes)
        }));
    }

    let checkpointer = checkpoint_every.map(|every| {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let committed = Arc::clone(&committed);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = committed.load(Ordering::Relaxed);
                if now - last < every {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                last = now;
                let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                db.compact().expect("compact");
                done += 1;
            }
            done
        })
    });

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut reads: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    let mut writes = 0u64;
    for h in writers {
        let (r, w) = h.join().expect("writer");
        reads += r;
        writes += w;
    }
    let checkpoints = checkpointer.map_or(0, |h| h.join().expect("checkpointer"));
    Measurement {
        reads,
        writes,
        checkpoints,
        elapsed: start.elapsed(),
    }
}

fn report(name: &str, m: &Measurement) {
    println!(
        "{name:<24} {:>9.0} reads/s   {:>8.0} writes/s   {:>3} checkpoints   ({:.2?})",
        m.reads_per_sec(),
        m.writes_per_sec(),
        m.checkpoints,
        m.elapsed,
    );
}

/// The acceptance invariant behind every ratio: plain reads and
/// `read_view` acquire no shard lock, so a pure-read burst leaves the
/// writer-path lock-wait histogram exactly where it was.
fn assert_reads_lock_free(db: &Db) {
    let wait = amp_obs::registry().histogram(
        &amp_obs::labeled("simdb_table_lock_wait_seconds", &[("table", "catalog")]),
        amp_obs::Unit::Seconds,
    );
    let before = wait.count();
    let threads: Vec<_> = (0..READERS)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                let conn = db.connect("bench").expect("connect");
                let query = band_query(CATALOG_ROWS / 2);
                for _ in 0..2_000 {
                    conn.select("catalog", &query).expect("select");
                    conn.read_view(&["catalog"]).expect("view");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("pure reader");
    }
    let after = wait.count();
    assert_eq!(
        before, after,
        "pure-read burst recorded shard lock waits: the read path took a lock"
    );
    println!(
        "pure-read burst: {} reads + views, catalog lock-wait samples {before} -> {after} \
         (read path is lock-free)\n",
        READERS * 2 * 2_000
    );
}

/// Durable paced phases gated on writer-side throughput (the read-mostly
/// phase is closed-loop by design: its write share is set by the mix, so
/// a write ratio there measures the mix, not the engine).
const WRITE_GATED_PHASES: [&str; 3] = ["steady", "checkpointed", "archive_update"];
const WRITE_RATIO_FLOOR: f64 = 0.9;
/// Noise floor for the same gate under sub-second smoke phases.
const SMOKE_WRITE_RATIO_FLOOR: f64 = 0.7;
/// The CI smoke step's wall-clock allowance.
const SMOKE_BUDGET: Duration = Duration::from_secs(120);

/// Writer-side acceptance: the durable paced phases must move >= `floor`
/// of the write budget the global-lock mode moves. Before group commit
/// each writer paid its own fdatasync and the MVCC mode sat at ~0.5x
/// here; the leader/follower WAL flush is what this gate keeps honest.
fn assert_write_ratios(write_ratios: &[(&str, f64)], floor: f64) {
    for &(phase, write_ratio) in write_ratios {
        if WRITE_GATED_PHASES.contains(&phase) {
            assert!(
                write_ratio >= floor,
                "{phase} write-throughput ratio {write_ratio:.2}x below the {floor:.2}x floor: \
                 the MVCC write path is falling behind the paced budget"
            );
        }
    }
}

fn main() {
    let wall = Instant::now();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = Duration::from_millis(if smoke { 400 } else { 3000 });
    let archive_rows = if smoke { 10_000 } else { 30_000 };
    // The smoke run shrinks the phases ~8x, so the checkpoint cadence
    // shrinks with them: the checkpointed phase must still see several
    // compactions or the thing it measures never happens.
    let checkpoint_every = if smoke { 300 } else { CHECKPOINT_EVERY };
    println!(
        "== simdb lock contention ({READERS} closed-loop readers, {WRITERS} paced writers \
         ({WRITE_RATE:.0}/s inserts, {ARCHIVE_WRITE_RATE:.0}/s archive updates),\n   \
         WAL-bounded checkpointer every {checkpoint_every} writes, {archive_rows}-row archive, \
         {duration:?} per phase{}) ==\n",
        if smoke { ", smoke" } else { "" }
    );

    let root = std::env::temp_dir().join(format!("amp_contention_{}", std::process::id()));

    // Warm-up pass so code paths, file pages, and allocator state don't
    // favor whichever mode runs second.
    let warm = build_db(&root.join("warm"), archive_rows / 10);
    run(
        &warm,
        None,
        Some(checkpoint_every),
        Workload::Mixed,
        archive_rows / 10,
        Duration::from_millis(100),
    );

    // The lock-free invariant is exact — assert it in every mode,
    // including smoke, before measuring throughput.
    assert_reads_lock_free(&warm);

    // The checkpointed phase runs against a 4x larger archive: it is
    // about what compacting an archive-dominated database costs readers,
    // so the snapshot needs to be genuinely expensive to encode.
    let phases: [(&str, Workload, bool, i64); 4] = [
        ("steady", Workload::Mixed, false, archive_rows),
        (
            "checkpointed",
            Workload::MixedArchiveTouch,
            true,
            archive_rows * 4,
        ),
        ("read_mostly", Workload::ReadMostly, false, archive_rows),
        (
            "archive_update",
            Workload::ArchiveUpdate,
            false,
            archive_rows,
        ),
    ];
    let mut ratios = Vec::new();
    let mut write_ratios: Vec<(&str, f64)> = Vec::new();
    let mut json_phases = String::new();
    for (phase, workload, checkpoints, archive_rows) in phases {
        let cadence = checkpoints.then_some(checkpoint_every);
        let db = build_db(&root.join(format!("{phase}_global")), archive_rows);
        let global = run(
            &db,
            Some(Arc::new(RwLock::new(()))),
            cadence,
            workload,
            archive_rows,
            duration,
        );
        report(&format!("{phase}/global_lock"), &global);

        let db = build_db(&root.join(format!("{phase}_mvcc")), archive_rows);
        let mvcc = run(&db, None, cadence, workload, archive_rows, duration);
        report(&format!("{phase}/mvcc"), &mvcc);

        let ratio = mvcc.reads_per_sec() / global.reads_per_sec();
        let write_ratio = mvcc.writes_per_sec() / global.writes_per_sec();
        println!("{phase:<24} read throughput {ratio:.2}x, write throughput {write_ratio:.2}x\n");
        ratios.push(ratio);
        write_ratios.push((phase, write_ratio));
        json_phases.push_str(&format!(
            "    \"{phase}\": {{\n      \"global_lock\": {{ \"reads_per_sec\": {:.0}, \
             \"writes_per_sec\": {:.0}, \"checkpoints\": {} }},\n      \"mvcc\": {{ \
             \"reads_per_sec\": {:.0}, \"writes_per_sec\": {:.0}, \"checkpoints\": {} }},\n      \
             \"read_throughput_ratio\": {ratio:.2},\n      \
             \"write_throughput_ratio\": {write_ratio:.2}\n    }},\n",
            global.reads_per_sec(),
            global.writes_per_sec(),
            global.checkpoints,
            mvcc.reads_per_sec(),
            mvcc.writes_per_sec(),
            mvcc.checkpoints,
        ));
    }
    let _ = std::fs::remove_dir_all(&root);

    let (steady_ratio, checkpointed_ratio) = (ratios[0], ratios[1]);
    println!(
        "steady read throughput, MVCC vs global lock:       {steady_ratio:.2}x  \
         [acceptance: > 1.0x]\n\
         checkpointed read throughput, MVCC vs global lock: {checkpointed_ratio:.2}x  \
         [acceptance: >= 2.5x]"
    );
    let write_floor = if smoke {
        SMOKE_WRITE_RATIO_FLOOR
    } else {
        WRITE_RATIO_FLOOR
    };
    for &(phase, write_ratio) in &write_ratios {
        if WRITE_GATED_PHASES.contains(&phase) {
            println!(
                "{phase} write throughput, MVCC vs global lock: {write_ratio:.2}x  \
                 [acceptance: >= {write_floor:.2}x]"
            );
        }
    }

    if smoke {
        // Sub-second phases on a loaded CI box are noisy; gate on the
        // full bars minus a noise margin so a real regression (reads
        // back under the global lock, compaction re-serialized, writers
        // starved behind the fsync leader) still fails the step.
        println!(
            "(smoke run: thresholds relaxed to >0.9x steady / >=1.5x checkpointed reads, \
             >={SMOKE_WRITE_RATIO_FLOOR}x writes; no JSON dump)"
        );
        assert!(
            steady_ratio > 0.9,
            "smoke: steady read ratio {steady_ratio:.2}x below the 0.9x noise floor"
        );
        assert!(
            checkpointed_ratio >= 1.5,
            "smoke: checkpointed read ratio {checkpointed_ratio:.2}x below the 1.5x noise floor"
        );
        assert_write_ratios(&write_ratios, SMOKE_WRITE_RATIO_FLOOR);
        let elapsed = wall.elapsed();
        assert!(
            elapsed < SMOKE_BUDGET,
            "smoke run took {elapsed:.2?}, over its {SMOKE_BUDGET:?} CI budget"
        );
        println!("smoke wall clock {elapsed:.2?} (budget {SMOKE_BUDGET:?})");
        return;
    }

    let json = format!(
        r#"{{
  "bench": "lock_contention",
  "recorded": "2026-08-09",
  "command": "cargo run --release -p amp-bench --bin report_contention",
  "machine": "1-core linux container (CI-class), ext4-backed temp dir for snapshot + WAL files",
  "notes": "Closed-loop readers over a paced background write stream on a durable db: {READERS} reader threads each scan a 25-row band of a {CATALOG_ROWS}-row catalog table as fast as results return, while {WRITERS} writer threads apply a fixed write budget ({WRITE_RATE:.0} inserts/s total; {ARCHIVE_WRITE_RATE:.0}/s for archive point updates) modeling daemon traffic — pacing the writers is what makes reads/s comparable on a 1-core host, since with closed-loop writers the read share just inversely measures write-path speed. global_lock emulates the seed's RwLock<Database> with an external whole-process RwLock: exclusive around every write and around the whole compaction, shared around reads. mvcc is the engine as shipped: reads pin published table versions with atomic loads (no lock), writers serialize per table, and compaction snapshots pinned versions and truncates the WAL per table, blocking neither readers nor writers. Phases: steady (background inserts, no checkpointer), checkpointed (plus a checkpointer compacting every {CHECKPOINT_EVERY} committed writes over a database dominated by a large archive table, with each write batch also point-updating one archive row so every snapshot genuinely re-encodes the big table rather than reusing the engine's clean-table encode cache — where the seed's exclusive compaction collapses reads), read_mostly (writer threads interleave 19 catalog reads per insert, the portal's 95/5 profile, closed-loop), archive_update (paced point updates against the 30k-row archive — copy-on-write's worst case; each update clones one row chunk, not the table). The run also asserts the invariant behind the ratios directly: a pure-read burst leaves the writer-path lock-wait histogram untouched. The write side is gated, not just reported: each durable paced phase must hold write_throughput_ratio >= 0.9. Three mechanisms carry that bar — per-transaction delta write-buffers (a commit materializes only the rows it touched into per-row Arc'd chunks, so an archive point update copies one row, not a 256-row chunk; simdb_rows_copied_per_write tracks this), cross-writer group commit (a leader thread drains every queued WAL record and issues one fdatasync on behalf of all concurrently committing writers — simdb_group_commit_writers records how many each flush covered), and rollback-by-drop (an aborted transaction discards its buffer; the published spine was never touched). Before these landed the MVCC mode moved ~0.5x of the global mode's durable write budget because every writer paid its own fsync while readers, never blocked, kept the CPU busy.",
  "results": {{
{json_phases}    "acceptance": "steady read_throughput_ratio > 1.0, checkpointed read_throughput_ratio >= 2.5, and write_throughput_ratio >= 0.9 in steady, checkpointed, and archive_update"
  }}
}}
"#
    );
    std::fs::write("BENCH_concurrency.json", json).expect("write BENCH_concurrency.json");
    println!("wrote BENCH_concurrency.json");

    assert!(
        steady_ratio > 1.0,
        "steady read-throughput ratio {steady_ratio:.2}x: lock-free reads must beat the emulated \
         global RwLock"
    );
    assert!(
        checkpointed_ratio >= 2.5,
        "checkpointed read-throughput ratio {checkpointed_ratio:.1}x below the 2.5x acceptance bar"
    );
    assert_write_ratios(&write_ratios, WRITE_RATIO_FLOOR);
}
