//! Closed-loop lock-contention report for the sharded storage engine.
//!
//! Mixed read/write workload against a durable database: reader threads
//! select from a pre-populated `catalog` table while writer threads
//! insert into disjoint `journal_*` tables, with a checkpointer that
//! compacts (snapshot + WAL truncate) whenever the WAL has accumulated a
//! fixed number of new records — the policy a deployment uses to bound
//! replay time, which under sustained write load means frequent
//! compactions of a database dominated by a large, mostly-static
//! `archive` table. Closed loop: every thread issues its next operation
//! only after the previous one completes, so ops/sec reflects end-to-end
//! service time.
//!
//! Two modes over the same engine:
//!
//! * `global_lock` — emulates the seed's `RwLock<Database>` with an
//!   external process-wide `RwLock<()>`: writers and the checkpointer
//!   hold it exclusively for their whole operation, readers share it.
//!   This reproduces the seed's worst property: compaction serializes
//!   the entire database under the exclusive lock, stalling every
//!   reader of every table for tens of milliseconds.
//! * `sharded` — no external lock; the engine's per-table locks are the
//!   only concurrency control. Compaction holds shared locks, so
//!   readers keep reading straight through it.
//!
//! Each mode is also measured in a steady-state phase (no checkpointer).
//! On a single-core host that phase is CPU-bound and work-conserving, so
//! its ratio is ~1x by construction — the sharded win there is about
//! blocked *waits*, and the write path commits via buffered group flush
//! with no blocking I/O. The checkpointed phase is where the global lock
//! genuinely collapses read throughput.
//!
//! Usage:
//!   cargo run --release -p amp-bench --bin report_contention [-- --smoke]
//!
//! `--smoke` shrinks the run so CI exercises the full binary path in a
//! few seconds (and skips the acceptance assertion + JSON dump). The
//! full run writes `BENCH_concurrency.json` to the current directory and
//! exits nonzero unless sharding yields >= 2x read throughput on the
//! checkpointed mixed workload.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use amp_simdb::prelude::*;

const READERS: usize = 4;
const WRITERS: usize = 2;
const CATALOG_ROWS: i64 = 500;
/// Checkpoint after this many committed writes — a WAL-replay bound.
const CHECKPOINT_EVERY: u64 = 1500;

/// Fresh durable database per phase: a populated read-side table, one
/// disjoint write-side table per writer thread, and a large static
/// archive that dominates snapshot cost (as star catalogs and archived
/// observations dominate a real AMP database).
fn build_db(dir: &Path, archive_rows: i64) -> Db {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("tmpdir");
    let db = Db::open(dir.join("bench.snap"), dir.join("bench.wal")).expect("open");
    db.define_role(Role::superuser("bench"));
    let conn = db.connect("bench").expect("connect");
    let int_table = |name: &str| TableSchema::new(name, vec![Column::new("v", ValueType::Int)]);
    conn.create_table(int_table("catalog")).expect("catalog");
    for w in 0..WRITERS {
        conn.create_table(int_table(&format!("journal_{w}")))
            .expect("journal");
    }
    conn.create_table(TableSchema::new(
        "archive",
        vec![
            Column::new("v", ValueType::Int),
            Column::new("payload", ValueType::Text),
        ],
    ))
    .expect("archive");
    for i in 0..CATALOG_ROWS {
        conn.insert("catalog", &[("v", Value::Int(i))])
            .expect("catalog row");
    }
    let payload = "x".repeat(48);
    for i in 0..archive_rows {
        conn.insert(
            "archive",
            &[
                ("v", Value::Int(i)),
                ("payload", Value::Text(payload.clone())),
            ],
        )
        .expect("archive row");
    }
    // Start each phase from a compacted state so the WAL-growth policy,
    // not setup traffic, decides when the first checkpoint fires.
    db.compact().expect("initial compact");
    db
}

struct Measurement {
    reads: u64,
    writes: u64,
    checkpoints: u64,
    elapsed: Duration,
}

impl Measurement {
    fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }

    fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drive the closed-loop workload for `duration`. When `global` is set,
/// every op first takes the emulated whole-database lock (readers
/// shared; writers and the checkpointer exclusive) — the seed engine's
/// concurrency control. When `checkpoints` is set, a dedicated thread
/// compacts each time `CHECKPOINT_EVERY` writes have committed.
fn run(
    db: &Db,
    global: Option<Arc<RwLock<()>>>,
    checkpoints: bool,
    duration: Duration,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let query = Query::new().filter("v", Op::Ge, Value::Int(CATALOG_ROWS / 2));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let query = query.clone();
        readers.push(std::thread::spawn(move || {
            let conn = db.connect("bench").expect("connect");
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _shared = global.as_ref().map(|l| l.read().expect("read lock"));
                let rows = conn.select("catalog", &query).expect("select");
                assert_eq!(rows.len() as i64, CATALOG_ROWS - CATALOG_ROWS / 2);
                done += 1;
            }
            done
        }));
    }

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let committed = Arc::clone(&committed);
        writers.push(std::thread::spawn(move || {
            let conn = db.connect("bench").expect("connect");
            let table = format!("journal_{w}");
            let mut done = 0u64;
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                {
                    let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                    conn.insert(&table, &[("v", Value::Int(i))])
                        .expect("insert");
                }
                committed.fetch_add(1, Ordering::Relaxed);
                i += 1;
                done += 1;
            }
            done
        }));
    }

    let checkpointer = checkpoints.then(|| {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let global = global.clone();
        let committed = Arc::clone(&committed);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = committed.load(Ordering::Relaxed);
                if now - last < CHECKPOINT_EVERY {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                last = now;
                let _excl = global.as_ref().map(|l| l.write().expect("write lock"));
                db.compact().expect("compact");
                done += 1;
            }
            done
        })
    });

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let reads = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    let writes = writers.into_iter().map(|h| h.join().expect("writer")).sum();
    let checkpoints = checkpointer.map_or(0, |h| h.join().expect("checkpointer"));
    Measurement {
        reads,
        writes,
        checkpoints,
        elapsed: start.elapsed(),
    }
}

fn report(name: &str, m: &Measurement) {
    println!(
        "{name:<24} {:>9.0} reads/s   {:>8.0} writes/s   {:>3} checkpoints   ({:.2?})",
        m.reads_per_sec(),
        m.writes_per_sec(),
        m.checkpoints,
        m.elapsed,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = Duration::from_millis(if smoke { 300 } else { 3000 });
    let archive_rows = if smoke { 2_000 } else { 30_000 };
    println!(
        "== simdb lock contention ({READERS} readers on catalog, {WRITERS} writers on disjoint \
         journals,\n   WAL-bounded checkpointer every {CHECKPOINT_EVERY} writes, \
         {archive_rows}-row archive, {duration:?} per phase{}) ==\n",
        if smoke { ", smoke" } else { "" }
    );

    let root = std::env::temp_dir().join(format!("amp_contention_{}", std::process::id()));

    // Warm-up pass so code paths, file pages, and allocator state don't
    // favor whichever mode runs second.
    let warm = build_db(&root.join("warm"), archive_rows / 10);
    run(&warm, None, true, Duration::from_millis(100));

    let phases: [(&str, bool); 2] = [("steady", false), ("checkpointed", true)];
    let mut ratios = Vec::new();
    let mut json_phases = String::new();
    for (phase, checkpoints) in phases {
        let db = build_db(&root.join(format!("{phase}_global")), archive_rows);
        let global = run(&db, Some(Arc::new(RwLock::new(()))), checkpoints, duration);
        report(&format!("{phase}/global_lock"), &global);

        let db = build_db(&root.join(format!("{phase}_sharded")), archive_rows);
        let sharded = run(&db, None, checkpoints, duration);
        report(&format!("{phase}/sharded"), &sharded);

        let ratio = sharded.reads_per_sec() / global.reads_per_sec();
        let write_ratio = sharded.writes_per_sec() / global.writes_per_sec();
        println!("{phase:<24} read throughput {ratio:.1}x, write throughput {write_ratio:.1}x\n");
        ratios.push(ratio);
        json_phases.push_str(&format!(
            "    \"{phase}\": {{\n      \"global_lock\": {{ \"reads_per_sec\": {:.0}, \
             \"writes_per_sec\": {:.0}, \"checkpoints\": {} }},\n      \"sharded\": {{ \
             \"reads_per_sec\": {:.0}, \"writes_per_sec\": {:.0}, \"checkpoints\": {} }},\n      \
             \"read_throughput_ratio\": {ratio:.2},\n      \
             \"write_throughput_ratio\": {write_ratio:.2}\n    }},\n",
            global.reads_per_sec(),
            global.writes_per_sec(),
            global.checkpoints,
            sharded.reads_per_sec(),
            sharded.writes_per_sec(),
            sharded.checkpoints,
        ));
    }
    let _ = std::fs::remove_dir_all(&root);

    let checkpointed_ratio = ratios[1];
    println!(
        "checkpointed-workload read throughput, sharded vs global lock: \
         {checkpointed_ratio:.1}x  [acceptance: >= 2x]"
    );

    if smoke {
        println!("(smoke run: skipping acceptance assertion and JSON dump)");
        return;
    }

    let json = format!(
        r#"{{
  "bench": "lock_contention",
  "command": "cargo run --release -p amp-bench --bin report_contention",
  "machine": "1-core linux container (CI-class), ext4-backed temp dir for snapshot + WAL files",
  "notes": "Closed-loop mixed workload on a durable db: {READERS} reader threads select half of a {CATALOG_ROWS}-row catalog table, {WRITERS} writer threads insert into disjoint journal tables, and a checkpointer compacts after every {CHECKPOINT_EVERY} committed writes (WAL-replay bound) over a database dominated by a {archive_rows}-row archive table. global_lock emulates the seed's RwLock<Database> with an external whole-process RwLock: exclusive around every insert and around the whole compaction, shared around reads. sharded uses only the engine's per-table locks: compaction runs under shared locks, so catalog readers read straight through it. The steady phase (no checkpointer) is CPU-bound on this 1-core host and work-conserving, hence ~1x by design; the checkpointed phase is where the seed's exclusive compaction collapses read throughput. Acceptance applies to the checkpointed mixed workload.",
  "results": {{
{json_phases}    "acceptance": "checkpointed read_throughput_ratio >= 2.0"
  }}
}}
"#
    );
    std::fs::write("BENCH_concurrency.json", json).expect("write BENCH_concurrency.json");
    println!("wrote BENCH_concurrency.json");

    assert!(
        checkpointed_ratio >= 2.0,
        "checkpointed read-throughput ratio {checkpointed_ratio:.1}x below the 2x acceptance bar"
    );
}
