//! Criterion micro-benchmarks of the serving layer: one catalog request
//! measured through the full TCP path, across {keep-alive, close} ×
//! {cached, cold} — the same matrix `report_http_load` drives at scale.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use amp_core::models::Star;
use amp_core::{roles, setup};
use amp_portal::server::read_framed_response;
use amp_portal::{Portal, PortalConfig, Request, Server, ServerConfig};
use amp_simdb::orm::Manager;
use amp_simdb::Db;
use criterion::{criterion_group, criterion_main, Criterion};

fn portal(cache_enabled: bool) -> Arc<Portal> {
    let db = Db::in_memory();
    setup::initialize(&db).expect("schema");
    let admin = db.connect(roles::ROLE_ADMIN).expect("admin");
    let stars = Manager::<Star>::new(admin);
    for i in 0..40 {
        let mut s = Star {
            id: None,
            identifier: format!("HD {i}"),
            name: None,
            hd_number: Some(i),
            kic_number: None,
            ra: i as f64,
            dec: 0.0,
            vmag: 6.0,
            in_kepler_field: false,
            source: "local".into(),
            has_results: false,
        };
        stars.create(&mut s).expect("star");
    }
    Arc::new(
        Portal::new(
            &db,
            PortalConfig {
                cache_enabled,
                ..PortalConfig::default()
            },
        )
        .expect("portal"),
    )
}

fn spawn(cache_enabled: bool, keep_alive: bool) -> Server {
    Server::spawn_with(
        portal(cache_enabled),
        0,
        ServerConfig {
            workers: 2,
            keep_alive,
            ..ServerConfig::default()
        },
    )
    .expect("spawn")
}

fn bench_serving(c: &mut Criterion) {
    let mut g = c.benchmark_group("http/serving");
    g.sample_size(20);

    for (label, cached) in [("cached", true), ("cold", false)] {
        // keep-alive: one persistent connection, request per iteration
        let server = spawn(cached, true);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut buf = Vec::new();
        let raw = "GET /stars HTTP/1.1\r\nHost: b\r\n\r\n";
        g.bench_function(format!("keepalive_{label}"), |b| {
            b.iter(|| {
                stream.write_all(raw.as_bytes()).expect("write");
                read_framed_response(&mut stream, &mut buf).expect("response")
            })
        });
        drop(stream);
        server.stop();

        // close: connection setup + single request per iteration
        let server = spawn(cached, false);
        let addr = server.addr();
        let raw_close = "GET /stars HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n";
        g.bench_function(format!("close_{label}"), |b| {
            b.iter(|| {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.write_all(raw_close.as_bytes()).expect("write");
                let mut buf = Vec::new();
                read_framed_response(&mut stream, &mut buf).expect("response")
            })
        });
        server.stop();
    }

    // transport-free reference point: the handler itself
    let p = portal(true);
    let req = Request::get("/stars");
    g.bench_function("handle_cached_no_tcp", |b| b.iter(|| p.handle(&req)));
    g.finish();
}

criterion_group!(serving, bench_serving);
criterion_main!(serving);
