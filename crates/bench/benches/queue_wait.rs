//! G1 bench: the section-6 queue-wait study machinery — an optimization
//! batch against a background-loaded scheduler, producing the Gantt data.

use amp_bench::queue;
use amp_core::OptimizationSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_queue_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("g1/queue_wait");
    g.sample_size(10);
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 20,
        cores_per_run: 128,
        seed: 5,
    };
    for profile in [amp_grid::systems::kraken(), amp_grid::systems::lonestar()] {
        let name = profile.name.clone();
        g.bench_function(&name, |b| {
            b.iter(|| {
                let study = queue::run_study(profile.clone(), 1, spec.clone(), false, 99, 1.0);
                assert!(study.stats.jobs > 0);
                study.stats.wait_to_run_ratio
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queue_study);
criterion_main!(benches);
