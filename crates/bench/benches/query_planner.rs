//! Storage-engine fast path: the cost-based query planner and the WAL
//! group commit against seed-replica baselines.
//!
//! The `*/reference` ids reimplement the pre-planner engine inline — a
//! full scan that clones every row before filtering, and a WAL writer
//! that deep-clones each op, serializes a `WalRecord` wrapper, and does
//! write+flush once per record. The `*/planner` and `*/group_commit` ids
//! run the shipped code, so one `cargo bench --bench query_planner` run
//! prints both sides of every headline ratio (see BENCH_simdb.json).

use amp_simdb::db::LogOp;
use amp_simdb::wal::Wal;
use amp_simdb::{Column, Database, Op, Query, Row, TableSchema, Value, ValueType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Write;

const N: i64 = 10_000;

fn fixture() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "obs",
        vec![
            Column::new("tag", ValueType::Text).not_null().unique(),
            Column::new("site", ValueType::Text).indexed().not_null(),
            Column::new("v", ValueType::Int).indexed().not_null(),
            Column::new("payload", ValueType::Text).not_null(),
        ],
    ))
    .unwrap();
    for i in 0..N {
        db.insert(
            "obs",
            &[
                ("tag", format!("t{i}").into()),
                ("site", format!("s{}", i % 16).into()),
                ("v", Value::Int((i * 7919) % N)),
                // a fat column makes row clones honestly expensive,
                // like the simulation rows the daemon pages through
                ("payload", format!("{i:->96}").into()),
            ],
        )
        .unwrap();
    }
    db
}

/// The seed execution strategy: clone every row out of the table, then
/// filter/sort/slice the owned vector.
fn reference_select(db: &Database, q: &Query) -> Vec<(i64, Row)> {
    let mut rows = db.select("obs", &Query::new()).unwrap();
    let keep = |row: &Row, q: &Query| -> bool {
        q.filters.iter().all(|f| {
            let ci = ["tag", "site", "v", "payload"]
                .iter()
                .position(|c| *c == f.column)
                .unwrap();
            let cell = &row[ci];
            match &f.op {
                Op::Eq => cell.key_eq(&f.value),
                Op::Ge => !cell.is_null() && cell.total_cmp(&f.value).is_ge(),
                Op::Lt => !cell.is_null() && cell.total_cmp(&f.value).is_lt(),
                Op::In(vals) => vals.iter().any(|v| v.key_eq(cell)),
                _ => unimplemented!(),
            }
        })
    };
    rows.retain(|(_, row)| keep(row, q));
    if !q.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for o in &q.order_by {
                let ci = ["tag", "site", "v", "payload"]
                    .iter()
                    .position(|c| *c == o.column)
                    .unwrap();
                let ord = a.1[ci].total_cmp(&b.1[ci]);
                let ord = if o.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            a.0.cmp(&b.0)
        });
    }
    let start = q.offset.min(rows.len());
    let end = q.limit.map_or(rows.len(), |l| (start + l).min(rows.len()));
    rows[start..end].to_vec()
}

fn bench_read_path(c: &mut Criterion) {
    let db = fixture();
    let mut g = c.benchmark_group("storage/read");
    g.sample_size(30);

    // ~1% selective range over the ordered index — the ISSUE headline
    let range =
        Query::new()
            .filter("v", Op::Ge, Value::Int(4_000))
            .filter("v", Op::Lt, Value::Int(4_100));
    g.bench_function("range_1pct_10k/planner", |b| {
        b.iter(|| black_box(db.select("obs", black_box(&range)).unwrap()))
    });
    g.bench_function("range_1pct_10k/reference", |b| {
        b.iter(|| black_box(reference_select(&db, black_box(&range))))
    });

    let probe = Query::new().eq("tag", "t9000");
    g.bench_function("unique_probe/planner", |b| {
        b.iter(|| black_box(db.select("obs", black_box(&probe)).unwrap()))
    });
    g.bench_function("unique_probe/reference", |b| {
        b.iter(|| black_box(reference_select(&db, black_box(&probe))))
    });

    let worklist =
        Query::new().filter("site", Op::In(vec!["s3".into(), "s11".into()]), Value::Null);
    g.bench_function("in_worklist/planner", |b| {
        b.iter(|| black_box(db.select("obs", black_box(&worklist)).unwrap()))
    });
    g.bench_function("in_worklist/reference", |b| {
        b.iter(|| black_box(reference_select(&db, black_box(&worklist))))
    });

    let topk = Query::new().order_by_desc("v").limit(10);
    g.bench_function("topk_10_of_10k/planner", |b| {
        b.iter(|| black_box(db.select("obs", black_box(&topk)).unwrap()))
    });
    g.bench_function("topk_10_of_10k/reference", |b| {
        b.iter(|| black_box(reference_select(&db, black_box(&topk))))
    });

    let half = Query::new().filter("v", Op::Ge, Value::Int(N / 2));
    g.bench_function("count_half_10k/planner", |b| {
        b.iter(|| black_box(db.count("obs", black_box(&half)).unwrap()))
    });
    g.bench_function("count_half_10k/reference", |b| {
        b.iter(|| black_box(reference_select(&db, black_box(&half)).len()))
    });
    g.finish();
}

/// The seed append strategy: per record, deep-clone the op into a
/// `WalRecord` wrapper, serialize it, then two write calls and a flush.
struct NaiveWal {
    writer: std::io::BufWriter<std::fs::File>,
    next_seq: u64,
}

#[derive(serde::Serialize)]
struct NaiveRecord {
    seq: u64,
    op: LogOp,
}

impl NaiveWal {
    fn append(&mut self, ops: &[LogOp]) -> u64 {
        let mut last = self.next_seq;
        for op in ops {
            let rec = NaiveRecord {
                seq: self.next_seq,
                op: op.clone(),
            };
            let line = serde_json::to_string(&rec).unwrap();
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            last = self.next_seq;
            self.next_seq += 1;
        }
        self.writer.flush().unwrap();
        last
    }
}

// An 8-op batch shaped like one transaction's worth of engine traffic:
// inserts carrying the same fat payload the read-path fixture uses.
fn sample_ops(n: usize) -> Vec<LogOp> {
    (0..n)
        .map(|i| LogOp::Insert {
            table: "obs".into(),
            id: i as i64 + 1,
            row: vec![
                format!("t{i}").into(),
                "s0".into(),
                Value::Int(i as i64),
                format!("{i:->96}").into(),
            ],
        })
        .collect()
}

fn bench_wal(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("amp_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ops = sample_ops(8);

    // Committing an 8-op batch. `group_commit` is the merged commit the
    // leader performs for everyone queued behind it: one encode pass, one
    // write, one flush. `reference` is how the seed engine durably
    // committed the same 8 ops — every mutation appended (and flushed)
    // individually, since nothing merged commits across callers.
    let mut g = c.benchmark_group("storage/wal_append_8ops");
    g.sample_size(200);
    let wal = Wal::open(dir.join("group.wal")).unwrap();
    g.bench_function("group_commit", |b| {
        b.iter(|| black_box(wal.append(black_box(&ops)).unwrap()))
    });
    let mut naive = NaiveWal {
        writer: std::io::BufWriter::new(std::fs::File::create(dir.join("naive.wal")).unwrap()),
        next_seq: 0,
    };
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut last = 0;
            for op in black_box(&ops) {
                last = naive.append(std::slice::from_ref(op));
            }
            black_box(last)
        })
    });
    g.finish();

    // concurrent committers: 16 threads x 25 batches per iteration (thread
    // spawn cost amortized over 200 appends). The group-commit leader
    // drains everyone's pre-encoded lines in one write+flush while the
    // reference serializes, clones, and flushes inside its one big lock.
    let mut g = c.benchmark_group("storage/wal_concurrent_16x25");
    g.sample_size(20);
    const BATCHES_PER_THREAD: usize = 25;
    let wal = std::sync::Arc::new(Wal::open(dir.join("group_mt.wal")).unwrap());
    g.bench_function("group_commit", |b| {
        b.iter(|| {
            let mut handles = Vec::new();
            for _ in 0..16 {
                let wal = wal.clone();
                let ops = ops.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..BATCHES_PER_THREAD {
                        black_box(wal.append(&ops).unwrap());
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    let naive = std::sync::Arc::new(std::sync::Mutex::new(NaiveWal {
        writer: std::io::BufWriter::new(std::fs::File::create(dir.join("naive_mt.wal")).unwrap()),
        next_seq: 0,
    }));
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut handles = Vec::new();
            for _ in 0..16 {
                let naive = naive.clone();
                let ops = ops.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..BATCHES_PER_THREAD {
                        black_box(naive.lock().unwrap().append(&ops));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_read_path, bench_wal);
criterion_main!(benches);
