//! report_parallel: tick throughput of the parallel daemon engine on a
//! 64-simulation, four-site deployment (frost, kraken, lonestar, ranger).
//!
//! Two measurements, both over the identical scenario (the equivalence
//! suite proves the engines produce identical results):
//!
//! 1. **Critical-path throughput.** The sequential engine is profiled
//!    per item ([`TickProfile`]): the measured service time of every
//!    phase-1 poll and phase-2 step. Each tick's cost under `workers = N`
//!    is then its serial remainder plus the longest shard per phase under
//!    the engine's real sharding rule (`simulation_id % N`) — the tick
//!    wall time a host with >= N free cores sees. This is the headline
//!    speedup: CI boxes with one core cannot exhibit thread-level
//!    parallelism, so the bench reports the measured work distribution
//!    instead of the scheduler's inability to overlap it.
//!
//! 2. **Raw wall clock** of both engines on this host, for honesty about
//!    what the current machine actually does (on a single-core host the
//!    pool only adds overhead).

use amp_core::models::{Allocation, Simulation};
use amp_core::{OptimizationSpec, SimStatus};
use amp_gridamp::{deploy_multi, seed_fixtures, DaemonConfig, Deployment, TickProfile};
use amp_simdb::orm::Manager;
use amp_stellar::StellarParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const SIMS: usize = 64;
const SYSTEMS: [&str; 4] = ["frost", "kraken", "lonestar", "ranger"];

fn build(workers: usize) -> Deployment {
    let dep = deploy_multi(
        vec![
            amp_grid::systems::frost(),
            amp_grid::systems::kraken(),
            amp_grid::systems::lonestar(),
            amp_grid::systems::ranger(),
        ],
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();

    let truth = StellarParams {
        mass: 1.0,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    };
    let (user, star, frost_alloc, obs) = seed_fixtures(&dep.db, "frost", &truth, 9).unwrap();

    let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
    let allocs = Manager::<Allocation>::new(admin.clone());
    let mut alloc_ids = vec![frost_alloc];
    for system in &SYSTEMS[1..] {
        let mut alloc = Allocation::new(system, &format!("TG-AST09003-{system}"), 10_000_000.0);
        allocs.create(&mut alloc).unwrap();
        alloc_ids.push(alloc.id.unwrap());
    }

    let sims = Manager::<Simulation>::new(admin);
    for i in 0..SIMS {
        let which = i % SYSTEMS.len();
        let spec = OptimizationSpec {
            ga_runs: 2,
            population: 16,
            generations: 12,
            cores_per_run: 64,
            seed: 100 + i as u64,
        };
        let mut sim = Simulation::new_optimization(
            star,
            user,
            spec,
            obs,
            SYSTEMS[which],
            alloc_ids[which],
            0,
        );
        sims.create(&mut sim).unwrap();
    }
    dep
}

/// Drive to quiescence; returns (ticks, wall time inside tick(), the
/// per-tick profiles when `profile` is set).
fn drive(workers: usize, profile: bool) -> (usize, Duration, Vec<TickProfile>) {
    let mut dep = build(workers);
    if profile {
        dep.daemon.profile = Some(TickProfile::default());
    }
    let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
    let sims = Manager::<Simulation>::new(admin);
    let mut ticks = 0;
    let mut in_tick = Duration::ZERO;
    let mut profiles = Vec::new();
    loop {
        let t = Instant::now();
        dep.daemon.tick(&dep.grid);
        in_tick += t.elapsed();
        ticks += 1;
        if let Some(p) = &dep.daemon.profile {
            profiles.push(p.clone());
        }
        let settled = sims
            .all()
            .unwrap()
            .iter()
            .all(|s| matches!(s.status, SimStatus::Done | SimStatus::Hold));
        if settled || ticks >= 3_000 {
            break;
        }
        dep.grid.advance(amp_grid::SimDuration::from_secs(300));
    }
    (ticks, in_tick, profiles)
}

/// The tick's cost with its item work sharded over `workers` cores:
/// serial remainder + critical path of each barrier-separated phase.
fn modeled_tick(p: &TickProfile, workers: usize) -> Duration {
    let phase = |items: &[(i64, Duration)]| -> Duration {
        let mut shard = vec![Duration::ZERO; workers];
        for (sim_id, cost) in items {
            shard[sim_id.rem_euclid(workers as i64) as usize] += *cost;
        }
        shard.into_iter().max().unwrap_or(Duration::ZERO)
    };
    let work: Duration = p
        .poll_items
        .iter()
        .chain(&p.step_items)
        .map(|(_, d)| *d)
        .sum();
    let serial = p.total.saturating_sub(work);
    serial + phase(&p.poll_items) + phase(&p.step_items)
}

fn bench_report_parallel(c: &mut Criterion) {
    println!("report_parallel: {SIMS} sims / {} sites", SYSTEMS.len());

    // critical-path model from the profiled sequential run
    let (ticks, wall_seq, profiles) = drive(1, true);
    let total_seq: Duration = profiles.iter().map(|p| p.total).sum();
    let item_work: Duration = profiles
        .iter()
        .flat_map(|p| p.poll_items.iter().chain(&p.step_items))
        .map(|(_, d)| *d)
        .sum();
    let items: usize = profiles
        .iter()
        .map(|p| p.poll_items.len() + p.step_items.len())
        .sum();
    println!(
        "  {ticks} ticks to quiescence, {total_seq:?} of tick work \
         ({item_work:?} shardable across {items} items, {:?} serial)",
        total_seq.saturating_sub(item_work)
    );
    let mut speedup_at_8 = 0.0;
    for workers in [1usize, 2, 4, 8, 16] {
        let modeled: Duration = profiles.iter().map(|p| modeled_tick(p, workers)).sum();
        let tput = ticks as f64 / modeled.as_secs_f64();
        let speedup = total_seq.as_secs_f64() / modeled.as_secs_f64();
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "  workers={workers:<2} {tput:>9.1} ticks/s  speedup {speedup:>5.2}x  (critical path)"
        );
    }
    assert!(
        speedup_at_8 >= 2.0,
        "parallel tick critical path under 2x at 8 workers: {speedup_at_8:.2}x"
    );

    // raw wall clock on this host, both engines, for the record
    let (_, wall_par, _) = drive(8, false);
    println!(
        "  this host ({} cores): workers=1 {wall_seq:?}, workers=8 {wall_par:?} in tick",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut g = c.benchmark_group("report_parallel");
    g.sample_size(10);
    g.bench_function("drive_64sims_workers1", |b| b.iter(|| drive(1, false).0));
    g.bench_function("drive_64sims_workers8", |b| b.iter(|| drive(8, false).0));
    g.finish();
}

criterion_group!(benches, bench_report_parallel);
criterion_main!(benches);
