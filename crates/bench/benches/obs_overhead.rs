//! Overhead of the observability substrate: the claim is that a counter
//! hit on a cached handle is a handful of nanoseconds (one relaxed
//! `fetch_add`), a histogram observation stays in the tens of
//! nanoseconds (bucket search + two atomics), and a registry nobody
//! records into costs nothing at scrape time.
//!
//! Each `iter` executes `N = 1000` operations so the timer measures a
//! loop, not clock granularity; divide the reported time by 1000 for the
//! per-op cost recorded in `BENCH_obs.json`.

use std::hint::black_box;

use amp_obs::{Registry, Unit};
use criterion::{criterion_group, criterion_main, Criterion};

const N: u64 = 1000;

fn bench_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/hot_path");
    g.sample_size(50);

    // The floor: the same loop with plain arithmetic instead of a metric.
    g.bench_function("baseline_loop_1k", |b| {
        b.iter(|| {
            let mut x = 0u64;
            for i in 0..N {
                x = x.wrapping_add(black_box(i));
            }
            x
        })
    });

    // Counter hit on a cached handle — the instrumented-code hot path.
    let counter = amp_obs::counter("bench_obs_counter_total");
    g.bench_function("counter_inc_1k", |b| {
        b.iter(|| {
            for _ in 0..N {
                black_box(&counter).inc();
            }
            counter.get()
        })
    });

    let gauge = amp_obs::gauge("bench_obs_gauge");
    g.bench_function("gauge_set_1k", |b| {
        b.iter(|| {
            for i in 0..N {
                black_box(&gauge).set(i as i64);
            }
            gauge.get()
        })
    });

    // Histogram observation: bucket partition_point + two fetch_adds.
    let histo = amp_obs::histogram("bench_obs_latency_seconds");
    g.bench_function("histogram_observe_1k", |b| {
        b.iter(|| {
            for i in 0..N {
                black_box(&histo).observe(i * 997);
            }
            histo.count()
        })
    });

    // The anti-pattern being avoided: registry lookup (lock + map) per hit.
    g.bench_function("registry_lookup_plus_inc_1k", |b| {
        b.iter(|| {
            for _ in 0..N {
                amp_obs::counter("bench_obs_lookup_total").inc();
            }
        })
    });
    g.finish();
}

fn bench_scrape(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/scrape");
    g.sample_size(20);

    // An untouched registry renders in constant (empty-string) time.
    let empty = Registry::new();
    g.bench_function("render_empty_registry", |b| {
        b.iter(|| black_box(&empty).render_prometheus())
    });

    // A realistically populated private registry: 100 counters + 10
    // histograms, the order of what the full AMP stack registers.
    let populated = Registry::new();
    for i in 0..100 {
        populated
            .counter(&format!("scrape_counter_{i}_total"))
            .add(i);
    }
    for i in 0..10 {
        let h = populated.histogram(&format!("scrape_histo_{i}_seconds"), Unit::Seconds);
        for j in 0..100u64 {
            h.observe(j * 10_000);
        }
    }
    g.bench_function("render_100c_10h", |b| {
        b.iter(|| black_box(&populated).render_prometheus())
    });
    g.finish();
}

criterion_group!(benches, bench_hot_path, bench_scrape);
criterion_main!(benches);
