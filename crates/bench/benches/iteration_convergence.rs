//! C1 bench: the iteration-time convergence computation (GA run with
//! per-generation cost accounting) whose output backs the paper's
//! 160x-180x claim. Asserts the ratio stays in the reproduction band on
//! every iteration.

use amp_bench::{convergence, target_star};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("c1/iteration_convergence");
    g.sample_size(10);
    // reduced generations for bench cadence; the report runs the full 200
    g.bench_function("ga_cost_series_126x60", |b| {
        b.iter(|| {
            let s = convergence::series(&target_star(), 23.6, 126, 60, 5);
            assert_eq!(s.len(), 61);
            s
        })
    });
    g.bench_function("full_series_ratio_126x200", |b| {
        b.iter(|| {
            let s = convergence::series(&target_star(), 23.6, 126, 200, 5);
            let r = convergence::ratio(&s);
            assert!((140.0..195.0).contains(&r), "ratio {r}");
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
