//! Micro-benchmarks of the substrates: forward-model evaluation, GA
//! generation step, database operations, scheduler throughput, template
//! rendering and portal request handling.

use amp_ga::{Ga, GaConfig, Sphere};
use amp_simdb::{Column, Db, PermSet, Query, Role, TableSchema, Value, ValueType};
use amp_stellar::{evolve, fitness, synthesize, Domain, StellarParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_stellar(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/stellar");
    let domain = Domain::default();
    let p = StellarParams::sun();
    g.bench_function("evolve", |b| {
        b.iter(|| evolve(black_box(&p), &domain).unwrap())
    });
    let obs = synthesize("B", &p, &domain, 0.1, 1).unwrap();
    g.bench_function("fitness", |b| {
        b.iter(|| fitness(black_box(&obs), &p, &domain))
    });
    g.finish();
}

fn bench_ga(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/ga");
    let problem = Sphere {
        target: vec![0.3, 0.7, 0.5, 0.2, 0.9],
    };
    g.bench_function("generation_step_pop126", |b| {
        let mut ga = Ga::new(
            &problem,
            GaConfig {
                population: 126,
                generations: u32::MAX,
                ..GaConfig::default()
            },
            1,
        );
        b.iter(|| ga.step())
    });
    g.finish();
}

fn bench_simdb(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/simdb");
    let setup = || {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(Role::new("web").grant("t", PermSet::ALL));
        let admin = db.connect("admin").unwrap();
        admin
            .create_table(TableSchema::new(
                "t",
                vec![
                    Column::new("name", ValueType::Text).not_null().indexed(),
                    Column::new("v", ValueType::Float),
                ],
            ))
            .unwrap();
        db
    };
    g.bench_function("insert", |b| {
        let db = setup();
        let conn = db.connect("web").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            conn.insert(
                "t",
                &[("name", format!("row{i}").into()), ("v", Value::Float(1.0))],
            )
            .unwrap()
        })
    });
    g.bench_function("indexed_query_10k_rows", |b| {
        let db = setup();
        let conn = db.connect("web").unwrap();
        for i in 0..10_000 {
            conn.insert(
                "t",
                &[
                    ("name", format!("row{}", i % 100).into()),
                    ("v", Value::Float(i as f64)),
                ],
            )
            .unwrap();
        }
        b.iter(|| {
            conn.select("t", &Query::new().eq("name", "row42"))
                .unwrap()
                .len()
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    use amp_grid::app::SleepApp;
    use amp_grid::prelude::*;
    use std::sync::Arc;
    let mut g = c.benchmark_group("micro/grid");
    g.bench_function("submit_and_run_100_jobs", |b| {
        b.iter(|| {
            let mut grid = Grid::new();
            grid.add_site(amp_grid::systems::kraken());
            grid.install_app("kraken", "sleep", Arc::new(SleepApp));
            let cred = CommunityCredential::new("/CN=amp");
            grid.authorize("kraken", &cred);
            let proxy = cred.issue_proxy("u", grid.now(), SimDuration::from_hours(1000.0));
            for i in 0..100 {
                grid.gram_submit(
                    "kraken",
                    &proxy,
                    GramJobSpec {
                        service: GramService::Batch,
                        executable: "sleep".into(),
                        args: vec!["10".into()],
                        workdir: format!("w{i}"),
                        cores: 512,
                        walltime: SimDuration::from_minutes(30.0),
                        depends_on: vec![],
                        name: format!("j{i}"),
                    },
                )
                .unwrap();
            }
            grid.advance(SimDuration::from_hours(24.0));
            grid.now()
        })
    });
    g.finish();
}

fn bench_portal(c: &mut Criterion) {
    use amp_portal::{Portal, PortalConfig, Request};
    let mut g = c.benchmark_group("micro/portal");
    let db = Db::in_memory();
    amp_core::setup::initialize(&db).unwrap();
    let portal = Portal::new(&db, PortalConfig::default()).unwrap();
    g.bench_function("request_home", |b| {
        let req = Request::get("/");
        b.iter(|| portal.handle(&req).status)
    });
    g.bench_function("request_suggest", |b| {
        let req = Request::get("/api/suggest?q=HD");
        b.iter(|| portal.handle(&req).status)
    });
    g.bench_function("template_render", |b| {
        let t = amp_portal::Template::parse(
            "{% for s in stars %}<li>{{ s.name }}{% if s.ok %}!{% endif %}</li>{% endfor %}",
        )
        .unwrap();
        let ctx = serde_json::json!({"stars": (0..50).map(|i| serde_json::json!({"name": format!("HD {i}"), "ok": i % 2 == 0})).collect::<Vec<_>>()});
        b.iter(|| t.render(&ctx).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_stellar,
    bench_ga,
    bench_simdb,
    bench_scheduler,
    bench_portal
);
criterion_main!(benches);
