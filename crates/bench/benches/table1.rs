//! Table 1 bench: times the simulation machinery that regenerates the
//! table — a full direct-run benchmark measurement per system, and a
//! reduced-ensemble optimization on the production target. The table
//! itself (paper-scale ensemble) is produced by `report_table1`.

use amp_bench::table1;
use amp_core::OptimizationSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stellar_benchmark(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/stellar_benchmark");
    g.sample_size(10);
    for profile in amp_grid::systems::table1_systems() {
        let name = profile.name.clone();
        g.bench_function(&name, |b| {
            b.iter(|| {
                let minutes = table1::measure_stellar_benchmark(profile.clone());
                assert!(
                    (minutes - profile.model_benchmark_minutes).abs() < 0.5,
                    "{name}: {minutes}"
                );
                minutes
            })
        });
    }
    g.finish();
}

fn bench_optimization_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/optimization_run");
    g.sample_size(10);
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 30,
        generations: 30,
        cores_per_run: 128,
        seed: 3,
    };
    g.bench_function("kraken_reduced_ensemble", |b| {
        b.iter(|| {
            let m = table1::measure_optimization(amp_grid::systems::kraken(), spec.clone(), 7);
            assert!(m.cpuh > 0.0);
            m
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stellar_benchmark, bench_optimization_run);
criterion_main!(benches);
