//! G2 bench: sequential continuations vs job chaining (§6) on the
//! production target — the ablation `report_chaining` prints in full.

use amp_bench::queue;
use amp_core::OptimizationSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_chaining(c: &mut Criterion) {
    let mut g = c.benchmark_group("g2/chaining_ablation");
    g.sample_size(10);
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 40,
        cores_per_run: 128,
        seed: 8,
    };
    for (label, chaining) in [("sequential", false), ("chained", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let study = queue::run_study(
                    amp_grid::systems::kraken(),
                    1,
                    spec.clone(),
                    chaining,
                    4242,
                    1.05,
                );
                study.makespan_hours
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chaining);
criterion_main!(benches);
