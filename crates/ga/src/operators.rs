//! Genetic operators: rank selection, one-point crossover, jump/creep
//! mutation with PIKAIA's adaptive mutation-rate control.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

use crate::encoding::Genome;

/// Rank-based roulette selection: individual with fitness rank r (1 = worst)
/// is chosen with probability ∝ r. `ranked` maps population index -> rank.
/// Returns an index into the population.
pub fn select_ranked(rng: &mut ChaCha8Rng, ranks: &[usize]) -> usize {
    let n = ranks.len();
    debug_assert!(n > 0);
    let total: u64 = (n as u64) * (n as u64 + 1) / 2;
    let mut pick = rng.random_range(0..total);
    for (i, &r) in ranks.iter().enumerate() {
        let w = r as u64;
        if pick < w {
            return i;
        }
        pick -= w;
    }
    n - 1
}

/// Compute selection ranks from fitnesses: the best individual gets rank n,
/// the worst rank 1. Ties broken by index for determinism.
pub fn fitness_ranks(fitness: &[f64]) -> Vec<usize> {
    let n = fitness.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]).then(a.cmp(&b)));
    let mut ranks = vec![0usize; n];
    for (rank_minus_1, &idx) in order.iter().enumerate() {
        ranks[idx] = rank_minus_1 + 1;
    }
    ranks
}

/// One-point crossover on the digit strings, applied with probability
/// `pcross`; otherwise parents are copied through.
pub fn crossover(rng: &mut ChaCha8Rng, a: &Genome, b: &Genome, pcross: f64) -> (Genome, Genome) {
    debug_assert_eq!(a.digits.len(), b.digits.len());
    if rng.random_range(0.0..1.0) >= pcross || a.digits.len() < 2 {
        return (a.clone(), b.clone());
    }
    let cut = rng.random_range(1..a.digits.len());
    let mut c = a.clone();
    let mut d = b.clone();
    c.digits[cut..].copy_from_slice(&b.digits[cut..]);
    d.digits[cut..].copy_from_slice(&a.digits[cut..]);
    (c, d)
}

/// Mutation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MutationMode {
    /// Replace a digit with a uniform random digit.
    Jump,
    /// ±1 on a digit with decimal carry into more significant digits
    /// (PIKAIA's creep mode — small phenotype steps).
    Creep,
}

/// Mutate each digit independently with probability `pmut`.
pub fn mutate(rng: &mut ChaCha8Rng, g: &mut Genome, pmut: f64, mode: MutationMode) {
    let nd = g.nd;
    for i in 0..g.digits.len() {
        if rng.random_range(0.0..1.0) >= pmut {
            continue;
        }
        match mode {
            MutationMode::Jump => {
                g.digits[i] = rng.random_range(0..10) as u8;
            }
            MutationMode::Creep => {
                let up = rng.random_range(0..2) == 1;
                creep_digit(g, i, up, nd);
            }
        }
    }
}

/// Apply ±1 at digit position `i` with carry/borrow propagation confined to
/// the digit's own gene, saturating at the gene boundary.
fn creep_digit(g: &mut Genome, i: usize, up: bool, nd: usize) {
    let gene_start = (i / nd) * nd;
    let mut pos = i;
    loop {
        if up {
            if g.digits[pos] < 9 {
                g.digits[pos] += 1;
                return;
            }
            g.digits[pos] = 0;
        } else {
            if g.digits[pos] > 0 {
                g.digits[pos] -= 1;
                return;
            }
            g.digits[pos] = 9;
        }
        if pos == gene_start {
            // carry ran off the top of the gene: saturate instead of wrap
            for d in &mut g.digits[gene_start..gene_start + nd] {
                *d = if up { 9 } else { 0 };
            }
            return;
        }
        pos -= 1;
    }
}

/// PIKAIA's adaptive mutation control: when the population has converged
/// (best and median fitness close), raise pmut to reinject diversity; when
/// spread is large, lower it. Bounds [pmut_min, pmut_max].
pub fn adapt_pmut(
    pmut: f64,
    best_fitness: f64,
    median_fitness: f64,
    pmut_min: f64,
    pmut_max: f64,
) -> f64 {
    // Relative fitness difference, guarded for degenerate populations.
    let denom = (best_fitness + median_fitness).abs().max(1e-12);
    let rdif = ((best_fitness - median_fitness) / denom).abs();
    const RDIF_LO: f64 = 0.05; // converged below this -> more mutation
    const RDIF_HI: f64 = 0.25; // diverse above this -> less mutation
    const FACTOR: f64 = 1.5;
    let adjusted = if rdif < RDIF_LO {
        pmut * FACTOR
    } else if rdif > RDIF_HI {
        pmut / FACTOR
    } else {
        pmut
    };
    adjusted.clamp(pmut_min, pmut_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn ranks_order_by_fitness() {
        let ranks = fitness_ranks(&[0.3, 0.9, 0.1]);
        assert_eq!(ranks, vec![2, 3, 1]);
    }

    #[test]
    fn rank_ties_deterministic() {
        let a = fitness_ranks(&[0.5, 0.5, 0.5]);
        let b = fitness_ranks(&[0.5, 0.5, 0.5]);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn selection_prefers_fitter() {
        let mut rng = rng();
        let ranks = fitness_ranks(&[0.1, 0.9]);
        let mut counts = [0usize; 2];
        for _ in 0..3000 {
            counts[select_ranked(&mut rng, &ranks)] += 1;
        }
        // rank weights 1:2 -> fitter selected ~2/3 of the time
        assert!(counts[1] > counts[0]);
        let frac = counts[1] as f64 / 3000.0;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn crossover_preserves_digits_multiset_per_position() {
        let mut rng = rng();
        let a = Genome::encode(&[0.111111, 0.222222], 6);
        let b = Genome::encode(&[0.888888, 0.999999], 6);
        let (c, d) = crossover(&mut rng, &a, &b, 1.0);
        for i in 0..a.digits.len() {
            let orig = [a.digits[i], b.digits[i]];
            let new = [c.digits[i], d.digits[i]];
            let mut o = orig;
            let mut n = new;
            o.sort_unstable();
            n.sort_unstable();
            assert_eq!(o, n, "position {i}");
        }
        // with pcross=1 and len>=2 a swap must have occurred
        assert_ne!(c, a);
    }

    #[test]
    fn crossover_skipped_at_zero_rate() {
        let mut rng = rng();
        let a = Genome::encode(&[0.1], 6);
        let b = Genome::encode(&[0.9], 6);
        let (c, d) = crossover(&mut rng, &a, &b, 0.0);
        assert_eq!(c, a);
        assert_eq!(d, b);
    }

    #[test]
    fn jump_mutation_changes_digits_at_high_rate() {
        let mut rng = rng();
        let mut g = Genome::encode(&[0.5; 4], 6);
        let orig = g.clone();
        mutate(&mut rng, &mut g, 1.0, MutationMode::Jump);
        assert!(g.validate());
        assert_ne!(g, orig);
    }

    #[test]
    fn creep_is_small_in_phenotype() {
        let mut rng = rng();
        for _ in 0..100 {
            let mut g = Genome::encode(&[0.531234], 6);
            let before = g.decode()[0];
            mutate(&mut rng, &mut g, 0.2, MutationMode::Creep);
            assert!(g.validate());
            let after = g.decode()[0];
            // worst case: most-significant digit creeps -> 0.1 step; typical
            // steps are far smaller
            assert!((after - before).abs() <= 0.2, "{before} -> {after}");
        }
    }

    #[test]
    fn creep_carry_propagates() {
        // 0.199999 +1 on least significant digit -> 0.200000
        let mut g = Genome::encode(&[0.199999], 6);
        creep_digit(&mut g, 5, true, 6);
        assert!((g.decode()[0] - 0.2).abs() < 1e-9);
        // saturation at gene top: 0.999999 +1 -> stays 0.999999
        let mut g = Genome::encode(&[0.999999], 6);
        creep_digit(&mut g, 5, true, 6);
        assert!((g.decode()[0] - 0.999999).abs() < 1e-9);
        // borrow at zero saturates to zero
        let mut g = Genome::encode(&[0.0], 6);
        creep_digit(&mut g, 5, false, 6);
        assert_eq!(g.decode()[0], 0.0);
    }

    #[test]
    fn creep_stays_within_gene() {
        // carry in gene 1 must not spill into gene 0
        let mut g = Genome::encode(&[0.555555, 0.999999], 6);
        creep_digit(&mut g, 11, true, 6);
        assert!((g.decode()[0] - 0.555555).abs() < 1e-9);
    }

    #[test]
    fn pmut_adapts_both_ways_and_clamps() {
        let up = adapt_pmut(0.01, 1.0, 0.99, 0.0005, 0.25);
        assert!(up > 0.01);
        let down = adapt_pmut(0.01, 1.0, 0.3, 0.0005, 0.25);
        assert!(down < 0.01);
        let hold = adapt_pmut(0.01, 1.0, 0.8, 0.0005, 0.25);
        assert_eq!(hold, 0.01);
        assert_eq!(adapt_pmut(1.0, 1.0, 1.0, 0.0005, 0.25), 0.25);
        assert_eq!(adapt_pmut(1e-9, 1.0, 0.2, 0.0005, 0.25), 0.0005);
    }
}
