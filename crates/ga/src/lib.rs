//! # amp-ga — MPIKAIA-style parallel genetic algorithm
//!
//! The optimization engine of the AMP reproduction (Woitaszek et al.,
//! GCE 2009). MPIKAIA is the parallel variant of PIKAIA, a decimal-encoded
//! generational GA; AMP runs four independent instances of it per
//! optimization, each evolving 126 candidate stars for 200 iterations over
//! a chain of walltime-limited supercomputer jobs.
//!
//! This crate provides:
//!
//! * [`encoding`] — decimal genotype encoding (digit strings);
//! * [`operators`] — rank selection, one-point crossover, jump/creep
//!   mutation, adaptive mutation rate;
//! * [`ga`] — the generational engine with rayon-parallel evaluation
//!   (data-parallel across the population, standing in for MPIKAIA's MPI
//!   ranks) and per-generation deterministic random streams;
//! * [`checkpoint`] — the "restart progress file" enabling multi-job
//!   continuation with bit-identical results;
//! * [`problem`] — the fitness interface plus test landscapes.
//!
//! ```
//! use amp_ga::{Ga, GaConfig, Sphere};
//!
//! let problem = Sphere { target: vec![0.3, 0.7] };
//! let mut ga = Ga::new(&problem, GaConfig { population: 30, generations: 40, ..GaConfig::default() }, 42);
//! ga.run(u32::MAX);
//! assert!(ga.best().fitness > 0.9);
//! ```

pub mod checkpoint;
pub mod encoding;
pub mod ga;
pub mod operators;
pub mod problem;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use encoding::Genome;
pub use ga::{Ga, GaConfig, GenStats, Individual};
pub use operators::MutationMode;
pub use problem::{Problem, Ripple, Sphere};
