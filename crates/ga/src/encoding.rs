//! PIKAIA-style decimal genotype encoding.
//!
//! MPIKAIA (Metcalfe & Charbonneau 2003) inherits PIKAIA's representation:
//! each normalized parameter in [0,1) is written as `ND` decimal digits and
//! the genome is the concatenated digit string. Crossover cuts the string;
//! mutation perturbs digits (uniform "jump" or ±1 "creep" with carry).

use serde::{Deserialize, Serialize};

/// Digits of precision per parameter (PIKAIA default is 5–6).
pub const DEFAULT_DIGITS: usize = 6;

/// A decimal-encoded genome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Genome {
    /// Concatenated digits, most significant first, `digits` per gene.
    pub digits: Vec<u8>,
    /// Digits per gene.
    pub nd: usize,
}

impl Genome {
    /// Encode normalized phenotype values (each clamped to [0, 1)) into
    /// decimal digits.
    pub fn encode(phenotype: &[f64], nd: usize) -> Genome {
        assert!((1..=9).contains(&nd), "1..=9 digits supported");
        let scale = 10f64.powi(nd as i32);
        let mut digits = Vec::with_capacity(phenotype.len() * nd);
        for &x in phenotype {
            let x = x.clamp(0.0, 1.0 - 1e-12);
            // round-to-nearest, clamped below 1.0, so decode∘encode is a
            // fixed point (truncation is not: 0.63115355 * 1e8 can land
            // one ulp below the integer it decoded from)
            let mut v = ((x * scale).round() as u64).min(scale as u64 - 1);
            let mut gene = [0u8; 9];
            for d in (0..nd).rev() {
                gene[d] = (v % 10) as u8;
                v /= 10;
            }
            digits.extend_from_slice(&gene[..nd]);
        }
        Genome { digits, nd }
    }

    /// Decode back into normalized phenotype values in [0, 1).
    pub fn decode(&self) -> Vec<f64> {
        let scale = 10f64.powi(self.nd as i32);
        self.digits
            .chunks(self.nd)
            .map(|gene| {
                let mut v = 0u64;
                for &d in gene {
                    v = v * 10 + d as u64;
                }
                v as f64 / scale
            })
            .collect()
    }

    /// Number of genes (parameters).
    pub fn n_genes(&self) -> usize {
        self.digits.len() / self.nd
    }

    /// Validate digit range (decoded data from a restart file).
    pub fn validate(&self) -> bool {
        self.nd >= 1
            && self.nd <= 9
            && !self.digits.is_empty()
            && self.digits.len().is_multiple_of(self.nd)
            && self.digits.iter().all(|&d| d < 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_to_precision() {
        let x = [0.123456789, 0.0, 0.999999, 0.5];
        let g = Genome::encode(&x, 6);
        assert_eq!(g.n_genes(), 4);
        let y = g.decode();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn decode_encode_is_identity_on_grid() {
        // values already on the decimal grid survive exactly
        let x = [0.123456, 0.000001, 0.999999];
        let g = Genome::encode(&x, 6);
        let y = g.decode();
        let g2 = Genome::encode(&y, 6);
        assert_eq!(g, g2);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_clamped() {
        let g = Genome::encode(&[1.5, -0.3], 4);
        let y = g.decode();
        assert!(y[0] < 1.0 && y[0] > 0.999);
        assert_eq!(y[1], 0.0);
    }

    #[test]
    fn validate_rejects_bad_digits() {
        let mut g = Genome::encode(&[0.5], 4);
        assert!(g.validate());
        g.digits[0] = 11;
        assert!(!g.validate());
        let odd = Genome {
            digits: vec![1, 2, 3],
            nd: 2,
        };
        assert!(!odd.validate());
    }

    #[test]
    fn values_decode_below_one() {
        for nd in 1..=9 {
            let g = Genome::encode(&[0.9999999999], nd);
            assert!(g.decode()[0] < 1.0);
        }
    }
}
