//! The generational GA engine.
//!
//! Mirrors MPIKAIA's structure (paper §2): a population of candidate stars
//! (default 126, matching "each GA models a population of 126 stars using
//! 128 processors"), evaluated in parallel, evolved for a fixed number of
//! iterations (default 200) with rank selection, one-point crossover on
//! decimal genomes, jump+creep mutation with adaptive rate, and elitism.
//!
//! Determinism: each generation's randomness is drawn from a fresh stream
//! seeded by `(base_seed, generation)`, so a run checkpointed after any
//! generation and resumed elsewhere reproduces the uninterrupted run
//! exactly — the property AMP's multi-job continuation workflow relies on.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::encoding::Genome;
use crate::operators::{adapt_pmut, crossover, fitness_ranks, mutate, select_ranked, MutationMode};
use crate::problem::Problem;

/// Fitness-evaluation accounting: fresh evaluations vs individuals whose
/// cached fitness (elites, checkpoint restores) let us skip the model run.
/// Labeled per science application so /metrics can attribute GA work.
struct GaMetrics {
    evals: amp_obs::Counter,
    cached_skips: amp_obs::Counter,
}

fn obs_metrics(app: &str) -> GaMetrics {
    let labels = [("app", app)];
    GaMetrics {
        evals: amp_obs::counter(&amp_obs::labeled("ga_evals_total", &labels)),
        cached_skips: amp_obs::counter(&amp_obs::labeled("ga_cached_skips_total", &labels)),
    }
}

/// Engine configuration. Defaults reproduce the paper's Kepler setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size (paper: 126).
    pub population: usize,
    /// Total iterations an optimization performs (paper: 200).
    pub generations: u32,
    /// Decimal digits per gene.
    pub nd: usize,
    /// Crossover probability.
    pub pcross: f64,
    /// Initial per-digit mutation probability.
    pub pmut: f64,
    pub pmut_min: f64,
    pub pmut_max: f64,
    /// Fraction of mutations using creep (vs jump).
    pub creep_fraction: f64,
    /// Copies of the best individual preserved each generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 126,
            generations: 200,
            nd: 6,
            pcross: 0.85,
            pmut: 0.005,
            pmut_min: 0.0005,
            pmut_max: 0.25,
            creep_fraction: 0.5,
            elitism: 1,
        }
    }
}

/// One individual: genome plus cached fitness and phenotype.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Individual {
    pub genome: Genome,
    pub phenotype: Vec<f64>,
    pub fitness: f64,
    /// Whether `phenotype`/`fitness` are valid for `genome`. Runtime-only:
    /// checkpoint files store genomes authoritatively, so restored
    /// individuals re-earn this flag by decode comparison in `from_parts`.
    #[serde(skip)]
    pub evaluated: bool,
}

/// Per-generation statistics (the "partial result" content AMP's daemon
/// downloads and interprets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    pub generation: u32,
    pub best_fitness: f64,
    pub mean_fitness: f64,
    pub median_fitness: f64,
    pub pmut: f64,
}

/// The GA engine. Holds the problem by reference; all serializable state
/// lives in [`crate::checkpoint::Checkpoint`].
pub struct Ga<'p, P: Problem> {
    pub config: GaConfig,
    problem: &'p P,
    base_seed: u64,
    generation: u32,
    population: Vec<Individual>,
    pmut: f64,
    history: Vec<GenStats>,
}

impl<'p, P: Problem> Ga<'p, P> {
    /// Initialize generation 0 with a random population (paper §2: "each
    /// task is started with randomly generated seed parameters").
    pub fn new(problem: &'p P, config: GaConfig, seed: u64) -> Self {
        let mut rng = Self::gen_rng(seed, u32::MAX); // init stream
        let n = problem.n_genes();
        let population: Vec<Individual> = (0..config.population)
            .map(|_| {
                let phenotype: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
                Individual {
                    genome: Genome::encode(&phenotype, config.nd),
                    phenotype,
                    fitness: 0.0,
                    evaluated: false,
                }
            })
            .collect();
        let pmut = config.pmut;
        let mut ga = Ga {
            config,
            problem,
            base_seed: seed,
            generation: 0,
            population,
            pmut,
            history: Vec::new(),
        };
        ga.evaluate_all();
        ga
    }

    /// Rebuild an engine from checkpointed state (see `checkpoint` module).
    pub(crate) fn from_parts(
        problem: &'p P,
        config: GaConfig,
        base_seed: u64,
        generation: u32,
        population: Vec<Individual>,
        pmut: f64,
        history: Vec<GenStats>,
    ) -> Self {
        let mut ga = Ga {
            config,
            problem,
            base_seed,
            generation,
            population,
            pmut,
            history,
        };
        // The restart file stores genomes authoritatively; phenotype and
        // fitness ride along. An individual keeps its cached evaluation
        // only if the stored phenotype still matches its genome (fitness
        // is a pure function of the phenotype), otherwise it is
        // re-evaluated — so a tampered or truncated file self-heals while
        // a clean resume does zero fitness calls.
        for ind in &mut ga.population {
            ind.evaluated = !ind.phenotype.is_empty() && ind.phenotype == ind.genome.decode();
        }
        ga.evaluate_all();
        ga
    }

    fn gen_rng(base_seed: u64, generation: u32) -> ChaCha8Rng {
        // Distinct, deterministic stream per (seed, generation).
        let mixed = base_seed
            ^ (generation as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0xA5A5_5A5A_DEAD_BEEF;
        ChaCha8Rng::seed_from_u64(mixed)
    }

    /// Evaluate every individual that doesn't already carry a valid
    /// cached fitness. Elites cloned across generations (and individuals
    /// restored from a checkpoint whose phenotype matches their genome)
    /// are skipped — fitness is a pure function of the phenotype, so
    /// re-evaluating them was pure waste.
    fn evaluate_all(&mut self) {
        let problem = self.problem;
        let m = obs_metrics(problem.app_label());
        self.population.par_iter_mut().for_each(|ind| {
            if ind.evaluated {
                m.cached_skips.inc();
                return;
            }
            ind.phenotype = ind.genome.decode();
            ind.fitness = problem.fitness(&ind.phenotype);
            ind.evaluated = true;
            m.evals.inc();
        });
    }

    pub fn generation(&self) -> u32 {
        self.generation
    }

    pub fn history(&self) -> &[GenStats] {
        &self.history
    }

    pub fn population(&self) -> &[Individual] {
        &self.population
    }

    pub(crate) fn population_owned(&self) -> Vec<Individual> {
        self.population.clone()
    }

    pub(crate) fn base_seed(&self) -> u64 {
        self.base_seed
    }

    pub(crate) fn pmut(&self) -> f64 {
        self.pmut
    }

    /// Best individual of the current population.
    pub fn best(&self) -> &Individual {
        self.population
            .iter()
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .expect("non-empty population")
    }

    /// Whether the configured iteration budget has been spent.
    pub fn finished(&self) -> bool {
        self.generation >= self.config.generations
    }

    fn stats(&self) -> GenStats {
        let mut f: Vec<f64> = self.population.iter().map(|i| i.fitness).collect();
        f.sort_by(|a, b| a.total_cmp(b));
        let n = f.len();
        GenStats {
            generation: self.generation,
            best_fitness: f[n - 1],
            mean_fitness: f.iter().sum::<f64>() / n as f64,
            median_fitness: f[n / 2],
            pmut: self.pmut,
        }
    }

    /// Advance one generation ("iteration" in the paper's terms). Returns
    /// the post-step statistics.
    pub fn step(&mut self) -> GenStats {
        let mut rng = Self::gen_rng(self.base_seed, self.generation);
        let fitness: Vec<f64> = self.population.iter().map(|i| i.fitness).collect();
        let ranks = fitness_ranks(&fitness);

        let elite: Vec<Individual> = {
            let mut order: Vec<usize> = (0..self.population.len()).collect();
            order.sort_by(|&a, &b| fitness[b].total_cmp(&fitness[a]).then(a.cmp(&b)));
            order
                .iter()
                .take(self.config.elitism.min(self.population.len()))
                .map(|&i| self.population[i].clone())
                .collect()
        };

        let mut next: Vec<Individual> = Vec::with_capacity(self.population.len());
        while next.len() + elite.len() < self.population.len() {
            let pa = select_ranked(&mut rng, &ranks);
            let pb = select_ranked(&mut rng, &ranks);
            let (mut ca, mut cb) = crossover(
                &mut rng,
                &self.population[pa].genome,
                &self.population[pb].genome,
                self.config.pcross,
            );
            for child in [&mut ca, &mut cb] {
                let mode = if rng.random_range(0.0..1.0) < self.config.creep_fraction {
                    MutationMode::Creep
                } else {
                    MutationMode::Jump
                };
                mutate(&mut rng, child, self.pmut, mode);
            }
            next.push(Individual {
                genome: ca,
                phenotype: Vec::new(),
                fitness: 0.0,
                evaluated: false,
            });
            if next.len() + elite.len() < self.population.len() {
                next.push(Individual {
                    genome: cb,
                    phenotype: Vec::new(),
                    fitness: 0.0,
                    evaluated: false,
                });
            }
        }
        next.extend(elite);
        self.population = next;
        self.evaluate_all();
        self.generation += 1;

        let s = self.stats();
        self.pmut = adapt_pmut(
            self.pmut,
            s.best_fitness,
            s.median_fitness,
            self.config.pmut_min,
            self.config.pmut_max,
        );
        self.history.push(s);
        s
    }

    /// Run until `finished()` or `max_steps` further generations, whichever
    /// comes first — the walltime-limited "one job's worth" of progress.
    /// Returns the number of generations actually executed.
    pub fn run(&mut self, max_steps: u32) -> u32 {
        let mut done = 0;
        while !self.finished() && done < max_steps {
            self.step();
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::problem::{Ripple, Sphere};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A Sphere that counts fitness evaluations (thread-safe: evaluate_all
    /// runs under par_iter_mut).
    struct CountingSphere {
        inner: Sphere,
        evals: AtomicUsize,
    }

    impl CountingSphere {
        fn new(target: Vec<f64>) -> CountingSphere {
            CountingSphere {
                inner: Sphere { target },
                evals: AtomicUsize::new(0),
            }
        }

        fn evals(&self) -> usize {
            self.evals.load(Ordering::SeqCst)
        }
    }

    impl Problem for CountingSphere {
        fn n_genes(&self) -> usize {
            self.inner.n_genes()
        }

        fn fitness(&self, x: &[f64]) -> f64 {
            self.evals.fetch_add(1, Ordering::SeqCst);
            self.inner.fitness(x)
        }
    }

    fn small_cfg() -> GaConfig {
        GaConfig {
            population: 40,
            generations: 60,
            ..GaConfig::default()
        }
    }

    #[test]
    fn converges_on_sphere() {
        let p = Sphere {
            target: vec![0.31, 0.77, 0.5],
        };
        let mut ga = Ga::new(&p, small_cfg(), 42);
        ga.run(u32::MAX);
        let best = ga.best();
        assert!(
            best.fitness > 0.95,
            "fitness {} at {:?}",
            best.fitness,
            best.phenotype
        );
        for (x, t) in best.phenotype.iter().zip(p.target.iter()) {
            assert!((x - t).abs() < 0.05, "{x} vs {t}");
        }
    }

    #[test]
    fn escapes_local_optima_on_ripple() {
        let p = Ripple {
            target: vec![0.62, 0.41],
        };
        let mut ga = Ga::new(
            &p,
            GaConfig {
                population: 80,
                generations: 120,
                ..GaConfig::default()
            },
            7,
        );
        ga.run(u32::MAX);
        assert!(ga.best().fitness > 0.8, "fitness {}", ga.best().fitness);
    }

    #[test]
    fn elitism_makes_best_fitness_monotone() {
        let p = Sphere {
            target: vec![0.5, 0.5],
        };
        let mut ga = Ga::new(&p, small_cfg(), 3);
        let mut prev = ga.best().fitness;
        for _ in 0..30 {
            let s = ga.step();
            assert!(
                s.best_fitness >= prev - 1e-12,
                "regressed {prev} -> {}",
                s.best_fitness
            );
            prev = s.best_fitness;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let p = Sphere {
            target: vec![0.2, 0.9],
        };
        let mut a = Ga::new(&p, small_cfg(), 11);
        let mut b = Ga::new(&p, small_cfg(), 11);
        a.run(25);
        b.run(25);
        assert_eq!(a.best().genome, b.best().genome);
        assert_eq!(a.history().len(), b.history().len());
        assert_eq!(a.history()[24], b.history()[24]);
    }

    #[test]
    fn different_seeds_differ() {
        let p = Sphere {
            target: vec![0.2, 0.9],
        };
        let mut a = Ga::new(&p, small_cfg(), 1);
        let mut b = Ga::new(&p, small_cfg(), 2);
        a.run(5);
        b.run(5);
        assert_ne!(a.best().genome, b.best().genome);
    }

    #[test]
    fn run_respects_budget_and_finished() {
        let p = Sphere { target: vec![0.5] };
        let mut ga = Ga::new(&p, small_cfg(), 5);
        assert_eq!(ga.run(10), 10);
        assert_eq!(ga.generation(), 10);
        assert!(!ga.finished());
        assert_eq!(ga.run(u32::MAX), 50);
        assert!(ga.finished());
        assert_eq!(ga.run(10), 0);
    }

    #[test]
    fn population_size_is_stable() {
        let p = Sphere { target: vec![0.5] };
        let mut ga = Ga::new(&p, small_cfg(), 5);
        for _ in 0..5 {
            ga.step();
            assert_eq!(ga.population().len(), 40);
        }
    }

    #[test]
    fn elites_are_not_reevaluated() {
        let p = CountingSphere::new(vec![0.5, 0.5]);
        let cfg = GaConfig {
            population: 40,
            generations: 60,
            elitism: 3,
            ..GaConfig::default()
        };
        let mut ga = Ga::new(&p, cfg.clone(), 9);
        assert_eq!(p.evals(), cfg.population);
        let steps = 10;
        for _ in 0..steps {
            ga.step();
        }
        // Each generation evaluates only the fresh offspring; the cloned
        // elites keep their cached fitness.
        assert_eq!(
            p.evals(),
            cfg.population + steps * (cfg.population - cfg.elitism)
        );
    }

    #[test]
    fn checkpoint_resume_reuses_cached_fitness() {
        let p = CountingSphere::new(vec![0.3, 0.8]);
        let mut ga = Ga::new(&p, small_cfg(), 17);
        ga.run(7);
        let text = Checkpoint::capture(&ga).to_text();

        let q = CountingSphere::new(vec![0.3, 0.8]);
        let restored = Checkpoint::from_text(&text).unwrap().resume(&q).unwrap();
        // Every restored phenotype matches its genome, so resume performs
        // zero fitness evaluations.
        assert_eq!(q.evals(), 0);
        assert_eq!(restored.best().genome, ga.best().genome);
        assert_eq!(restored.best().fitness, ga.best().fitness);
    }

    #[test]
    fn tampered_checkpoint_phenotypes_are_reevaluated() {
        let p = CountingSphere::new(vec![0.4]);
        let mut ga = Ga::new(&p, small_cfg(), 23);
        ga.run(3);
        let mut cp = Checkpoint::capture(&ga);
        // Corrupt one cached phenotype: resume must spot the mismatch
        // against the genome and recompute that individual (only).
        cp.population[0].phenotype = vec![99.0];
        let q = CountingSphere::new(vec![0.4]);
        let restored = cp.resume(&q).unwrap();
        assert_eq!(q.evals(), 1);
        assert_eq!(
            restored.population()[0].phenotype,
            restored.population()[0].genome.decode()
        );
    }

    #[test]
    fn history_records_every_generation() {
        let p = Sphere { target: vec![0.5] };
        let mut ga = Ga::new(&p, small_cfg(), 5);
        ga.run(12);
        let h = ga.history();
        assert_eq!(h.len(), 12);
        for (i, s) in h.iter().enumerate() {
            assert_eq!(s.generation, i as u32 + 1);
            assert!(s.best_fitness >= s.median_fitness);
            assert!(s.pmut > 0.0);
        }
    }
}
