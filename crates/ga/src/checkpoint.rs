//! Checkpoint/restart: the GA's "restart progress file".
//!
//! Paper §2/§4.3: "a GA may not converge in a single task execution within
//! the target supercomputer's walltime limitations. Thus, each GA run may
//! require several invocations of the executable" — every model invocation
//! stages out "its restart progress file". This module defines that file:
//! a self-describing JSON document containing config, generation counter,
//! population genomes, adaptive mutation state, and history. Resuming from
//! it continues the run bit-for-bit identically to an uninterrupted run.

use serde::{Deserialize, Serialize};

use crate::encoding::Genome;
use crate::ga::{Ga, GaConfig, GenStats, Individual};
use crate::problem::Problem;

/// Serializable GA state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub format_version: u32,
    pub config: GaConfig,
    pub base_seed: u64,
    pub generation: u32,
    pub pmut: f64,
    pub population: Vec<Individual>,
    pub history: Vec<GenStats>,
}

/// Problems decoding a restart file.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    Parse(String),
    BadVersion(u32),
    /// Genomes malformed or inconsistent with the config.
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Parse(m) => write!(f, "restart file parse error: {m}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported restart version {v}"),
            CheckpointError::Invalid(m) => write!(f, "invalid restart contents: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

pub const FORMAT_VERSION: u32 = 1;

impl Checkpoint {
    /// Capture the current state of a running GA.
    pub fn capture<P: Problem>(ga: &Ga<'_, P>) -> Checkpoint {
        Checkpoint {
            format_version: FORMAT_VERSION,
            config: ga.config.clone(),
            base_seed: ga.base_seed(),
            generation: ga.generation(),
            pmut: ga.pmut(),
            population: ga.population_owned(),
            history: ga.history().to_vec(),
        }
    }

    /// Serialize to the staged restart-file text.
    pub fn to_text(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parse and validate a staged restart file.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointError> {
        let cp: Checkpoint =
            serde_json::from_str(text).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        cp.validate()?;
        Ok(cp)
    }

    /// Structural validation — AMP's daemon treats a failure here as a
    /// *model failure* (hold + notify), not a transient.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.format_version != FORMAT_VERSION {
            return Err(CheckpointError::BadVersion(self.format_version));
        }
        if self.population.len() != self.config.population {
            return Err(CheckpointError::Invalid(format!(
                "population {} != configured {}",
                self.population.len(),
                self.config.population
            )));
        }
        if self.generation > self.config.generations {
            return Err(CheckpointError::Invalid(format!(
                "generation {} beyond configured {}",
                self.generation, self.config.generations
            )));
        }
        let n_genes = self
            .population
            .first()
            .map(|i| i.genome.n_genes())
            .unwrap_or(0);
        for (i, ind) in self.population.iter().enumerate() {
            if !ind.genome.validate() {
                return Err(CheckpointError::Invalid(format!(
                    "individual {i}: malformed genome"
                )));
            }
            if ind.genome.nd != self.config.nd {
                return Err(CheckpointError::Invalid(format!(
                    "individual {i}: nd {} != config nd {}",
                    ind.genome.nd, self.config.nd
                )));
            }
            if ind.genome.n_genes() != n_genes {
                return Err(CheckpointError::Invalid(format!(
                    "individual {i}: gene count differs"
                )));
            }
        }
        Ok(())
    }

    /// Fractional progress toward the configured iteration count — what the
    /// daemon's partial-result interpretation reports to the website.
    pub fn progress(&self) -> f64 {
        if self.config.generations == 0 {
            1.0
        } else {
            self.generation as f64 / self.config.generations as f64
        }
    }

    /// Whether the run has performed all configured iterations.
    pub fn converged(&self) -> bool {
        self.generation >= self.config.generations
    }

    /// Best genome recorded in the checkpoint (by stored fitness).
    pub fn best_genome(&self) -> Option<&Genome> {
        self.population
            .iter()
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .map(|i| &i.genome)
    }

    /// Resume execution against the (same) problem.
    pub fn resume<'p, P: Problem>(&self, problem: &'p P) -> Result<Ga<'p, P>, CheckpointError> {
        self.validate()?;
        if self
            .population
            .first()
            .map(|i| i.genome.n_genes() != problem.n_genes())
            .unwrap_or(false)
        {
            return Err(CheckpointError::Invalid(
                "genome arity does not match problem".to_string(),
            ));
        }
        Ok(Ga::from_parts(
            problem,
            self.config.clone(),
            self.base_seed,
            self.generation,
            self.population.clone(),
            self.pmut,
            self.history.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Sphere;

    fn cfg() -> GaConfig {
        GaConfig {
            population: 30,
            generations: 40,
            ..GaConfig::default()
        }
    }

    #[test]
    fn resume_equals_uninterrupted() {
        let p = Sphere {
            target: vec![0.4, 0.6],
        };
        // uninterrupted run
        let mut full = Ga::new(&p, cfg(), 99);
        full.run(40);

        // interrupted after 13 generations, staged out + back in as text
        let mut part = Ga::new(&p, cfg(), 99);
        part.run(13);
        let text = Checkpoint::capture(&part).to_text();
        let cp = Checkpoint::from_text(&text).unwrap();
        assert!((cp.progress() - 13.0 / 40.0).abs() < 1e-12);
        let mut resumed = cp.resume(&p).unwrap();
        resumed.run(u32::MAX);

        assert_eq!(resumed.generation(), full.generation());
        assert_eq!(resumed.best().genome, full.best().genome);
        assert_eq!(
            resumed.history().last().unwrap(),
            full.history().last().unwrap()
        );
    }

    #[test]
    fn multi_hop_resume_chain() {
        // like four sequential walltime-limited jobs
        let p = Sphere {
            target: vec![0.25, 0.75, 0.1],
        };
        let mut full = Ga::new(&p, cfg(), 5);
        full.run(40);

        let mut cp = {
            let mut g = Ga::new(&p, cfg(), 5);
            g.run(10);
            Checkpoint::capture(&g)
        };
        for _hop in 0..3 {
            let mut g = cp.resume(&p).unwrap();
            g.run(10);
            cp = Checkpoint::capture(&g);
        }
        assert!(cp.converged());
        assert_eq!(cp.best_genome().unwrap(), &full.best().genome);
    }

    #[test]
    fn corrupt_text_is_model_failure() {
        assert!(matches!(
            Checkpoint::from_text("{ nope"),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn validation_catches_tampering() {
        let p = Sphere { target: vec![0.5] };
        let mut g = Ga::new(&p, cfg(), 1);
        g.run(3);
        let mut cp = Checkpoint::capture(&g);

        let mut bad = cp.clone();
        bad.format_version = 9;
        assert!(matches!(
            bad.validate(),
            Err(CheckpointError::BadVersion(9))
        ));

        let mut bad = cp.clone();
        bad.population.pop();
        assert!(bad.validate().is_err());

        let mut bad = cp.clone();
        bad.generation = 1000;
        assert!(bad.validate().is_err());

        bad = cp.clone();
        bad.population[0].genome.digits[0] = 77;
        assert!(bad.validate().is_err());

        cp.config.nd = 4; // mismatch with stored genomes
        assert!(cp.validate().is_err());
    }

    #[test]
    fn resume_rejects_wrong_problem_arity() {
        let p1 = Sphere { target: vec![0.5] };
        let p2 = Sphere {
            target: vec![0.5, 0.5],
        };
        let g = Ga::new(&p1, cfg(), 1);
        let cp = Checkpoint::capture(&g);
        assert!(cp.resume(&p2).is_err());
        assert!(cp.resume(&p1).is_ok());
    }

    #[test]
    fn progress_and_convergence() {
        let p = Sphere { target: vec![0.5] };
        let mut g = Ga::new(&p, cfg(), 1);
        assert_eq!(Checkpoint::capture(&g).progress(), 0.0);
        g.run(u32::MAX);
        let cp = Checkpoint::capture(&g);
        assert!(cp.converged());
        assert_eq!(cp.progress(), 1.0);
    }
}
