//! The optimization problem interface and test problems.

/// A fitness landscape over normalized parameters in [0,1)^n. Implementors
/// must be `Sync`: populations are evaluated in parallel (MPIKAIA spread
//  its population over 128 processors; we use a rayon pool).
pub trait Problem: Sync {
    /// Number of normalized parameters.
    fn n_genes(&self) -> usize;

    /// Fitness of a phenotype; larger is better. Must be pure (the engine
    /// re-evaluates freely and in parallel).
    fn fitness(&self, phenotype: &[f64]) -> f64;

    /// Science-application label attributed to this problem's work in the
    /// engine's metrics (`ga_evals_total{app=...}` and friends).
    fn app_label(&self) -> &'static str {
        "default"
    }
}

/// Sphere test function: maximum 1.0 at `target`.
pub struct Sphere {
    pub target: Vec<f64>,
}

impl Problem for Sphere {
    fn n_genes(&self) -> usize {
        self.target.len()
    }

    fn fitness(&self, x: &[f64]) -> f64 {
        let d2: f64 = x
            .iter()
            .zip(self.target.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        1.0 / (1.0 + 50.0 * d2)
    }
}

/// A multimodal ripple landscape (Rastrigin-flavoured): global maximum at
/// `target`, many local optima — exercises the GA's ability to escape
/// local minima via its random seeding and mutation (paper §2).
pub struct Ripple {
    pub target: Vec<f64>,
}

impl Problem for Ripple {
    fn n_genes(&self) -> usize {
        self.target.len()
    }

    fn fitness(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(self.target.iter()) {
            let d = a - b;
            acc += d * d * 40.0 + 0.3 * (1.0 - (12.0 * std::f64::consts::PI * d).cos());
        }
        1.0 / (1.0 + acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_peaks_at_target() {
        let p = Sphere {
            target: vec![0.3, 0.7],
        };
        assert!((p.fitness(&[0.3, 0.7]) - 1.0).abs() < 1e-12);
        assert!(p.fitness(&[0.3, 0.7]) > p.fitness(&[0.4, 0.7]));
        assert!(p.fitness(&[0.4, 0.7]) > p.fitness(&[0.9, 0.1]));
    }

    #[test]
    fn ripple_has_local_structure_but_global_at_target() {
        let p = Ripple { target: vec![0.5] };
        let at = p.fitness(&[0.5]);
        for x in [0.1, 0.35, 0.62, 0.9] {
            assert!(at > p.fitness(&[x]));
        }
        // a local ripple: fitness is non-monotone on the way out
        let samples: Vec<f64> = (1..=20)
            .map(|i| p.fitness(&[0.5 + i as f64 * 0.01]))
            .collect();
        let monotone_down = samples.windows(2).all(|w| w[1] <= w[0]);
        assert!(!monotone_down, "expected ripples, got monotone decay");
        assert!((p.fitness(&[0.5]) - 1.0).abs() < 1e-12);
    }
}
