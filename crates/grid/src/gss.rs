//! Grid security: community credentials and GridShib-style proxies.
//!
//! TeraGrid science gateways submit with a *community credential* but must
//! attribute every request to an individual gateway user; the GridShib
//! SAML extensions embed that attribution in the proxy certificate (§3).
//! This module models exactly that surface: a long-lived community
//! credential held only by the GridAMP server, from which short-lived
//! proxies carrying the acting user's identity are derived.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The long-lived community credential (never leaves the daemon host —
/// the portal has no type-level access to this at all).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityCredential {
    /// Distinguished name, e.g. "/C=US/O=NCAR/CN=amp community".
    pub subject: String,
    /// Opaque private-key stand-in; proxies embed a signature derived from
    /// it so sites can verify descent.
    key_fingerprint: u64,
}

impl CommunityCredential {
    pub fn new(subject: &str) -> Self {
        // Deterministic fingerprint from the subject (FNV-1a).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in subject.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        CommunityCredential {
            subject: subject.to_string(),
            key_fingerprint: h,
        }
    }

    /// Derive a short-lived proxy carrying the acting gateway user's
    /// identity as a SAML attribute (GridShib, §3).
    pub fn issue_proxy(
        &self,
        gateway_user: &str,
        issued_at: SimTime,
        lifetime: SimDuration,
    ) -> ProxyCertificate {
        ProxyCertificate {
            subject: format!("{}/CN=proxy", self.subject),
            issuer: self.subject.clone(),
            saml_user: gateway_user.to_string(),
            issued_at,
            expires_at: issued_at + lifetime,
            signature: self
                .key_fingerprint
                .wrapping_add(fingerprint(gateway_user))
                .wrapping_add(issued_at.as_secs()),
        }
    }

    /// Verify a proxy descends from this credential.
    pub fn verify(&self, proxy: &ProxyCertificate) -> bool {
        proxy.issuer == self.subject
            && proxy.signature
                == self
                    .key_fingerprint
                    .wrapping_add(fingerprint(&proxy.saml_user))
                    .wrapping_add(proxy.issued_at.as_secs())
    }
}

fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A derived proxy certificate with SAML user attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyCertificate {
    pub subject: String,
    pub issuer: String,
    /// The gateway user on whose behalf this request acts — TeraGrid's
    /// end-to-end accounting requirement (§3).
    pub saml_user: String,
    pub issued_at: SimTime,
    pub expires_at: SimTime,
    signature: u64,
}

impl ProxyCertificate {
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        now >= self.issued_at && now < self.expires_at
    }

    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expires_at - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_carries_user_and_expires() {
        let cred = CommunityCredential::new("/C=US/O=NCAR/CN=amp");
        let p = cred.issue_proxy("astro1", SimTime(100), SimDuration::from_hours(12.0));
        assert_eq!(p.saml_user, "astro1");
        assert!(p.is_valid_at(SimTime(100)));
        assert!(p.is_valid_at(SimTime(100 + 11 * 3600)));
        assert!(!p.is_valid_at(SimTime(100 + 13 * 3600)));
        assert!(!p.is_valid_at(SimTime(50)));
    }

    #[test]
    fn verification_detects_forgery() {
        let cred = CommunityCredential::new("/CN=amp");
        let other = CommunityCredential::new("/CN=mallory");
        let good = cred.issue_proxy("astro1", SimTime(0), SimDuration::from_hours(1.0));
        assert!(cred.verify(&good));
        assert!(!other.verify(&good));

        // tampering with the SAML user breaks the signature
        let mut tampered = good.clone();
        tampered.saml_user = "astro2".into();
        assert!(!cred.verify(&tampered));

        // a proxy issued by a different credential with a matching issuer
        // string still fails (different key fingerprint)
        let mut forged = other.issue_proxy("astro1", SimTime(0), SimDuration::from_hours(1.0));
        forged.issuer = cred.subject.clone();
        assert!(!cred.verify(&forged));
    }

    #[test]
    fn distinct_users_distinct_signatures() {
        let cred = CommunityCredential::new("/CN=amp");
        let a = cred.issue_proxy("u1", SimTime(0), SimDuration::from_hours(1.0));
        let b = cred.issue_proxy("u2", SimTime(0), SimDuration::from_hours(1.0));
        assert_ne!(a, b);
        assert!(cred.verify(&a) && cred.verify(&b));
    }

    #[test]
    fn remaining_lifetime() {
        let cred = CommunityCredential::new("/CN=amp");
        let p = cred.issue_proxy("u", SimTime(0), SimDuration::from_secs(100));
        assert_eq!(p.remaining(SimTime(40)).as_secs(), 60);
        assert_eq!(p.remaining(SimTime(200)).as_secs(), 0);
    }
}
