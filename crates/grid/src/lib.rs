//! # amp-grid — a discrete-event TeraGrid simulator
//!
//! The computational substrate of the AMP reproduction (Woitaszek et al.,
//! GCE 2009). AMP targets TeraGrid resources through exactly three
//! mechanisms, all part of the common CTSS stack (§4.3): GRAM job
//! submission (fork + batch), GridFTP file staging, and community-credential
//! proxies with GridShib SAML user attribution. This crate simulates that
//! surface over a virtual clock:
//!
//! * [`time`] — simulated seconds; Table 1's numbers are simulated time;
//! * [`systems`] — Frost/Kraken/Lonestar/Ranger profiles calibrated to
//!   Table 1 (benchmark minutes, SU charge factors, walltime limits);
//! * [`scheduler`] — per-site FCFS + EASY-backfill batch queue with
//!   walltime kill, job chaining, and seeded synthetic background load;
//! * [`fs`] / [`app`] — site scratch filesystems and installed executables;
//! * [`gss`] — community credential → SAML-attributed proxies;
//! * [`gram`] / GridFTP methods on [`Grid`] — the client calls the daemon
//!   makes, with outage-window fault injection ([`fault`]) and full request
//!   attribution ([`audit`]).
//!
//! ```
//! use amp_grid::prelude::*;
//! use std::sync::Arc;
//!
//! let mut grid = Grid::new();
//! grid.add_site(amp_grid::systems::kraken());
//! grid.install_app("kraken", "/bin/sleep", Arc::new(amp_grid::app::SleepApp));
//! let cred = CommunityCredential::new("/CN=amp community");
//! grid.authorize("kraken", &cred);
//! let proxy = cred.issue_proxy("astro1", grid.now(), SimDuration::from_hours(12.0));
//!
//! let h = grid.gram_submit("kraken", &proxy, GramJobSpec {
//!     service: GramService::Batch,
//!     executable: "/bin/sleep".into(),
//!     args: vec!["5".into()],
//!     workdir: "scratch/demo".into(),
//!     cores: 1,
//!     walltime: SimDuration::from_minutes(10.0),
//!     depends_on: vec![],
//!     name: "demo".into(),
//! }).unwrap();
//! grid.advance(SimDuration::from_minutes(30.0));
//! assert_eq!(grid.gram_status("kraken", &proxy, &h).unwrap(), GramState::Done);
//! ```

pub mod app;
pub mod audit;
pub mod error;
pub mod fault;
pub mod fs;
pub mod gram;
pub mod gss;
pub mod scheduler;
pub mod systems;
pub mod time;

pub use crate::app::{AppContext, AppRegistry, AppRun, Application};
pub use crate::audit::{AuditLog, AuditRecord};
pub use crate::error::GridError;
pub use crate::fault::{DaemonFault, DaemonFaultEvent, DaemonFaultPlan, FaultPlan, Service};
pub use crate::fs::SiteFs;
pub use crate::gram::{GramJobHandle, GramJobSpec, GramService, GramState, JobTimes};
pub use crate::gss::{CommunityCredential, ProxyCertificate};
pub use crate::scheduler::{BatchJob, JobOutcome, JobState, Scheduler};
pub use crate::systems::SystemProfile;
pub use crate::time::{SimDuration, SimTime};

/// Common imports for consumers.
pub mod prelude {
    pub use crate::app::{AppContext, AppRun, Application};
    pub use crate::error::GridError;
    pub use crate::fault::{DaemonFault, DaemonFaultEvent, DaemonFaultPlan, Service};
    pub use crate::gram::{GramJobHandle, GramJobSpec, GramService, GramState, JobTimes};
    pub use crate::gss::{CommunityCredential, ProxyCertificate};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::Grid;
}

use crate::scheduler::{BackgroundLoad, JobRequest, Payload};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a mutex, recovering from poison: the protected state is plain
/// simulator data, and a panicking worker thread must not wedge every
/// other worker (or the test harness that observes the failure).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Simulated GridFTP throughput (bytes per simulated second) and per-call
/// latency — only used for transfer accounting; calls complete inline.
const FTP_BANDWIDTH_BPS: u64 = 50 * 1024 * 1024;
const FTP_LATENCY_SECS: u64 = 2;

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    JobFinish { site: String, job: u64 },
    BgArrival { site: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One simulated resource provider site.
pub struct Site {
    pub profile: SystemProfile,
    pub scheduler: Scheduler,
    pub fs: SiteFs,
    pub apps: AppRegistry,
    background: Option<BackgroundState>,
    /// Community credential subjects enabled on this site.
    authorized: BTreeSet<String>,
    /// Registered credentials for proxy verification, by subject.
    trust: BTreeMap<String, CommunityCredential>,
}

struct BackgroundState {
    generator: BackgroundLoad,
    next_request: JobRequest,
}

/// Statistics for one GridFTP transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStats {
    pub bytes: u64,
    /// Modeled transfer duration (latency + bytes/bandwidth). Transfers
    /// complete inline — this is accounting, not a clock advance: staging
    /// is minutes against multi-hour jobs.
    pub duration: SimDuration,
}

/// The virtual clock and event queue, one lock domain. Everything that
/// orders the simulation globally lives here: `seq` makes event ordering
/// at equal timestamps deterministic per insertion.
struct ClockState {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
}

/// A locked view of one [`Site`].
///
/// Concurrency model (the daemon's parallel tick engine shares one `Grid`
/// across worker threads):
///
/// * every site sits behind its own mutex — the sharding unit;
/// * the clock (now + event queue) is a second, independent lock;
/// * the audit log is a third.
///
/// Lock order: a thread may hold at most one site lock, and must release
/// it before touching the clock or audit locks (client calls collect
/// their new events and audit records while holding the site, then apply
/// them after dropping it). The clock lock is never held while acquiring
/// a site lock — `advance_to` pops each due event, releases the clock,
/// and only then dispatches into the event's site.
pub struct SiteGuard<'a>(MutexGuard<'a, Site>);

impl Deref for SiteGuard<'_> {
    type Target = Site;
    fn deref(&self) -> &Site {
        &self.0
    }
}

impl DerefMut for SiteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Site {
        &mut self.0
    }
}

/// A locked view of the attribution log.
pub struct AuditGuard<'a>(MutexGuard<'a, AuditLog>);

impl Deref for AuditGuard<'_> {
    type Target = AuditLog;
    fn deref(&self) -> &AuditLog {
        &self.0
    }
}

/// The simulation: virtual clock, event queue, and all sites.
///
/// Client calls (`gram_*`, `ftp_*`, `job_times`, `advance`) take `&self`
/// and synchronize internally (see [`SiteGuard`] for the lock order), so
/// a `Grid` can be shared across daemon worker threads. The site map
/// itself is fixed after setup: `add_site` / `install_app` / `authorize`
/// keep `&mut self`, which statically excludes concurrent clients.
pub struct Grid {
    clock: Mutex<ClockState>,
    sites: BTreeMap<String, Mutex<Site>>,
    pub faults: FaultPlan,
    audit: Mutex<AuditLog>,
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    pub fn new() -> Self {
        Grid {
            clock: Mutex::new(ClockState {
                now: SimTime::ZERO,
                seq: 0,
                events: BinaryHeap::new(),
            }),
            sites: BTreeMap::new(),
            faults: FaultPlan::none(),
            audit: Mutex::new(AuditLog::default()),
        }
    }

    pub fn now(&self) -> SimTime {
        lock(&self.clock).now
    }

    pub fn audit(&self) -> AuditGuard<'_> {
        AuditGuard(lock(&self.audit))
    }

    pub fn site(&self, name: &str) -> Option<SiteGuard<'_>> {
        self.sites.get(name).map(|m| SiteGuard(lock(m)))
    }

    /// Locked mutable access to a site (same lock as [`Grid::site`]; the
    /// `_mut` name is kept for the pre-refactor call sites).
    pub fn site_mut(&self, name: &str) -> Option<SiteGuard<'_>> {
        self.site(name)
    }

    pub fn site_names(&self) -> Vec<String> {
        self.sites.keys().cloned().collect()
    }

    /// Register a quiet site (no competing load).
    pub fn add_site(&mut self, profile: SystemProfile) {
        let name = profile.name.clone();
        let fs = SiteFs::new(&name, profile.scratch_quota_bytes);
        let scheduler = Scheduler::new(profile.clone());
        self.sites.insert(
            name,
            Mutex::new(Site {
                profile,
                scheduler,
                fs,
                apps: AppRegistry::new(),
                background: None,
                authorized: BTreeSet::new(),
                trust: BTreeMap::new(),
            }),
        );
    }

    /// Register a site with synthetic background load (queue contention).
    pub fn add_site_with_background(&mut self, profile: SystemProfile, seed: u64) {
        let name = profile.name.clone();
        self.add_site(profile);
        let site = self
            .sites
            .get_mut(&name)
            .expect("just added")
            .get_mut()
            .unwrap_or_else(|p| p.into_inner());
        let mut generator = BackgroundLoad::new(&site.profile, seed);
        let (delay, next_request) = generator.next_arrival();
        site.background = Some(BackgroundState {
            generator,
            next_request,
        });
        let at = self.now() + delay;
        self.push_event(at, EventKind::BgArrival { site: name });
    }

    pub fn install_app(&mut self, site: &str, executable: &str, app: Arc<dyn Application>) {
        if let Some(s) = self.sites.get_mut(site) {
            s.get_mut()
                .unwrap_or_else(|p| p.into_inner())
                .apps
                .install(executable, app);
        }
    }

    /// Enable a community credential on a site (the "community account has
    /// been authorized" step, §4.3).
    pub fn authorize(&mut self, site: &str, cred: &CommunityCredential) {
        if let Some(s) = self.sites.get_mut(site) {
            let s = s.get_mut().unwrap_or_else(|p| p.into_inner());
            s.authorized.insert(cred.subject.clone());
            s.trust.insert(cred.subject.clone(), cred.clone());
        }
    }

    fn push_event(&self, at: SimTime, kind: EventKind) {
        let mut clock = lock(&self.clock);
        let seq = clock.seq;
        clock.seq += 1;
        clock.events.push(Reverse(Event { at, seq, kind }));
    }

    /// Queue the JobFinish events produced by a scheduler pass.
    fn queue_job_events(&self, site: &str, new_events: Vec<(SimTime, u64)>) {
        if new_events.is_empty() {
            return;
        }
        let mut clock = lock(&self.clock);
        for (at, id) in new_events {
            let seq = clock.seq;
            clock.seq += 1;
            clock.events.push(Reverse(Event {
                at,
                seq,
                kind: EventKind::JobFinish {
                    site: site.to_string(),
                    job: id,
                },
            }));
        }
    }

    /// Advance the clock by `dur`, processing all events in order.
    pub fn advance(&self, dur: SimDuration) {
        let target = self.now() + dur;
        self.advance_to(target);
    }

    /// Advance the clock to `target`, processing all events in order.
    ///
    /// Takes `&self`, but is meant to be called from a single driving
    /// thread between daemon ticks; worker threads only issue client
    /// calls, which never move the clock.
    pub fn advance_to(&self, target: SimTime) {
        loop {
            // Pop one due event under the clock lock, release, dispatch.
            let (at, kind) = {
                let mut clock = lock(&self.clock);
                match clock.events.peek() {
                    Some(Reverse(ev)) if ev.at <= target => {
                        let Reverse(ev) = clock.events.pop().expect("peeked");
                        clock.now = ev.at;
                        (ev.at, ev.kind)
                    }
                    _ => {
                        if target > clock.now {
                            clock.now = target;
                        }
                        return;
                    }
                }
            };
            self.dispatch(at, kind);
        }
    }

    fn dispatch(&self, now: SimTime, kind: EventKind) {
        match kind {
            EventKind::JobFinish { site, job } => {
                let mut new_events = Vec::new();
                if let Some(m) = self.sites.get(&site) {
                    let mut guard = lock(m);
                    let s = &mut *guard;
                    s.scheduler.finish_job(job, now, &mut s.fs);
                    new_events = s.scheduler.schedule_pass(now, &mut s.fs, &s.apps);
                }
                self.queue_job_events(&site, new_events);
            }
            EventKind::BgArrival { site } => {
                let mut new_events = Vec::new();
                let mut next: Option<SimTime> = None;
                if let Some(m) = self.sites.get(&site) {
                    let mut guard = lock(m);
                    let s = &mut *guard;
                    if let Some(bg) = s.background.as_mut() {
                        let req = bg.next_request.clone();
                        let (delay, upcoming) = bg.generator.next_arrival();
                        bg.next_request = upcoming;
                        next = Some(now + delay);
                        // Background load submits outside the GRAM surface.
                        let _ = s.scheduler.submit(req, now, true);
                        new_events = s.scheduler.schedule_pass(now, &mut s.fs, &s.apps);
                    }
                }
                self.queue_job_events(&site, new_events);
                if let Some(at) = next {
                    self.push_event(at, EventKind::BgArrival { site });
                }
            }
        }
    }

    /// Outage + credential + authorization gate shared by every client
    /// call. Returns the locked site on success.
    fn check_access(
        &self,
        site: &str,
        service: Service,
        proxy: &ProxyCertificate,
        now: SimTime,
    ) -> Result<MutexGuard<'_, Site>, GridError> {
        let service_name = match service {
            Service::Gram => "GRAM",
            Service::GridFtp => "GridFTP",
            Service::Both => "grid",
        };
        let m = self
            .sites
            .get(site)
            .ok_or_else(|| GridError::NoSuchSite(site.to_string()))?;
        if self.faults.is_down(site, service, now) {
            return Err(GridError::ServiceUnreachable {
                site: site.to_string(),
                service: service_name,
                at: now,
            });
        }
        if !proxy.is_valid_at(now) {
            return Err(GridError::CredentialExpired {
                subject: proxy.subject.clone(),
                at: now,
            });
        }
        let s = lock(m);
        let trusted = s
            .trust
            .get(&proxy.issuer)
            .map(|cred| cred.verify(proxy))
            .unwrap_or(false);
        if !trusted || !s.authorized.contains(&proxy.issuer) {
            return Err(GridError::NotAuthorized {
                site: site.to_string(),
                subject: proxy.subject.clone(),
            });
        }
        Ok(s)
    }

    fn record_audit(
        &self,
        now: SimTime,
        site: &str,
        service: &'static str,
        proxy: &ProxyCertificate,
        action: &str,
        detail: String,
    ) {
        lock(&self.audit).record(AuditRecord {
            time: now,
            site: site.to_string(),
            service: service.to_string(),
            subject: proxy.issuer.clone(),
            saml_user: proxy.saml_user.clone(),
            action: action.to_string(),
            detail,
        });
    }

    /// Submit a GRAM job (`globusrun`-equivalent).
    pub fn gram_submit(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        spec: GramJobSpec,
    ) -> Result<GramJobHandle, GridError> {
        // Resolve dependency handles to local scheduler ids.
        let mut deps = Vec::with_capacity(spec.depends_on.len());
        for h in &spec.depends_on {
            let (dep_site, id) = h
                .parse()
                .ok_or_else(|| GridError::BadDependency(format!("unparseable handle {h}")))?;
            if dep_site != site {
                return Err(GridError::BadDependency(format!(
                    "dependency {h} is on another site"
                )));
            }
            deps.push(id);
        }
        let now = self.now();
        let (id, new_events) = {
            let mut guard = self.check_access(site, Service::Gram, proxy, now)?;
            let s = &mut *guard;
            if s.apps.get(&spec.executable).is_none() {
                return Err(GridError::NoSuchApplication {
                    site: site.to_string(),
                    executable: spec.executable.clone(),
                });
            }
            let cores = match spec.service {
                GramService::Fork => 0,
                GramService::Batch => spec.cores.max(1),
            };
            let req = JobRequest {
                name: spec.name.clone(),
                cores,
                walltime: spec.walltime,
                deps,
                payload: Payload::App {
                    executable: spec.executable.clone(),
                    args: spec.args.clone(),
                    workdir: spec.workdir.clone(),
                },
            };
            let id = s.scheduler.submit(req, now, false)?;
            (id, s.scheduler.schedule_pass(now, &mut s.fs, &s.apps))
        };
        self.queue_job_events(site, new_events);
        let handle = GramJobHandle::new(site, spec.service, id);
        self.record_audit(
            now,
            site,
            "GRAM",
            proxy,
            "submit",
            format!("{} -> {}", spec.executable, handle),
        );
        Ok(handle)
    }

    /// Poll a job's GRAM status (`globus-job-status`-equivalent).
    pub fn gram_status(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        handle: &GramJobHandle,
    ) -> Result<GramState, GridError> {
        let now = self.now();
        let s = self.check_access(site, Service::Gram, proxy, now)?;
        let (_, id) = handle
            .parse()
            .ok_or_else(|| GridError::NoSuchJob(handle.to_string()))?;
        let job = s
            .scheduler
            .job(id)
            .ok_or_else(|| GridError::NoSuchJob(handle.to_string()))?;
        Ok(GramState::from_job_state(&job.state))
    }

    /// Cancel a job (`globus-job-cancel`).
    pub fn gram_cancel(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        handle: &GramJobHandle,
    ) -> Result<(), GridError> {
        let (_, id) = handle
            .parse()
            .ok_or_else(|| GridError::NoSuchJob(handle.to_string()))?;
        let now = self.now();
        let new_events = {
            let mut guard = self.check_access(site, Service::Gram, proxy, now)?;
            let s = &mut *guard;
            s.scheduler.cancel(id, "cancelled via GRAM")?;
            s.scheduler.schedule_pass(now, &mut s.fs, &s.apps)
        };
        self.queue_job_events(site, new_events);
        self.record_audit(now, site, "GRAM", proxy, "cancel", handle.to_string());
        Ok(())
    }

    /// Submit/start/end record for the Gantt tool (§6) — introspection,
    /// not a grid client call.
    pub fn job_times(&self, site: &str, handle: &GramJobHandle) -> Option<JobTimes> {
        let s = SiteGuard(lock(self.sites.get(site)?));
        let (_, id) = handle.parse()?;
        let job = s.scheduler.job(id)?;
        let (started, ended) = match &job.state {
            JobState::Waiting | JobState::Cancelled { .. } => (None, None),
            JobState::Running { started_at, .. } => (Some(*started_at), None),
            JobState::Done {
                started_at,
                ended_at,
                ..
            } => (Some(*started_at), Some(*ended_at)),
        };
        Some(JobTimes {
            name: job.name.clone(),
            cores: job.cores,
            submitted_at: job.submitted_at,
            started_at: started,
            ended_at: ended,
            state: GramState::from_job_state(&job.state),
        })
    }

    /// Stage a file to a site (`globus-url-copy` put).
    pub fn ftp_put(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        path: &str,
        data: Vec<u8>,
    ) -> Result<TransferStats, GridError> {
        let now = self.now();
        let bytes = data.len() as u64;
        {
            let mut s = self.check_access(site, Service::GridFtp, proxy, now)?;
            s.fs.write(path, data)?;
        }
        let stats = TransferStats {
            bytes,
            duration: SimDuration::from_secs(FTP_LATENCY_SECS + bytes / FTP_BANDWIDTH_BPS),
        };
        self.record_audit(
            now,
            site,
            "GridFTP",
            proxy,
            "put",
            format!("{path} ({bytes} B)"),
        );
        Ok(stats)
    }

    /// List remote files under a prefix (`uberftp ls`-equivalent) — used
    /// for troubleshooting staged trees.
    pub fn ftp_list(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        prefix: &str,
    ) -> Result<Vec<String>, GridError> {
        let now = self.now();
        let s = self.check_access(site, Service::GridFtp, proxy, now)?;
        Ok(s.fs.list_tree(prefix))
    }

    /// Fetch a file from a site (`globus-url-copy` get).
    pub fn ftp_get(
        &self,
        site: &str,
        proxy: &ProxyCertificate,
        path: &str,
    ) -> Result<(Vec<u8>, TransferStats), GridError> {
        let now = self.now();
        let data = {
            let s = self.check_access(site, Service::GridFtp, proxy, now)?;
            s.fs.read(path)?.to_vec()
        };
        let bytes = data.len() as u64;
        let stats = TransferStats {
            bytes,
            duration: SimDuration::from_secs(FTP_LATENCY_SECS + bytes / FTP_BANDWIDTH_BPS),
        };
        self.record_audit(
            now,
            site,
            "GridFTP",
            proxy,
            "get",
            format!("{path} ({bytes} B)"),
        );
        Ok((data, stats))
    }
}

/// The whole point of the per-site sharding: a `Grid` can be shared by
/// reference across daemon worker threads.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Grid>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SleepApp;
    use crate::systems::{kraken, lonestar};

    fn setup() -> (Grid, CommunityCredential, ProxyCertificate) {
        let mut grid = Grid::new();
        grid.add_site(kraken());
        grid.install_app("kraken", "sleep", Arc::new(SleepApp));
        let cred = CommunityCredential::new("/CN=amp community");
        grid.authorize("kraken", &cred);
        let proxy = cred.issue_proxy("astro1", grid.now(), SimDuration::from_hours(1000.0));
        (grid, cred, proxy)
    }

    fn sleep_spec(name: &str, minutes: f64, service: GramService) -> GramJobSpec {
        GramJobSpec {
            service,
            executable: "sleep".into(),
            args: vec![minutes.to_string()],
            workdir: format!("scratch/{name}"),
            cores: 128,
            walltime: SimDuration::from_minutes(minutes + 10.0),
            depends_on: vec![],
            name: name.into(),
        }
    }

    #[test]
    fn batch_job_lifecycle() {
        let (grid, _cred, proxy) = setup();
        let h = grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 30.0, GramService::Batch))
            .unwrap();
        assert_eq!(
            grid.gram_status("kraken", &proxy, &h).unwrap(),
            GramState::Active
        );
        grid.advance(SimDuration::from_minutes(15.0));
        assert_eq!(
            grid.gram_status("kraken", &proxy, &h).unwrap(),
            GramState::Active
        );
        grid.advance(SimDuration::from_minutes(20.0));
        assert_eq!(
            grid.gram_status("kraken", &proxy, &h).unwrap(),
            GramState::Done
        );
        let times = grid.job_times("kraken", &h).unwrap();
        assert_eq!(times.run().unwrap().as_minutes(), 30.0);
        assert_eq!(times.wait().unwrap(), SimDuration::ZERO);
        assert!(grid.site("kraken").unwrap().fs.exists("scratch/a/done.txt"));
    }

    #[test]
    fn fork_job_runs_despite_busy_queue() {
        let (grid, _cred, proxy) = setup();
        // saturate the machine
        let mut big = sleep_spec("big", 60.0, GramService::Batch);
        big.cores = kraken().cores;
        grid.gram_submit("kraken", &proxy, big).unwrap();
        let mut fork = sleep_spec("pre", 0.5, GramService::Fork);
        fork.cores = 0;
        let h = grid.gram_submit("kraken", &proxy, fork).unwrap();
        grid.advance(SimDuration::from_minutes(2.0));
        assert_eq!(
            grid.gram_status("kraken", &proxy, &h).unwrap(),
            GramState::Done
        );
    }

    #[test]
    fn gridftp_staging_roundtrip() {
        let (grid, _cred, proxy) = setup();
        let stats = grid
            .ftp_put("kraken", &proxy, "scratch/in.txt", b"observables".to_vec())
            .unwrap();
        assert_eq!(stats.bytes, 11);
        assert!(stats.duration.as_secs() >= 2);
        let (data, _) = grid.ftp_get("kraken", &proxy, "scratch/in.txt").unwrap();
        assert_eq!(data, b"observables");
        assert!(matches!(
            grid.ftp_get("kraken", &proxy, "missing"),
            Err(GridError::NoSuchFile { .. })
        ));
        // directory listing
        grid.ftp_put("kraken", &proxy, "scratch/out.txt", vec![1])
            .unwrap();
        let listing = grid.ftp_list("kraken", &proxy, "scratch").unwrap();
        assert_eq!(listing.len(), 2);
        assert!(grid.ftp_list("kraken", &proxy, "empty").unwrap().is_empty());
        // listing is permission-gated like any GridFTP call
        let mallory = CommunityCredential::new("/CN=m");
        let fake = mallory.issue_proxy("m", grid.now(), SimDuration::from_hours(1.0));
        assert!(grid.ftp_list("kraken", &fake, "scratch").is_err());
    }

    #[test]
    fn outage_blocks_then_recovers() {
        let (mut grid, _cred, proxy) = setup();
        grid.faults
            .add_outage("kraken", Service::Gram, SimTime(0), SimTime(600));
        let err = grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 5.0, GramService::Batch))
            .unwrap_err();
        assert!(err.is_transient());
        // GridFTP unaffected by a GRAM-only outage
        assert!(grid.ftp_put("kraken", &proxy, "x", vec![1]).is_ok());
        grid.advance(SimDuration::from_secs(700));
        assert!(grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 5.0, GramService::Batch))
            .is_ok());
    }

    #[test]
    fn expired_or_foreign_proxy_rejected() {
        let (grid, cred, _) = setup();
        let short = cred.issue_proxy("astro1", SimTime(0), SimDuration::from_secs(10));
        grid.advance(SimDuration::from_secs(60));
        assert!(matches!(
            grid.gram_submit("kraken", &short, sleep_spec("a", 5.0, GramService::Batch)),
            Err(GridError::CredentialExpired { .. })
        ));
        let mallory = CommunityCredential::new("/CN=mallory");
        let fake = mallory.issue_proxy("astro1", grid.now(), SimDuration::from_hours(1.0));
        assert!(matches!(
            grid.gram_submit("kraken", &fake, sleep_spec("a", 5.0, GramService::Batch)),
            Err(GridError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn unauthorized_site_rejected() {
        let (mut grid, cred, proxy) = setup();
        grid.add_site(lonestar());
        grid.install_app("lonestar", "sleep", Arc::new(SleepApp));
        // community account not yet enabled on lonestar
        assert!(matches!(
            grid.gram_submit("lonestar", &proxy, sleep_spec("a", 5.0, GramService::Batch)),
            Err(GridError::NotAuthorized { .. })
        ));
        grid.authorize("lonestar", &cred);
        assert!(grid
            .gram_submit("lonestar", &proxy, sleep_spec("a", 5.0, GramService::Batch))
            .is_ok());
    }

    #[test]
    fn audit_attributes_every_call() {
        let (grid, cred, proxy) = setup();
        let proxy2 = cred.issue_proxy("astro2", grid.now(), SimDuration::from_hours(10.0));
        grid.gram_submit("kraken", &proxy, sleep_spec("a", 5.0, GramService::Batch))
            .unwrap();
        grid.ftp_put("kraken", &proxy2, "f", vec![0]).unwrap();
        assert!(grid.audit().fully_attributed());
        assert_eq!(grid.audit().by_user("astro1").count(), 1);
        assert_eq!(grid.audit().by_user("astro2").count(), 1);
    }

    #[test]
    fn dependencies_via_handles() {
        let (grid, _cred, proxy) = setup();
        let a = grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 10.0, GramService::Batch))
            .unwrap();
        let mut chained = sleep_spec("b", 10.0, GramService::Batch);
        chained.depends_on = vec![a.clone()];
        let b = grid.gram_submit("kraken", &proxy, chained).unwrap();
        // b pends until a completes even though cores are free
        assert_eq!(
            grid.gram_status("kraken", &proxy, &b).unwrap(),
            GramState::Pending
        );
        grid.advance(SimDuration::from_minutes(25.0));
        assert_eq!(
            grid.gram_status("kraken", &proxy, &b).unwrap(),
            GramState::Done
        );
        let ta = grid.job_times("kraken", &a).unwrap();
        let tb = grid.job_times("kraken", &b).unwrap();
        assert!(tb.started_at.unwrap() >= ta.ended_at.unwrap());
    }

    #[test]
    fn cross_site_dependency_rejected() {
        let (mut grid, cred, proxy) = setup();
        grid.add_site(lonestar());
        grid.authorize("lonestar", &cred);
        grid.install_app("lonestar", "sleep", Arc::new(SleepApp));
        let a = grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 5.0, GramService::Batch))
            .unwrap();
        let mut b = sleep_spec("b", 5.0, GramService::Batch);
        b.depends_on = vec![a];
        assert!(matches!(
            grid.gram_submit("lonestar", &proxy, b),
            Err(GridError::BadDependency(_))
        ));
    }

    #[test]
    fn background_load_creates_queue_wait() {
        let mut grid = Grid::new();
        let mut profile = lonestar();
        profile.background_utilization = 0.9;
        grid.add_site_with_background(profile, 2);
        grid.install_app("lonestar", "sleep", Arc::new(SleepApp));
        let cred = CommunityCredential::new("/CN=amp");
        grid.authorize("lonestar", &cred);
        let proxy = cred.issue_proxy("astro1", grid.now(), SimDuration::from_hours(10_000.0));
        // let the machine fill up
        grid.advance(SimDuration::from_hours(48.0));
        let util = grid.site("lonestar").unwrap().scheduler.utilization();
        assert!(util > 0.5, "utilization {util}");
        let mut spec = sleep_spec("ga", 60.0, GramService::Batch);
        spec.cores = 2048;
        let h = grid.gram_submit("lonestar", &proxy, spec).unwrap();
        grid.advance(SimDuration::from_hours(72.0));
        let times = grid.job_times("lonestar", &h).unwrap();
        assert_eq!(times.state, GramState::Done);
        assert!(
            times.wait().unwrap() > SimDuration::ZERO,
            "expected queue wait on an oversubscribed machine"
        );
    }

    #[test]
    fn submit_unknown_executable_rejected() {
        let (grid, _cred, proxy) = setup();
        let mut spec = sleep_spec("a", 5.0, GramService::Batch);
        spec.executable = "missing".into();
        assert!(matches!(
            grid.gram_submit("kraken", &proxy, spec),
            Err(GridError::NoSuchApplication { .. })
        ));
    }

    #[test]
    fn cancel_via_gram() {
        let (grid, _cred, proxy) = setup();
        let h = grid
            .gram_submit("kraken", &proxy, sleep_spec("a", 30.0, GramService::Batch))
            .unwrap();
        grid.advance(SimDuration::from_minutes(5.0));
        grid.gram_cancel("kraken", &proxy, &h).unwrap();
        assert!(matches!(
            grid.gram_status("kraken", &proxy, &h).unwrap(),
            GramState::Failed(_)
        ));
    }

    #[test]
    fn clock_advances_even_with_no_events() {
        let grid = Grid::new();
        grid.advance(SimDuration::from_hours(5.0));
        assert_eq!(grid.now().as_hours(), 5.0);
    }
}
