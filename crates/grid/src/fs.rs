//! Remote site scratch filesystem.
//!
//! Each simulated resource has a scratch tree where the pre-job script
//! builds the model runtime directory, GridFTP stages files in/out, and
//! the cleanup stage removes the execution environment (§4.3). A byte
//! quota models the "small disk space available on Lonestar" (§2).

use crate::error::GridError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An in-memory file tree keyed by absolute-ish string paths
/// (`scratch/sim42/run1/input.txt`). Directories are implicit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteFs {
    site: String,
    files: BTreeMap<String, Vec<u8>>,
    quota_bytes: u64,
}

impl SiteFs {
    pub fn new(site: &str, quota_bytes: u64) -> Self {
        SiteFs {
            site: site.to_string(),
            files: BTreeMap::new(),
            quota_bytes,
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.files.values().map(|v| v.len() as u64).sum()
    }

    pub fn free_bytes(&self) -> u64 {
        self.quota_bytes.saturating_sub(self.used_bytes())
    }

    /// Write (or overwrite) a file, enforcing the quota.
    pub fn write(&mut self, path: &str, data: Vec<u8>) -> Result<(), GridError> {
        let existing = self.files.get(path).map(|v| v.len() as u64).unwrap_or(0);
        let needed = data.len() as u64;
        if self.used_bytes() - existing + needed > self.quota_bytes {
            return Err(GridError::DiskQuotaExceeded {
                site: self.site.clone(),
                need: needed,
                free: self.free_bytes() + existing,
            });
        }
        self.files.insert(normalize(path), data);
        Ok(())
    }

    pub fn read(&self, path: &str) -> Result<&[u8], GridError> {
        self.files
            .get(&normalize(path))
            .map(|v| v.as_slice())
            .ok_or_else(|| GridError::NoSuchFile {
                site: self.site.clone(),
                path: path.to_string(),
            })
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(&normalize(path))
    }

    pub fn remove(&mut self, path: &str) -> Result<(), GridError> {
        self.files
            .remove(&normalize(path))
            .map(|_| ())
            .ok_or_else(|| GridError::NoSuchFile {
                site: self.site.clone(),
                path: path.to_string(),
            })
    }

    /// Remove every file under a prefix (the cleanup stage's `rm -rf`).
    /// Returns how many files were removed.
    pub fn remove_tree(&mut self, prefix: &str) -> usize {
        let prefix = dir_prefix(prefix);
        let doomed: Vec<String> = self
            .files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &doomed {
            self.files.remove(k);
        }
        doomed.len()
    }

    /// Paths under a prefix (the post-job `tar` collecting outputs).
    pub fn list_tree(&self, prefix: &str) -> Vec<String> {
        let prefix = dir_prefix(prefix);
        self.files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect()
    }

    /// Bundle a tree into a single file (the post-job stage "uses tar to
    /// consolidate output and log files into a single file", §4.3).
    /// Format: simple length-prefixed concatenation, JSON-encoded.
    pub fn tar_tree(&mut self, prefix: &str, dest: &str) -> Result<usize, GridError> {
        let paths = self.list_tree(prefix);
        let mut entries: Vec<(String, Vec<u8>)> = Vec::with_capacity(paths.len());
        for p in &paths {
            entries.push((p.clone(), self.files[p].clone()));
        }
        let n = entries.len();
        let data = serde_json::to_vec(&entries)
            .map_err(|e| GridError::BadJobSpec(format!("tar encode: {e}")))?;
        self.write(dest, data)?;
        Ok(n)
    }

    /// Unpack a tar file produced by [`SiteFs::tar_tree`] into entries.
    pub fn untar(data: &[u8]) -> Result<Vec<(String, Vec<u8>)>, GridError> {
        serde_json::from_slice(data).map_err(|e| GridError::BadJobSpec(format!("tar decode: {e}")))
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_string()
}

fn dir_prefix(prefix: &str) -> String {
    let p = prefix.trim_matches('/');
    if p.is_empty() {
        String::new()
    } else {
        format!("{p}/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SiteFs {
        SiteFs::new("kraken", 1000)
    }

    #[test]
    fn write_read_remove() {
        let mut f = fs();
        f.write("a/b.txt", b"hello".to_vec()).unwrap();
        assert_eq!(f.read("a/b.txt").unwrap(), b"hello");
        assert_eq!(f.read("/a/b.txt").unwrap(), b"hello");
        assert!(f.exists("a/b.txt"));
        f.remove("a/b.txt").unwrap();
        assert!(!f.exists("a/b.txt"));
        assert!(matches!(
            f.read("a/b.txt"),
            Err(GridError::NoSuchFile { .. })
        ));
    }

    #[test]
    fn quota_enforced_and_overwrite_reuses_space() {
        let mut f = fs();
        f.write("big", vec![0u8; 900]).unwrap();
        assert!(matches!(
            f.write("more", vec![0u8; 200]),
            Err(GridError::DiskQuotaExceeded { .. })
        ));
        // overwriting the same file within quota is fine
        f.write("big", vec![0u8; 950]).unwrap();
        assert_eq!(f.used_bytes(), 950);
        assert_eq!(f.free_bytes(), 50);
    }

    #[test]
    fn tree_operations() {
        let mut f = fs();
        f.write("run1/in.txt", b"x".to_vec()).unwrap();
        f.write("run1/out/a.log", b"y".to_vec()).unwrap();
        f.write("run2/in.txt", b"z".to_vec()).unwrap();
        assert_eq!(f.list_tree("run1").len(), 2);
        assert_eq!(f.remove_tree("run1"), 2);
        assert_eq!(f.file_count(), 1);
        // prefix matching is path-component safe
        f.write("run22/in.txt", b"w".to_vec()).unwrap();
        assert_eq!(f.list_tree("run2").len(), 1);
    }

    #[test]
    fn tar_roundtrip() {
        let mut f = SiteFs::new("kraken", 10_000);
        f.write("run/out.dat", b"result".to_vec()).unwrap();
        f.write("run/model.log", b"log".to_vec()).unwrap();
        let n = f.tar_tree("run", "results.tar").unwrap();
        assert_eq!(n, 2);
        let entries = SiteFs::untar(f.read("results.tar").unwrap()).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .any(|(p, d)| p == "run/out.dat" && d == b"result"));
    }

    #[test]
    fn untar_rejects_garbage() {
        assert!(SiteFs::untar(b"definitely not json").is_err());
    }
}
