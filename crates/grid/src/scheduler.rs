//! Per-system batch scheduler: FCFS queue with EASY backfill, walltime
//! enforcement, job dependencies, and synthetic background load.
//!
//! This is the queue AMP jobs wait in (§6 studies exactly that wait), with
//! the job-chaining/dependency support many TeraGrid schedulers offered.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::app::{AppRegistry, AppRun};
use crate::error::GridError;
use crate::fs::SiteFs;
use crate::systems::SystemProfile;
use crate::time::{SimDuration, SimTime};

/// How a finished job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    Success,
    /// The application exited non-zero.
    AppFailure(String),
    /// Killed at the walltime limit; only checkpoint outputs survive.
    WalltimeExceeded,
}

/// Lifecycle state of a batch job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// In the queue (possibly blocked on dependencies).
    Waiting,
    Running {
        started_at: SimTime,
        ends_at: SimTime,
    },
    Done {
        started_at: SimTime,
        ended_at: SimTime,
        outcome: JobOutcome,
    },
    Cancelled {
        reason: String,
    },
}

/// What a job runs.
#[derive(Debug, Clone)]
pub enum Payload {
    /// An installed application (GRAM batch/fork job).
    App {
        executable: String,
        args: Vec<String>,
        workdir: String,
    },
    /// Synthetic competing load from other TeraGrid users.
    Background { duration: SimDuration },
}

/// A job submission request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    pub name: String,
    pub cores: u32,
    pub walltime: SimDuration,
    /// Job ids that must complete successfully first (job chaining, §6).
    pub deps: Vec<u64>,
    pub payload: Payload,
}

/// A scheduled job.
#[derive(Debug, Clone)]
pub struct BatchJob {
    pub id: u64,
    pub name: String,
    pub cores: u32,
    pub walltime: SimDuration,
    pub deps: Vec<u64>,
    pub submitted_at: SimTime,
    pub payload: Payload,
    pub state: JobState,
    /// Staged application results applied at completion time.
    pending: Option<PendingRun>,
    /// True for synthetic load (excluded from user-facing stats).
    pub background: bool,
}

#[derive(Debug, Clone)]
struct PendingRun {
    run: AppRun,
    overran: bool,
}

impl BatchJob {
    /// Queue wait so far / total (for the §6 Gantt tool).
    pub fn wait_time(&self, now: SimTime) -> SimDuration {
        match &self.state {
            JobState::Waiting => now - self.submitted_at,
            JobState::Running { started_at, .. } => *started_at - self.submitted_at,
            JobState::Done { started_at, .. } => *started_at - self.submitted_at,
            JobState::Cancelled { .. } => SimDuration::ZERO,
        }
    }

    pub fn run_time(&self) -> Option<SimDuration> {
        match &self.state {
            JobState::Done {
                started_at,
                ended_at,
                ..
            } => Some(*ended_at - *started_at),
            _ => None,
        }
    }
}

/// Synthetic background workload generator: Poisson arrivals sized so the
/// long-run utilization from other users approximates the profile's
/// `background_utilization`.
#[derive(Debug, Clone)]
pub struct BackgroundLoad {
    rng: ChaCha8Rng,
    utilization: f64,
    cores_total: u32,
}

impl BackgroundLoad {
    pub fn new(profile: &SystemProfile, seed: u64) -> Self {
        BackgroundLoad {
            rng: ChaCha8Rng::seed_from_u64(seed),
            utilization: profile.background_utilization,
            cores_total: profile.cores,
        }
    }

    /// Mean interarrival time given the mean bg-job footprint.
    fn mean_interarrival_secs(&self) -> f64 {
        // jobs average ~6.5% of the machine for ~4.5 hours
        let mean_cores = 0.065 * self.cores_total as f64;
        let mean_dur_secs = 4.5 * 3600.0;
        (mean_cores * mean_dur_secs) / (self.utilization.max(1e-3) * self.cores_total as f64)
    }

    /// Draw (delay until next arrival, request). Deterministic per seed.
    pub fn next_arrival(&mut self) -> (SimDuration, JobRequest) {
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let delay = -u.ln() * self.mean_interarrival_secs();
        let frac: f64 = self.rng.random_range(0.01..0.12);
        let cores = ((self.cores_total as f64 * frac) as u32).max(1);
        let hours: f64 = self.rng.random_range(1.0..8.0);
        let duration = SimDuration::from_hours(hours);
        (
            SimDuration::from_secs(delay.max(1.0) as u64),
            JobRequest {
                name: "bg".into(),
                cores,
                walltime: duration + SimDuration::from_minutes(10.0),
                deps: Vec::new(),
                payload: Payload::Background { duration },
            },
        )
    }
}

/// The per-site scheduler.
pub struct Scheduler {
    profile: SystemProfile,
    jobs: std::collections::BTreeMap<u64, BatchJob>,
    /// Waiting job ids in submission (FCFS) order.
    queue: Vec<u64>,
    free_cores: u32,
    next_id: u64,
}

impl Scheduler {
    pub fn new(profile: SystemProfile) -> Self {
        let free = profile.cores;
        Scheduler {
            profile,
            jobs: Default::default(),
            queue: Vec::new(),
            free_cores: free,
            next_id: 1,
        }
    }

    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    pub fn job(&self, id: u64) -> Option<&BatchJob> {
        self.jobs.get(&id)
    }

    pub fn jobs(&self) -> impl Iterator<Item = &BatchJob> {
        self.jobs.values()
    }

    pub fn free_cores(&self) -> u32 {
        self.free_cores
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Validate and enqueue. Returns the job id. Jobs do not start here —
    /// call [`Scheduler::schedule_pass`] afterwards.
    pub fn submit(
        &mut self,
        req: JobRequest,
        now: SimTime,
        mark_background: bool,
    ) -> Result<u64, GridError> {
        if req.cores > self.profile.cores {
            return Err(GridError::BadJobSpec(format!(
                "{} cores requested, machine has {}",
                req.cores, self.profile.cores
            )));
        }
        if req.walltime > self.profile.walltime_limit() {
            return Err(GridError::BadJobSpec(format!(
                "walltime {} exceeds limit {}",
                req.walltime,
                self.profile.walltime_limit()
            )));
        }
        if !req.deps.is_empty() && !self.profile.supports_job_chaining {
            return Err(GridError::BadDependency(format!(
                "{} does not support job chaining",
                self.profile.name
            )));
        }
        for d in &req.deps {
            match self.jobs.get(d) {
                None => return Err(GridError::BadDependency(format!("no job {d}"))),
                Some(j) => {
                    if matches!(
                        j.state,
                        JobState::Cancelled { .. }
                            | JobState::Done {
                                outcome: JobOutcome::AppFailure(_) | JobOutcome::WalltimeExceeded,
                                ..
                            }
                    ) {
                        return Err(GridError::BadDependency(format!("job {d} already failed")));
                    }
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            BatchJob {
                id,
                name: req.name,
                cores: req.cores,
                walltime: req.walltime,
                deps: req.deps,
                submitted_at: now,
                payload: req.payload,
                state: JobState::Waiting,
                pending: None,
                background: mark_background,
            },
        );
        self.queue.push(id);
        Ok(id)
    }

    pub fn cancel(&mut self, id: u64, reason: &str) -> Result<(), GridError> {
        let job = self
            .jobs
            .get_mut(&id)
            .ok_or_else(|| GridError::NoSuchJob(id.to_string()))?;
        match &job.state {
            JobState::Waiting => {
                job.state = JobState::Cancelled {
                    reason: reason.to_string(),
                };
                self.queue.retain(|&q| q != id);
                Ok(())
            }
            JobState::Running { .. } => {
                // Running jobs are killed: cores freed, outputs dropped.
                let cores = job.cores;
                job.state = JobState::Cancelled {
                    reason: reason.to_string(),
                };
                job.pending = None;
                self.free_cores += cores;
                Ok(())
            }
            s => Err(GridError::InvalidState {
                job: id.to_string(),
                state: format!("{s:?}"),
            }),
        }
    }

    /// Dependency status of a queued job: Ok(true) = runnable now,
    /// Ok(false) = still waiting, Err(dep) = a dependency failed.
    fn deps_status(&self, job: &BatchJob) -> Result<bool, u64> {
        for d in &job.deps {
            match self.jobs.get(d).map(|j| &j.state) {
                Some(JobState::Done {
                    outcome: JobOutcome::Success,
                    ..
                }) => {}
                Some(JobState::Done { .. }) | Some(JobState::Cancelled { .. }) | None => {
                    return Err(*d)
                }
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Start a job now: execute its payload against the filesystem snapshot
    /// and compute its end time. Returns the finish time.
    fn start_job(&mut self, id: u64, now: SimTime, fs: &SiteFs, apps: &AppRegistry) -> SimTime {
        let job = self.jobs.get_mut(&id).expect("job exists");
        debug_assert!(matches!(job.state, JobState::Waiting));
        let (duration, pending) = match &job.payload {
            Payload::Background { duration } => ((*duration).min(job.walltime), None),
            Payload::App {
                executable,
                args,
                workdir,
            } => match apps.get(executable) {
                None => (
                    SimDuration::ZERO,
                    Some(PendingRun {
                        run: AppRun::failed(0.0, &format!("{executable}: not found")),
                        overran: false,
                    }),
                ),
                Some(app) => {
                    let ctx = crate::app::AppContext {
                        workdir: workdir.clone(),
                        args: args.clone(),
                        profile: &self.profile,
                        cores: job.cores,
                        wall_minutes: job.walltime.as_minutes(),
                        started_at: now,
                        fs,
                    };
                    let run = app.run(&ctx);
                    let cost = SimDuration::from_minutes(run.cost_minutes);
                    let overran = cost > job.walltime;
                    (cost.min(job.walltime), Some(PendingRun { run, overran }))
                }
            },
        };
        let ends_at = now + duration;
        job.state = JobState::Running {
            started_at: now,
            ends_at,
        };
        job.pending = pending;
        self.free_cores -= job.cores;
        ends_at
    }

    /// FCFS + EASY-backfill scheduling pass. Returns (finish_time, job_id)
    /// pairs for newly started jobs; the caller schedules those events.
    pub fn schedule_pass(
        &mut self,
        now: SimTime,
        fs: &mut SiteFs,
        apps: &AppRegistry,
    ) -> Vec<(SimTime, u64)> {
        let mut started = Vec::new();
        // Cancel queued jobs whose dependencies failed.
        let queue_snapshot = self.queue.clone();
        for id in queue_snapshot {
            let job = &self.jobs[&id];
            if let Err(dep) = self.deps_status(job) {
                let _ = self.cancel(id, &format!("dependency {dep} failed"));
            }
        }

        // Phase 1: start eligible jobs FCFS until the head doesn't fit.
        let mut head_blocked: Option<u64> = None;
        loop {
            let candidate = self
                .queue
                .iter()
                .copied()
                .find(|id| self.deps_status(&self.jobs[id]) == Ok(true));
            let Some(id) = candidate else { break };
            let cores = self.jobs[&id].cores;
            if cores <= self.free_cores {
                self.queue.retain(|&q| q != id);
                let ends = self.start_job(id, now, fs, apps);
                started.push((ends, id));
            } else {
                head_blocked = Some(id);
                break;
            }
        }

        // Phase 2: EASY backfill behind the blocked head.
        if let Some(head) = head_blocked {
            let head_cores = self.jobs[&head].cores;
            // When will enough cores be free for the head?
            let mut releases: Vec<(SimTime, u32)> = self
                .jobs
                .values()
                .filter_map(|j| match j.state {
                    JobState::Running { ends_at, .. } => Some((ends_at, j.cores)),
                    _ => None,
                })
                .collect();
            releases.sort();
            let mut avail = self.free_cores;
            let mut shadow = now;
            let mut reserve_extra = 0u32;
            for (t, c) in releases {
                avail += c;
                if avail >= head_cores {
                    shadow = t;
                    reserve_extra = avail - head_cores;
                    break;
                }
            }
            // Backfill candidates: eligible, fit now, and either finish by
            // the shadow time or use only cores the head won't need.
            let candidates: Vec<u64> = self
                .queue
                .iter()
                .copied()
                .filter(|&id| id != head)
                .collect();
            for id in candidates {
                let job = &self.jobs[&id];
                if self.deps_status(job) != Ok(true) {
                    continue;
                }
                let fits_now = job.cores <= self.free_cores;
                let by_shadow = now + job.walltime <= shadow;
                let spare = job.cores <= reserve_extra.min(self.free_cores);
                if fits_now && (by_shadow || spare) {
                    if spare && !by_shadow {
                        reserve_extra -= job.cores;
                    }
                    self.queue.retain(|&q| q != id);
                    let ends = self.start_job(id, now, fs, apps);
                    started.push((ends, id));
                }
            }
        }
        started
    }

    /// Complete a running job whose end time has arrived: apply outputs,
    /// free cores. Does *not* run a scheduling pass (callers do, so events
    /// from the pass can be scheduled).
    pub fn finish_job(&mut self, id: u64, now: SimTime, fs: &mut SiteFs) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        let JobState::Running {
            started_at,
            ends_at,
        } = job.state
        else {
            return; // cancelled while running: nothing to do
        };
        debug_assert!(ends_at <= now);
        let outcome = match job.pending.take() {
            None => JobOutcome::Success, // background job
            Some(PendingRun { run, overran }) => {
                let workdir = match &job.payload {
                    Payload::App { workdir, .. } => workdir.clone(),
                    _ => String::new(),
                };
                let mut write_err = None;
                // checkpoint outputs always land (staged as the app went)
                for (name, data) in &run.checkpoint_outputs {
                    if let Err(e) = fs.write(&format!("{workdir}/{name}"), data.clone()) {
                        write_err = Some(e.to_string());
                    }
                }
                if overran {
                    JobOutcome::WalltimeExceeded
                } else {
                    for (name, data) in &run.outputs {
                        if let Err(e) = fs.write(&format!("{workdir}/{name}"), data.clone()) {
                            write_err = Some(e.to_string());
                        }
                    }
                    match (run.failure, write_err) {
                        (Some(f), _) => JobOutcome::AppFailure(f),
                        (None, Some(w)) => JobOutcome::AppFailure(format!("output write: {w}")),
                        (None, None) => JobOutcome::Success,
                    }
                }
            }
        };
        let cores = job.cores;
        job.state = JobState::Done {
            started_at,
            ended_at: now,
            outcome,
        };
        self.free_cores += cores;
    }

    /// Aggregate utilization snapshot (cores busy / total).
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_cores as f64 / self.profile.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SleepApp;
    use crate::systems::SystemProfile;
    use std::sync::Arc;

    fn tiny_profile(cores: u32) -> SystemProfile {
        SystemProfile {
            name: "tiny".into(),
            provider: "TEST".into(),
            cores,
            model_benchmark_minutes: 10.0,
            su_per_cpuh: 1.0,
            walltime_limit_hours: 6.0,
            has_ws_gram: true,
            scratch_quota_bytes: 1 << 20,
            supports_job_chaining: true,
            background_utilization: 0.5,
        }
    }

    fn setup(cores: u32) -> (Scheduler, SiteFs, AppRegistry) {
        let mut apps = AppRegistry::new();
        apps.install("sleep", Arc::new(SleepApp));
        (
            Scheduler::new(tiny_profile(cores)),
            SiteFs::new("tiny", 1 << 20),
            apps,
        )
    }

    fn sleep_req(name: &str, cores: u32, minutes: f64, deps: Vec<u64>) -> JobRequest {
        JobRequest {
            name: name.into(),
            cores,
            walltime: SimDuration::from_minutes(minutes + 5.0),
            deps,
            payload: Payload::App {
                executable: "sleep".into(),
                args: vec![minutes.to_string()],
                workdir: format!("scratch/{name}"),
            },
        }
    }

    /// Drive the scheduler to completion, processing finish events in
    /// order. Returns the final simulated time.
    fn drain(s: &mut Scheduler, fs: &mut SiteFs, apps: &AppRegistry, start: SimTime) -> SimTime {
        let mut events: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>> =
            Default::default();
        let mut now = start;
        for e in s.schedule_pass(now, fs, apps) {
            events.push(std::cmp::Reverse(e));
        }
        while let Some(std::cmp::Reverse((t, id))) = events.pop() {
            now = t;
            s.finish_job(id, now, fs);
            for e in s.schedule_pass(now, fs, apps) {
                events.push(std::cmp::Reverse(e));
            }
        }
        now
    }

    #[test]
    fn fcfs_execution_and_outputs() {
        let (mut s, mut fs, apps) = setup(4);
        let a = s
            .submit(sleep_req("a", 4, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        let b = s
            .submit(sleep_req("b", 4, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        let end = drain(&mut s, &mut fs, &apps, SimTime(0));
        // b waits for a: total 20 min + margin
        assert_eq!(end.as_minutes(), 20.0);
        for id in [a, b] {
            match &s.job(id).unwrap().state {
                JobState::Done { outcome, .. } => assert_eq!(*outcome, JobOutcome::Success),
                st => panic!("{st:?}"),
            }
        }
        assert!(fs.exists("scratch/a/done.txt"));
        assert!(fs.exists("scratch/b/done.txt"));
        assert_eq!(s.job(b).unwrap().wait_time(end).as_minutes(), 10.0);
    }

    #[test]
    fn parallel_when_cores_fit() {
        let (mut s, mut fs, apps) = setup(8);
        s.submit(sleep_req("a", 4, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        s.submit(sleep_req("b", 4, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        let end = drain(&mut s, &mut fs, &apps, SimTime(0));
        assert_eq!(end.as_minutes(), 10.0);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        let (mut s, mut fs, apps) = setup(8);
        // long job takes 6 cores; head needs 8 (blocked); small 2-core job
        // can backfill into the 2 spare cores if it fits before the shadow.
        s.submit(sleep_req("long", 6, 60.0, vec![]), SimTime(0), false)
            .unwrap();
        let head = s
            .submit(sleep_req("head", 8, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        let bf = s
            .submit(sleep_req("bf", 2, 20.0, vec![]), SimTime(0), false)
            .unwrap();
        drain(&mut s, &mut fs, &apps, SimTime(0));
        let bf_job = s.job(bf).unwrap();
        let head_job = s.job(head).unwrap();
        let (JobState::Done { started_at: bs, .. }, JobState::Done { started_at: hs, .. }) =
            (&bf_job.state, &head_job.state)
        else {
            panic!()
        };
        assert_eq!(bs.as_minutes(), 0.0, "backfill started immediately");
        // head starts when the long job releases cores
        assert_eq!(hs.as_minutes(), 60.0);
    }

    #[test]
    fn backfill_never_delays_head() {
        let (mut s, mut fs, apps) = setup(8);
        s.submit(sleep_req("long", 6, 30.0, vec![]), SimTime(0), false)
            .unwrap();
        let head = s
            .submit(sleep_req("head", 8, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        // this wants 4 cores for 60 min: would delay head past its shadow
        // (30 min) and needs more than the 2 spare cores -> must not backfill
        let greedy = s
            .submit(sleep_req("greedy", 4, 60.0, vec![]), SimTime(0), false)
            .unwrap();
        drain(&mut s, &mut fs, &apps, SimTime(0));
        let (JobState::Done { started_at: hs, .. }, JobState::Done { started_at: gs, .. }) =
            (&s.job(head).unwrap().state, &s.job(greedy).unwrap().state)
        else {
            panic!()
        };
        assert_eq!(hs.as_minutes(), 30.0, "head undelayed");
        assert!(gs.as_minutes() >= 40.0, "greedy ran after head");
    }

    #[test]
    fn dependencies_gate_and_cascade_on_failure() {
        let (mut s, mut fs, apps) = setup(8);
        let a = s
            .submit(sleep_req("a", 2, 10.0, vec![]), SimTime(0), false)
            .unwrap();
        let b = s
            .submit(sleep_req("b", 2, 10.0, vec![a]), SimTime(0), false)
            .unwrap();
        // c depends on a failing job
        let mut fail_req = sleep_req("f", 2, 5.0, vec![]);
        if let Payload::App { args, .. } = &mut fail_req.payload {
            args.push("fail".into());
        }
        let f = s.submit(fail_req, SimTime(0), false).unwrap();
        let c = s
            .submit(sleep_req("c", 2, 5.0, vec![f]), SimTime(0), false)
            .unwrap();
        let end = drain(&mut s, &mut fs, &apps, SimTime(0));
        // b ran strictly after a
        let (JobState::Done { ended_at: ae, .. }, JobState::Done { started_at: bs, .. }) =
            (&s.job(a).unwrap().state, &s.job(b).unwrap().state)
        else {
            panic!()
        };
        assert!(bs >= ae);
        // c cancelled because f failed
        assert!(matches!(
            s.job(c).unwrap().state,
            JobState::Cancelled { .. }
        ));
        assert!(matches!(
            s.job(f).unwrap().state,
            JobState::Done {
                outcome: JobOutcome::AppFailure(_),
                ..
            }
        ));
        assert!(end.as_minutes() >= 20.0);
    }

    #[test]
    fn dependency_validation_at_submit() {
        let (mut s, _fs, _apps) = setup(8);
        assert!(matches!(
            s.submit(sleep_req("x", 2, 5.0, vec![99]), SimTime(0), false),
            Err(GridError::BadDependency(_))
        ));
        let mut p = tiny_profile(8);
        p.supports_job_chaining = false;
        let mut s2 = Scheduler::new(p);
        let a = s2
            .submit(sleep_req("a", 2, 5.0, vec![]), SimTime(0), false)
            .unwrap();
        assert!(matches!(
            s2.submit(sleep_req("b", 2, 5.0, vec![a]), SimTime(0), false),
            Err(GridError::BadDependency(_))
        ));
    }

    #[test]
    fn walltime_kill_preserves_only_checkpoints() {
        let (mut s, mut fs, apps) = setup(4);
        let mut req = sleep_req("w", 4, 600.0, vec![]);
        req.walltime = SimDuration::from_minutes(30.0);
        if let Payload::App { args, .. } = &mut req.payload {
            args.push("overrun".into());
        }
        let id = s.submit(req, SimTime(0), false).unwrap();
        let end = drain(&mut s, &mut fs, &apps, SimTime(0));
        assert_eq!(end.as_minutes(), 30.0);
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Done {
                outcome: JobOutcome::WalltimeExceeded,
                ..
            }
        ));
        assert!(!fs.exists("scratch/w/done.txt"), "full output dropped");
        assert!(fs.exists("scratch/w/progress.txt"), "checkpoint kept");
    }

    #[test]
    fn submit_validation() {
        let (mut s, _fs, _apps) = setup(4);
        assert!(matches!(
            s.submit(sleep_req("big", 5, 5.0, vec![]), SimTime(0), false),
            Err(GridError::BadJobSpec(_))
        ));
        let mut req = sleep_req("longwall", 2, 5.0, vec![]);
        req.walltime = SimDuration::from_hours(7.0);
        assert!(matches!(
            s.submit(req, SimTime(0), false),
            Err(GridError::BadJobSpec(_))
        ));
    }

    #[test]
    fn cancel_waiting_and_running() {
        let (mut s, mut fs, apps) = setup(4);
        let a = s
            .submit(sleep_req("a", 4, 30.0, vec![]), SimTime(0), false)
            .unwrap();
        let b = s
            .submit(sleep_req("b", 4, 30.0, vec![]), SimTime(0), false)
            .unwrap();
        s.schedule_pass(SimTime(0), &mut fs, &apps);
        // a running, b waiting
        s.cancel(b, "user request").unwrap();
        assert!(matches!(
            s.job(b).unwrap().state,
            JobState::Cancelled { .. }
        ));
        s.cancel(a, "admin").unwrap();
        assert!(matches!(
            s.job(a).unwrap().state,
            JobState::Cancelled { .. }
        ));
        assert_eq!(s.free_cores(), 4);
        // double cancel is an error
        assert!(s.cancel(a, "again").is_err());
    }

    #[test]
    fn missing_executable_fails_fast() {
        let (mut s, mut fs, apps) = setup(4);
        let mut req = sleep_req("x", 1, 5.0, vec![]);
        if let Payload::App { executable, .. } = &mut req.payload {
            *executable = "nope".into();
        }
        let id = s.submit(req, SimTime(0), false).unwrap();
        drain(&mut s, &mut fs, &apps, SimTime(0));
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Done {
                outcome: JobOutcome::AppFailure(_),
                ..
            }
        ));
    }

    #[test]
    fn cancelled_dependency_cancels_children() {
        let (mut s, mut fs, apps) = setup(8);
        let a = s
            .submit(sleep_req("a", 8, 60.0, vec![]), SimTime(0), false)
            .unwrap();
        let b = s
            .submit(sleep_req("b", 2, 5.0, vec![a]), SimTime(0), false)
            .unwrap();
        let c = s
            .submit(sleep_req("c", 2, 5.0, vec![b]), SimTime(0), false)
            .unwrap();
        s.schedule_pass(SimTime(0), &mut fs, &apps);
        s.cancel(a, "admin kill").unwrap();
        // the next pass propagates the cancellation down the chain
        s.schedule_pass(SimTime(10), &mut fs, &apps);
        assert!(matches!(
            s.job(b).unwrap().state,
            JobState::Cancelled { .. }
        ));
        s.schedule_pass(SimTime(20), &mut fs, &apps);
        assert!(matches!(
            s.job(c).unwrap().state,
            JobState::Cancelled { .. }
        ));
        assert_eq!(s.free_cores(), 8);
    }

    #[test]
    fn job_exactly_filling_walltime_succeeds() {
        let (mut s, mut fs, apps) = setup(4);
        let mut req = sleep_req("edge", 4, 30.0, vec![]);
        req.walltime = SimDuration::from_minutes(30.0); // cost == walltime
        let id = s.submit(req, SimTime(0), false).unwrap();
        drain(&mut s, &mut fs, &apps, SimTime(0));
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Done {
                outcome: JobOutcome::Success,
                ..
            }
        ));
    }

    #[test]
    fn zero_core_job_never_blocks_on_capacity() {
        let (mut s, mut fs, apps) = setup(4);
        // saturate
        s.submit(sleep_req("big", 4, 60.0, vec![]), SimTime(0), false)
            .unwrap();
        let mut fork = sleep_req("fork", 0, 1.0, vec![]);
        fork.cores = 0;
        let f = s.submit(fork, SimTime(0), false).unwrap();
        s.schedule_pass(SimTime(0), &mut fs, &apps);
        assert!(matches!(s.job(f).unwrap().state, JobState::Running { .. }));
    }

    #[test]
    fn background_load_statistics() {
        let profile = tiny_profile(1000);
        let mut bg = BackgroundLoad::new(&profile, 42);
        let mut total_delay = 0u64;
        let mut total_coreh = 0.0;
        let n = 400;
        for _ in 0..n {
            let (delay, req) = bg.next_arrival();
            total_delay += delay.as_secs();
            let Payload::Background { duration } = req.payload else {
                panic!()
            };
            total_coreh += req.cores as f64 * duration.as_hours();
            assert!(req.cores >= 1 && req.cores <= 120);
        }
        // offered load ≈ utilization * capacity
        let hours = total_delay as f64 / 3600.0;
        let offered = total_coreh / (hours * 1000.0);
        assert!(
            (offered - 0.5).abs() < 0.12,
            "offered utilization {offered}"
        );
    }

    #[test]
    fn background_load_deterministic() {
        let profile = tiny_profile(1000);
        let mut a = BackgroundLoad::new(&profile, 7);
        let mut b = BackgroundLoad::new(&profile, 7);
        for _ in 0..10 {
            let (da, ra) = a.next_arrival();
            let (db, rb) = b.next_arrival();
            assert_eq!(da, db);
            assert_eq!(ra.cores, rb.cores);
        }
    }
}
