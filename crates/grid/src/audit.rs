//! GRAM/GridFTP audit log.
//!
//! TeraGrid requires gateways to attribute every grid request to a specific
//! gateway user (§3; the acknowledgments thank Stu Martin for "Globus GRAM
//! auditing"). Every client call the simulator accepts is recorded here
//! with the community subject *and* the SAML user attribute, so resource
//! providers can "disambiguate the real users acting behind community
//! credentials".

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One audited grid operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    pub time: SimTime,
    pub site: String,
    /// "GRAM" or "GridFTP".
    pub service: String,
    /// Community credential subject.
    pub subject: String,
    /// Gateway user from the GridShib SAML attribute.
    pub saml_user: String,
    /// e.g. "submit", "cancel", "put", "get".
    pub action: String,
    pub detail: String,
}

/// Append-only audit log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    pub fn record(&mut self, rec: AuditRecord) {
        self.records.push(rec);
    }

    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// All records attributable to a gateway user.
    pub fn by_user<'a>(&'a self, user: &'a str) -> impl Iterator<Item = &'a AuditRecord> {
        self.records.iter().filter(move |r| r.saml_user == user)
    }

    /// Every record must carry a non-empty SAML user — the end-to-end
    /// accounting invariant tests assert.
    pub fn fully_attributed(&self) -> bool {
        self.records.iter().all(|r| !r.saml_user.is_empty())
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: &str, action: &str) -> AuditRecord {
        AuditRecord {
            time: SimTime(1),
            site: "kraken".into(),
            service: "GRAM".into(),
            subject: "/CN=amp".into(),
            saml_user: user.into(),
            action: action.into(),
            detail: String::new(),
        }
    }

    #[test]
    fn filter_by_user() {
        let mut log = AuditLog::default();
        log.record(rec("alice", "submit"));
        log.record(rec("bob", "submit"));
        log.record(rec("alice", "cancel"));
        assert_eq!(log.by_user("alice").count(), 2);
        assert_eq!(log.by_user("carol").count(), 0);
        assert_eq!(log.len(), 3);
        assert!(log.fully_attributed());
    }

    #[test]
    fn attribution_invariant_detects_gaps() {
        let mut log = AuditLog::default();
        log.record(rec("", "submit"));
        assert!(!log.fully_attributed());
    }
}
