//! Fault injection: scheduled service outages.
//!
//! §4.4: "Anticipated transients, such as remote systems suddenly becoming
//! unreachable for GRAM or GridFTP requests, are handled silently" — to
//! exercise that machinery the simulator lets tests and benchmarks place
//! outage windows on either service of any site.

use crate::time::{SimDuration, SimTime};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which grid service an outage affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Service {
    Gram,
    GridFtp,
    Both,
}

impl Service {
    fn covers(self, other: Service) -> bool {
        self == Service::Both || self == other
    }
}

/// A half-open outage window `[from, to)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Site name, or "*" for all sites.
    pub site: String,
    pub service: Service,
    pub from: SimTime,
    pub to: SimTime,
}

/// The fault schedule consulted by every grid client call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: Vec<OutageWindow>,
}

impl FaultPlan {
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn add_outage(&mut self, site: &str, service: Service, from: SimTime, to: SimTime) {
        self.windows.push(OutageWindow {
            site: site.to_string(),
            service,
            from,
            to,
        });
    }

    /// Is `service` at `site` down at `now`?
    pub fn is_down(&self, site: &str, service: Service, now: SimTime) -> bool {
        self.windows.iter().any(|w| {
            (w.site == "*" || w.site == site)
                && w.service.covers(service)
                && now >= w.from
                && now < w.to
        })
    }

    /// Sprinkle `count` random outages of `dur` over `[0, horizon)` for a
    /// site — used by failure-injection tests and the resilience bench.
    pub fn add_random_outages(
        &mut self,
        site: &str,
        service: Service,
        count: usize,
        dur: SimDuration,
        horizon: SimTime,
        seed: u64,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..count {
            let from = SimTime(rng.random_range(0..horizon.as_secs().max(1)));
            self.add_outage(site, service, from, from + dur);
        }
    }

    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_boundaries_half_open() {
        let mut p = FaultPlan::none();
        p.add_outage("kraken", Service::Gram, SimTime(100), SimTime(200));
        assert!(!p.is_down("kraken", Service::Gram, SimTime(99)));
        assert!(p.is_down("kraken", Service::Gram, SimTime(100)));
        assert!(p.is_down("kraken", Service::Gram, SimTime(199)));
        assert!(!p.is_down("kraken", Service::Gram, SimTime(200)));
    }

    #[test]
    fn service_and_site_scoping() {
        let mut p = FaultPlan::none();
        p.add_outage("kraken", Service::Gram, SimTime(0), SimTime(10));
        assert!(!p.is_down("kraken", Service::GridFtp, SimTime(5)));
        assert!(!p.is_down("frost", Service::Gram, SimTime(5)));

        p.add_outage("*", Service::Both, SimTime(20), SimTime(30));
        assert!(p.is_down("frost", Service::Gram, SimTime(25)));
        assert!(p.is_down("ranger", Service::GridFtp, SimTime(25)));
    }

    #[test]
    fn random_outages_deterministic() {
        let mut a = FaultPlan::none();
        let mut b = FaultPlan::none();
        a.add_random_outages(
            "kraken",
            Service::Gram,
            5,
            SimDuration::from_minutes(30.0),
            SimTime(100_000),
            9,
        );
        b.add_random_outages(
            "kraken",
            Service::Gram,
            5,
            SimDuration::from_minutes(30.0),
            SimTime(100_000),
            9,
        );
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.windows().len(), 5);
    }
}
