//! Fault injection: scheduled service outages.
//!
//! §4.4: "Anticipated transients, such as remote systems suddenly becoming
//! unreachable for GRAM or GridFTP requests, are handled silently" — to
//! exercise that machinery the simulator lets tests and benchmarks place
//! outage windows on either service of any site.

use crate::time::{SimDuration, SimTime};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which grid service an outage affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Service {
    Gram,
    GridFtp,
    Both,
}

impl Service {
    fn covers(self, other: Service) -> bool {
        self == Service::Both || self == other
    }
}

/// A half-open outage window `[from, to)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Site name, or "*" for all sites.
    pub site: String,
    pub service: Service,
    pub from: SimTime,
    pub to: SimTime,
}

/// The fault schedule consulted by every grid client call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: Vec<OutageWindow>,
}

impl FaultPlan {
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn add_outage(&mut self, site: &str, service: Service, from: SimTime, to: SimTime) {
        self.windows.push(OutageWindow {
            site: site.to_string(),
            service,
            from,
            to,
        });
    }

    /// Is `service` at `site` down at `now`?
    pub fn is_down(&self, site: &str, service: Service, now: SimTime) -> bool {
        self.windows.iter().any(|w| {
            (w.site == "*" || w.site == site)
                && w.service.covers(service)
                && now >= w.from
                && now < w.to
        })
    }

    /// Sprinkle `count` random outages of `dur` over `[0, horizon)` for a
    /// site — used by failure-injection tests and the resilience bench.
    pub fn add_random_outages(
        &mut self,
        site: &str,
        service: Service,
        count: usize,
        dur: SimDuration,
        horizon: SimTime,
        seed: u64,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..count {
            let from = SimTime(rng.random_range(0..horizon.as_secs().max(1)));
            self.add_outage(site, service, from, from + dur);
        }
    }

    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }
}

/// A control-plane fault aimed at one daemon *process* rather than at a
/// grid service — the failure modes a multi-daemon deployment must ride
/// out without losing or double-driving a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonFault {
    /// Process dies and is restarted `down_ticks` harness rounds later
    /// (losing all in-memory state; its leases expire and peers take
    /// over).
    Kill { down_ticks: u32 },
    /// GC-style stop-the-world pause for `ticks` rounds: the process
    /// keeps its memory — including its now-stale belief that it owns
    /// leases — and resumes straight into the fencing guards.
    Pause { ticks: u32 },
    /// The daemon's clock drifts by `offset_secs` relative to the grid
    /// clock, so it mis-judges lease expiry in either direction.
    ClockSkew { offset_secs: i64 },
}

/// One scheduled daemon fault: at harness round `at_round`, daemon
/// number `daemon` suffers `fault`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonFaultEvent {
    pub at_round: u64,
    pub daemon: usize,
    pub fault: DaemonFault,
}

/// A deterministic, seedable schedule of daemon faults, consulted by the
/// chaos harness once per round. The analogue of [`FaultPlan`] one layer
/// up: `FaultPlan` breaks the grid under the daemons, `DaemonFaultPlan`
/// breaks the daemons themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonFaultPlan {
    events: Vec<DaemonFaultEvent>,
}

impl DaemonFaultPlan {
    pub fn none() -> Self {
        DaemonFaultPlan::default()
    }

    pub fn add(&mut self, at_round: u64, daemon: usize, fault: DaemonFault) {
        self.events.push(DaemonFaultEvent {
            at_round,
            daemon,
            fault,
        });
    }

    /// The faults scheduled for `round`, in insertion order.
    pub fn at_round(&self, round: u64) -> impl Iterator<Item = &DaemonFaultEvent> {
        self.events.iter().filter(move |e| e.at_round == round)
    }

    /// Sprinkle `count` random faults over `daemons` processes and
    /// `[0, rounds)` harness rounds — kills, pauses, and clock skews in
    /// roughly equal measure. Same seed, same schedule.
    pub fn add_random_faults(&mut self, daemons: usize, rounds: u64, count: usize, seed: u64) {
        assert!(daemons > 0 && rounds > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..count {
            let at_round = rng.random_range(0..rounds);
            let daemon = rng.random_range(0..daemons as u64) as usize;
            let fault = match rng.random_range(0..3u32) {
                0 => DaemonFault::Kill {
                    down_ticks: rng.random_range(1..6u32),
                },
                1 => DaemonFault::Pause {
                    ticks: rng.random_range(1..5u32),
                },
                _ => DaemonFault::ClockSkew {
                    offset_secs: rng.random_range(-900i64..900),
                },
            };
            self.add(at_round, daemon, fault);
        }
    }

    pub fn events(&self) -> &[DaemonFaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_boundaries_half_open() {
        let mut p = FaultPlan::none();
        p.add_outage("kraken", Service::Gram, SimTime(100), SimTime(200));
        assert!(!p.is_down("kraken", Service::Gram, SimTime(99)));
        assert!(p.is_down("kraken", Service::Gram, SimTime(100)));
        assert!(p.is_down("kraken", Service::Gram, SimTime(199)));
        assert!(!p.is_down("kraken", Service::Gram, SimTime(200)));
    }

    #[test]
    fn service_and_site_scoping() {
        let mut p = FaultPlan::none();
        p.add_outage("kraken", Service::Gram, SimTime(0), SimTime(10));
        assert!(!p.is_down("kraken", Service::GridFtp, SimTime(5)));
        assert!(!p.is_down("frost", Service::Gram, SimTime(5)));

        p.add_outage("*", Service::Both, SimTime(20), SimTime(30));
        assert!(p.is_down("frost", Service::Gram, SimTime(25)));
        assert!(p.is_down("ranger", Service::GridFtp, SimTime(25)));
    }

    #[test]
    fn daemon_fault_plan_is_deterministic_and_round_scoped() {
        let mut a = DaemonFaultPlan::none();
        let mut b = DaemonFaultPlan::none();
        a.add_random_faults(4, 50, 12, 7);
        b.add_random_faults(4, 50, 12, 7);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 12);
        // every event lands inside the declared ranges
        for e in a.events() {
            assert!(e.at_round < 50);
            assert!(e.daemon < 4);
            match e.fault {
                DaemonFault::Kill { down_ticks } => assert!((1..6).contains(&down_ticks)),
                DaemonFault::Pause { ticks } => assert!((1..5).contains(&ticks)),
                DaemonFault::ClockSkew { offset_secs } => {
                    assert!((-900..900).contains(&offset_secs))
                }
            }
        }
        // at_round returns exactly the events scheduled for that round
        let mut p = DaemonFaultPlan::none();
        p.add(3, 0, DaemonFault::Pause { ticks: 2 });
        p.add(5, 1, DaemonFault::Kill { down_ticks: 1 });
        p.add(3, 2, DaemonFault::ClockSkew { offset_secs: -60 });
        assert_eq!(p.at_round(3).count(), 2);
        assert_eq!(p.at_round(4).count(), 0);
        assert_eq!(
            p.at_round(5).next().unwrap().fault,
            DaemonFault::Kill { down_ticks: 1 }
        );
    }

    #[test]
    fn random_outages_deterministic() {
        let mut a = FaultPlan::none();
        let mut b = FaultPlan::none();
        a.add_random_outages(
            "kraken",
            Service::Gram,
            5,
            SimDuration::from_minutes(30.0),
            SimTime(100_000),
            9,
        );
        b.add_random_outages(
            "kraken",
            Service::Gram,
            5,
            SimDuration::from_minutes(30.0),
            SimTime(100_000),
            9,
        );
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.windows().len(), 5);
    }
}
