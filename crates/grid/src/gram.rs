//! GRAM job-submission types: the RSL-like job specification, contact
//! handles, and the status vocabulary the GridAMP daemon polls.
//!
//! AMP deliberately drives GRAM through thin command-line-style calls
//! (§4.4: "the GridAMP daemon directly formulates and submits GRAM
//! execution requests"); this module is the data vocabulary of those calls.

use crate::scheduler::{JobOutcome, JobState};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which GRAM job service to use (§4.3: setup/teardown scripts run via the
/// fork service; the model runs through the scheduler interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GramService {
    /// Immediate execution on the login node.
    Fork,
    /// Submission to the site batch scheduler.
    Batch,
}

/// A GRAM job description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GramJobSpec {
    pub service: GramService,
    /// Path of the installed executable on the remote site.
    pub executable: String,
    pub args: Vec<String>,
    /// Scratch working directory for the job.
    pub workdir: String,
    /// Processor cores (batch only; fork jobs run on the login node).
    pub cores: u32,
    pub walltime: SimDuration,
    /// Handles of jobs that must succeed first (scheduler job chaining,
    /// §6). Only honoured on systems that support it.
    pub depends_on: Vec<GramJobHandle>,
    /// Human-readable name for audit/Gantt output.
    pub name: String,
}

/// An opaque GRAM contact string, e.g.
/// `gram://kraken/jobmanager-pbs/42`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GramJobHandle(pub String);

impl GramJobHandle {
    pub fn new(site: &str, service: GramService, id: u64) -> Self {
        let mgr = match service {
            GramService::Fork => "jobmanager-fork",
            GramService::Batch => "jobmanager-pbs",
        };
        GramJobHandle(format!("gram://{site}/{mgr}/{id}"))
    }

    /// Parse `(site, local job id)` out of the contact string.
    pub fn parse(&self) -> Option<(String, u64)> {
        let rest = self.0.strip_prefix("gram://")?;
        let mut parts = rest.split('/');
        let site = parts.next()?.to_string();
        let _mgr = parts.next()?;
        let id = parts.next()?.parse().ok()?;
        Some((site, id))
    }
}

impl std::fmt::Display for GramJobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The GRAM status vocabulary the daemon's generic poll understands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GramState {
    /// Queued (or held on dependencies).
    Pending,
    Active,
    Done,
    Failed(String),
}

impl GramState {
    pub fn is_terminal(&self) -> bool {
        matches!(self, GramState::Done | GramState::Failed(_))
    }

    /// Map a scheduler job state onto the GRAM vocabulary.
    pub fn from_job_state(state: &JobState) -> GramState {
        match state {
            JobState::Waiting => GramState::Pending,
            JobState::Running { .. } => GramState::Active,
            JobState::Done { outcome, .. } => match outcome {
                JobOutcome::Success => GramState::Done,
                JobOutcome::AppFailure(m) => GramState::Failed(m.clone()),
                JobOutcome::WalltimeExceeded => GramState::Failed("walltime exceeded".to_string()),
            },
            JobState::Cancelled { reason } => GramState::Failed(format!("cancelled: {reason}")),
        }
    }
}

/// Submit/start/end record for one job — the raw data of the §6 Gantt tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTimes {
    pub name: String,
    pub cores: u32,
    pub submitted_at: SimTime,
    pub started_at: Option<SimTime>,
    pub ended_at: Option<SimTime>,
    pub state: GramState,
}

impl JobTimes {
    pub fn wait(&self) -> Option<SimDuration> {
        self.started_at.map(|s| s - self.submitted_at)
    }

    pub fn run(&self) -> Option<SimDuration> {
        match (self.started_at, self.ended_at) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        let h = GramJobHandle::new("kraken", GramService::Batch, 42);
        assert_eq!(h.to_string(), "gram://kraken/jobmanager-pbs/42");
        assert_eq!(h.parse(), Some(("kraken".to_string(), 42)));
        let f = GramJobHandle::new("frost", GramService::Fork, 7);
        assert!(f.0.contains("jobmanager-fork"));
        assert_eq!(f.parse(), Some(("frost".to_string(), 7)));
    }

    #[test]
    fn handle_parse_rejects_garbage() {
        assert_eq!(GramJobHandle("nonsense".into()).parse(), None);
        assert_eq!(GramJobHandle("gram://only-site".into()).parse(), None);
        assert_eq!(
            GramJobHandle("gram://site/mgr/notanumber".into()).parse(),
            None
        );
    }

    #[test]
    fn state_mapping() {
        assert_eq!(
            GramState::from_job_state(&JobState::Waiting),
            GramState::Pending
        );
        assert!(GramState::from_job_state(&JobState::Done {
            started_at: SimTime(0),
            ended_at: SimTime(1),
            outcome: JobOutcome::Success,
        })
        .is_terminal());
        let failed = GramState::from_job_state(&JobState::Done {
            started_at: SimTime(0),
            ended_at: SimTime(1),
            outcome: JobOutcome::WalltimeExceeded,
        });
        assert!(matches!(failed, GramState::Failed(_)));
        assert!(!GramState::Pending.is_terminal());
    }

    #[test]
    fn job_times_accessors() {
        let t = JobTimes {
            name: "ga".into(),
            cores: 128,
            submitted_at: SimTime(100),
            started_at: Some(SimTime(400)),
            ended_at: Some(SimTime(1000)),
            state: GramState::Done,
        };
        assert_eq!(t.wait().unwrap().as_secs(), 300);
        assert_eq!(t.run().unwrap().as_secs(), 600);
        let q = JobTimes {
            started_at: None,
            ended_at: None,
            state: GramState::Pending,
            ..t
        };
        assert_eq!(q.wait(), None);
        assert_eq!(q.run(), None);
    }
}
