//! Installed applications — the executables GRAM launches on a site.
//!
//! AMP's science code is installed on each resource by the science PI
//! (§3), and GRAM invokes it by path via the fork or scheduler service.
//! In the simulator an [`Application`] is a pure Rust function of its
//! input files that declares its own simulated cost. The scheduler applies
//! its outputs when the job completes; only [`AppRun::checkpoint_outputs`]
//! survive a walltime kill (the restart file ASTEC/MPIKAIA write as they
//! go).

use crate::fs::SiteFs;
use crate::systems::SystemProfile;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What an application sees when it runs.
pub struct AppContext<'a> {
    /// The job's working directory prefix inside the site scratch tree.
    pub workdir: String,
    /// Command-line arguments from the job specification.
    pub args: Vec<String>,
    /// The machine this runs on (cost scaling).
    pub profile: &'a SystemProfile,
    /// Processor cores allocated to the job.
    pub cores: u32,
    /// Walltime budget in minutes — well-behaved apps (the GA) plan their
    /// work to fit and exit cleanly before the limit.
    pub wall_minutes: f64,
    /// Simulated start time.
    pub started_at: SimTime,
    /// Read-only view of the site filesystem at start time.
    pub fs: &'a SiteFs,
}

impl AppContext<'_> {
    /// Read an input file from the job working directory.
    pub fn read_input(&self, name: &str) -> Option<Vec<u8>> {
        self.fs
            .read(&format!("{}/{}", self.workdir, name))
            .ok()
            .map(|d| d.to_vec())
    }
}

/// The result of one application execution.
#[derive(Debug, Clone, Default)]
pub struct AppRun {
    /// Simulated execution cost in minutes of *wall time on this machine*.
    pub cost_minutes: f64,
    /// Exit status. `None` detail means success.
    pub failure: Option<String>,
    /// Files written on successful completion (workdir-relative name ->
    /// contents).
    pub outputs: BTreeMap<String, Vec<u8>>,
    /// Files that exist even if the job is killed at the walltime limit
    /// (progress/restart files, partial logs).
    pub checkpoint_outputs: BTreeMap<String, Vec<u8>>,
}

impl AppRun {
    pub fn success(cost_minutes: f64) -> Self {
        AppRun {
            cost_minutes,
            ..AppRun::default()
        }
    }

    pub fn failed(cost_minutes: f64, detail: &str) -> Self {
        AppRun {
            cost_minutes,
            failure: Some(detail.to_string()),
            ..AppRun::default()
        }
    }

    pub fn with_output(mut self, name: &str, data: Vec<u8>) -> Self {
        self.outputs.insert(name.to_string(), data);
        self
    }

    pub fn with_checkpoint(mut self, name: &str, data: Vec<u8>) -> Self {
        self.checkpoint_outputs.insert(name.to_string(), data);
        self
    }
}

/// An executable installed on a site.
pub trait Application: Send + Sync {
    fn run(&self, ctx: &AppContext<'_>) -> AppRun;
}

/// Site-local registry of installed executables, keyed by the path GRAM
/// job specifications name.
#[derive(Clone, Default)]
pub struct AppRegistry {
    apps: BTreeMap<String, Arc<dyn Application>>,
}

impl AppRegistry {
    pub fn new() -> Self {
        AppRegistry::default()
    }

    pub fn install(&mut self, executable: &str, app: Arc<dyn Application>) {
        self.apps.insert(executable.to_string(), app);
    }

    pub fn get(&self, executable: &str) -> Option<Arc<dyn Application>> {
        self.apps.get(executable).cloned()
    }

    pub fn installed(&self) -> Vec<&str> {
        self.apps.keys().map(|s| s.as_str()).collect()
    }
}

/// A trivial application for tests: sleeps `args[0]` minutes, then writes
/// `done.txt`. If `args[1]` is "fail" it exits non-zero; "overrun" makes it
/// ignore the walltime budget.
pub struct SleepApp;

impl Application for SleepApp {
    fn run(&self, ctx: &AppContext<'_>) -> AppRun {
        let minutes: f64 = ctx.args.first().and_then(|a| a.parse().ok()).unwrap_or(1.0);
        let mode = ctx.args.get(1).map(|s| s.as_str()).unwrap_or("ok");
        let cost = if mode == "overrun" {
            minutes
        } else {
            minutes.min(ctx.wall_minutes)
        };
        let mut run = if mode == "fail" {
            AppRun::failed(cost, "sleep was asked to fail")
        } else {
            AppRun::success(cost).with_output("done.txt", b"ok".to_vec())
        };
        run.checkpoint_outputs
            .insert("progress.txt".into(), format!("{cost:.1}").into_bytes());
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::kraken;

    fn ctx<'a>(fs: &'a SiteFs, profile: &'a SystemProfile, args: Vec<String>) -> AppContext<'a> {
        AppContext {
            workdir: "scratch/job1".into(),
            args,
            profile,
            cores: 1,
            wall_minutes: 60.0,
            started_at: SimTime(0),
            fs,
        }
    }

    #[test]
    fn registry_install_and_lookup() {
        let mut reg = AppRegistry::new();
        assert!(reg.get("/usr/local/bin/sleep").is_none());
        reg.install("/usr/local/bin/sleep", Arc::new(SleepApp));
        assert!(reg.get("/usr/local/bin/sleep").is_some());
        assert_eq!(reg.installed(), vec!["/usr/local/bin/sleep"]);
    }

    #[test]
    fn sleep_app_modes() {
        let fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        let ok = SleepApp.run(&ctx(&fs, &profile, vec!["5".into()]));
        assert_eq!(ok.cost_minutes, 5.0);
        assert!(ok.failure.is_none());
        assert!(ok.outputs.contains_key("done.txt"));
        assert!(ok.checkpoint_outputs.contains_key("progress.txt"));

        let fail = SleepApp.run(&ctx(&fs, &profile, vec!["5".into(), "fail".into()]));
        assert!(fail.failure.is_some());

        // well-behaved: clamps to budget
        let clamped = SleepApp.run(&ctx(&fs, &profile, vec!["500".into()]));
        assert_eq!(clamped.cost_minutes, 60.0);
        // misbehaving: overruns
        let overrun = SleepApp.run(&ctx(&fs, &profile, vec!["500".into(), "overrun".into()]));
        assert_eq!(overrun.cost_minutes, 500.0);
    }

    #[test]
    fn context_reads_inputs() {
        let mut fs = SiteFs::new("kraken", 1 << 20);
        fs.write("scratch/job1/input.txt", b"data".to_vec())
            .unwrap();
        let profile = kraken();
        let c = ctx(&fs, &profile, vec![]);
        assert_eq!(c.read_input("input.txt").unwrap(), b"data");
        assert!(c.read_input("missing.txt").is_none());
    }
}
