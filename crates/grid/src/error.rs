//! Grid error taxonomy.
//!
//! The GridAMP daemon "distinguishes between anticipated transients, model
//! processing failures, and its own failures" (§4.4). [`GridError::is_transient`]
//! encodes the first class — errors the daemon retries silently.

use crate::time::SimTime;
use std::fmt;

/// Errors surfaced by the grid command-line-style interfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// GRAM or GridFTP endpoint is down (scheduled outage or injected
    /// fault) — the canonical anticipated transient.
    ServiceUnreachable {
        site: String,
        service: &'static str,
        at: SimTime,
    },
    /// Proxy certificate expired or not yet valid.
    CredentialExpired { subject: String, at: SimTime },
    /// Proxy not authorized for the site (community account not enabled).
    NotAuthorized { site: String, subject: String },
    /// No such site registered.
    NoSuchSite(String),
    /// No such job handle.
    NoSuchJob(String),
    /// No such remote file.
    NoSuchFile { site: String, path: String },
    /// The requested executable is not installed on the site.
    NoSuchApplication { site: String, executable: String },
    /// Job specification is invalid (more nodes than the machine has, ...).
    BadJobSpec(String),
    /// Site scratch filesystem is over quota (the paper's "small disk
    /// space available on Lonestar" concern).
    DiskQuotaExceeded { site: String, need: u64, free: u64 },
    /// Dependency on a job that does not exist or already failed.
    BadDependency(String),
    /// Operation is inconsistent with the job's current state.
    InvalidState { job: String, state: String },
}

impl GridError {
    /// True for the anticipated-transient class: retried automatically,
    /// administrators notified, users never bothered (§4.4).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GridError::ServiceUnreachable { .. } | GridError::CredentialExpired { .. }
        )
    }
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ServiceUnreachable { site, service, at } => {
                write!(f, "{service} on {site} unreachable at {at}")
            }
            GridError::CredentialExpired { subject, at } => {
                write!(f, "credential {subject} expired at {at}")
            }
            GridError::NotAuthorized { site, subject } => {
                write!(f, "{subject} not authorized on {site}")
            }
            GridError::NoSuchSite(s) => write!(f, "no such site: {s}"),
            GridError::NoSuchJob(j) => write!(f, "no such job: {j}"),
            GridError::NoSuchFile { site, path } => {
                write!(f, "no such file on {site}: {path}")
            }
            GridError::NoSuchApplication { site, executable } => {
                write!(f, "executable {executable} not installed on {site}")
            }
            GridError::BadJobSpec(m) => write!(f, "bad job spec: {m}"),
            GridError::DiskQuotaExceeded { site, need, free } => {
                write!(f, "disk quota on {site}: need {need} bytes, {free} free")
            }
            GridError::BadDependency(m) => write!(f, "bad dependency: {m}"),
            GridError::InvalidState { job, state } => {
                write!(f, "job {job} in state {state}")
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(GridError::ServiceUnreachable {
            site: "kraken".into(),
            service: "GRAM",
            at: SimTime(5),
        }
        .is_transient());
        assert!(GridError::CredentialExpired {
            subject: "amp".into(),
            at: SimTime(5)
        }
        .is_transient());
        assert!(!GridError::NoSuchSite("x".into()).is_transient());
        assert!(!GridError::BadJobSpec("x".into()).is_transient());
    }
}
