//! Simulated time.
//!
//! The grid substrate is a discrete-event simulation: Table 1's run times
//! are *simulated* minutes/hours on 2009 hardware profiles, not wall time
//! of this process. `SimTime` is integral seconds since simulation start,
//! which keeps event ordering exact and arithmetic deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (seconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_secs(self) -> u64 {
        self.0
    }

    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// Round fractional minutes up to whole seconds (durations never round
    /// to zero unless exactly zero).
    pub fn from_minutes(m: f64) -> Self {
        SimDuration((m * 60.0).ceil().max(0.0) as u64)
    }

    pub fn from_hours(h: f64) -> Self {
        Self::from_minutes(h * 60.0)
    }

    pub fn as_secs(self) -> u64 {
        self.0
    }

    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let h = (self.0 % 86_400) / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10) - SimTime(50), SimDuration(0)); // saturates
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SimDuration::from_minutes(1.5).as_secs(), 90);
        assert_eq!(SimDuration::from_hours(2.0).as_hours(), 2.0);
        assert_eq!(SimTime(7200).as_hours(), 2.0);
        assert_eq!(SimDuration::from_minutes(0.0), SimDuration::ZERO);
        // fractional seconds round up, never silently to zero
        assert_eq!(SimDuration::from_minutes(0.001).as_secs(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(3661).to_string(), "01:01:01");
        assert_eq!(SimTime(90_061).to_string(), "1d 01:01:01");
    }
}
